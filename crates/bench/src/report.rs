//! Report formatting for paper-vs-measured comparisons.

use crate::paper::PaperCell;
use dlrm_core::metrics::Percentiles;
use dlrm_core::serving::ConfigResult;

/// Formats one paper-vs-measured row for a Table III/IV-style report.
#[must_use]
pub fn compare_row(paper: &PaperCell, measured: &ConfigResult) -> String {
    format!(
        "{:<10} e2e paper[{}] measured[{}] | cpu paper[{}] measured[{}]",
        paper.strategy.label(),
        paper.e2e,
        measured.e2e,
        paper.cpu,
        measured.cpu,
    )
}

/// Formats a percentile triple as overheads versus a baseline (the
/// Fig. 6/7/16 quantity).
#[must_use]
pub fn overhead_row(label: &str, value: &Percentiles, baseline: &Percentiles) -> String {
    let o = value.overhead_vs(baseline);
    format!(
        "{label:<10} overhead% p50={:+6.1} p90={:+6.1} p99={:+6.1}",
        o.p50, o.p90, o.p99
    )
}

/// Renders a horizontal bar of `value` scaled against `max` (stack
/// figures as text).
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Section header used by every bench target.
#[must_use]
pub fn header(id: &str, title: &str) -> String {
    format!("\n==== {id}: {title} ====")
}

/// One benchmark's machine-readable result: its headline p50, an
/// optional p99 tail, and an optional derived throughput (`GFLOP/s`
/// for GEMMs, `bags/s` for the SparseLengthsSum family).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, as printed by the timing harness.
    pub name: String,
    /// Median (p50) per-iteration value — nanoseconds unless `unit`
    /// says otherwise.
    pub median_ns: f64,
    /// Tail (p99) value in the same unit, when the harness collected
    /// enough samples to report one.
    pub p99_ns: Option<f64>,
    /// Unit of the headline values; `None` means nanoseconds. Set this
    /// for records whose quantity is not a latency (bytes, row counts)
    /// so consumers stop reading everything as `p50_ns`.
    pub unit: Option<String>,
    /// Optional `(unit, value)` throughput derived from the median.
    pub throughput: Option<(String, f64)>,
}

impl BenchRecord {
    /// A latency record: p50 only, in nanoseconds.
    #[must_use]
    pub fn p50(name: impl Into<String>, median_ns: f64) -> Self {
        BenchRecord {
            name: name.into(),
            median_ns,
            p99_ns: None,
            unit: None,
            throughput: None,
        }
    }

    /// A latency record carrying both the median and the p99 tail.
    #[must_use]
    pub fn tail(name: impl Into<String>, median_ns: f64, p99_ns: f64) -> Self {
        BenchRecord {
            p99_ns: Some(p99_ns),
            ..Self::p50(name, median_ns)
        }
    }

    /// A non-latency scalar (bytes, rows, ...) labeled with its unit.
    #[must_use]
    pub fn scalar(name: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        BenchRecord {
            unit: Some(unit.into()),
            ..Self::p50(name, value)
        }
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (JSON has no NaN/∞; those clamp
/// to 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".into()
    }
}

/// Serializes bench records as a JSON array — the in-tree,
/// std-only emitter behind `BENCH_kernels.json`.
#[must_use]
pub fn bench_records_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        // Historical key names: `p50_ns`/`p99_ns` keep their suffix even
        // when `unit` overrides the quantity — the unit field is the
        // source of truth for non-latency records.
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"p50_ns\": {}",
            json_escape(&r.name),
            json_num(r.median_ns)
        ));
        if let Some(p99) = r.p99_ns {
            out.push_str(&format!(", \"p99_ns\": {}", json_num(p99)));
        }
        if let Some(unit) = &r.unit {
            out.push_str(&format!(", \"unit\": \"{}\"", json_escape(unit)));
        }
        if let Some((unit, value)) = &r.throughput {
            out.push_str(&format!(
                ", \"throughput_unit\": \"{}\", \"throughput\": {}",
                json_escape(unit),
                json_num(*value)
            ));
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Writes bench records to `path` as JSON.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_bench_json(path: &std::path::Path, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, bench_records_json(records))
}

/// Requests replayed per configuration by the reproduction targets.
/// Override with `DLRM_REPRO_REQUESTS` (more requests → smoother
/// percentiles, longer runs).
#[must_use]
pub fn repro_requests() -> usize {
    std::env::var("DLRM_REPRO_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn bench_records_serialize_as_json() {
        let mut gemm = BenchRecord::tail("gemm", 1234.5, 5678.25);
        gemm.throughput = Some(("GFLOP/s".into(), 42.25));
        let records = vec![
            gemm,
            BenchRecord::p50("sls \"quoted\"", f64::NAN),
            BenchRecord::scalar("wire_bytes", 4096.0, "bytes"),
        ];
        let json = bench_records_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\": \"gemm\", \"p50_ns\": 1234.500, \"p99_ns\": 5678.250"));
        assert!(json.contains("\"throughput_unit\": \"GFLOP/s\", \"throughput\": 42.250"));
        assert!(json.contains("sls \\\"quoted\\\""));
        assert!(json.contains("\"p50_ns\": 0.000"));
        assert!(json.contains("\"name\": \"wire_bytes\", \"p50_ns\": 4096.000, \"unit\": \"bytes\""));
        // A p50-only record carries no phantom p99 key.
        let sls_line = json.lines().find(|l| l.contains("sls")).unwrap();
        assert!(!sls_line.contains("p99_ns"));
        // Exactly two separating commas between the three objects.
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn overhead_row_formats() {
        let base = Percentiles {
            p50: 10.0,
            p90: 10.0,
            p99: 10.0,
        };
        let v = Percentiles {
            p50: 11.0,
            p90: 9.0,
            p99: 10.0,
        };
        let s = overhead_row("x", &v, &base);
        assert!(s.contains("+10.0"));
        assert!(s.contains("-10.0"));
    }
}
