//! Shared smoke-test harness: the setup helpers every `*_smoke` binary
//! used to copy-paste (seeded RM specs, cluster assembly, solo baseline
//! predictions, accounting-identity gates) in one place.
//!
//! Smoke binaries are CI gates, so the helpers fail loudly
//! ([`fail`] prints and exits non-zero) rather than returning errors
//! the caller could forget to check.

use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{build_model, ModelSpec, Workspace};
use dlrm_core::serving::fault::FaultPlan;
use dlrm_core::serving::frontend::{FrontendReport, FrontendRequest};
use dlrm_core::serving::replica::{HealthPolicy, ReplicatedShardPool};
use dlrm_core::sharding::{
    partition, partition_with_clients, DistributedModel, RpcPolicy, ShardService, ShardingPlan,
};
use dlrm_core::tensor::Matrix;
use std::sync::Arc;
use std::time::Duration;

/// Prints `FAIL: msg` and exits non-zero — the smoke-gate verdict.
pub fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// The standard smoke-scale model: `base` (an `rm::rm1()`-style spec)
/// scaled to `bytes` of embeddings with pinned request-shape knobs.
#[must_use]
pub fn smoke_spec(
    base: ModelSpec,
    bytes: u64,
    mean_items_per_request: f64,
    default_batch_size: usize,
) -> ModelSpec {
    let mut spec = base.scaled_to_bytes(bytes);
    spec.mean_items_per_request = mean_items_per_request;
    spec.default_batch_size = default_batch_size;
    spec
}

/// Outcome determinism for the data plane: no per-attempt deadline, no
/// hedging (wall-clock noise must not change what any request
/// returns), but retries and the degraded fallback stay on.
#[must_use]
pub fn deterministic_policy() -> RpcPolicy {
    RpcPolicy {
        attempt_timeout: None,
        max_attempts: 4,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(1),
        hedge_after: None,
        degraded_fallback: true,
    }
}

/// Builds `plan`'s shards, spawns a replicated pool over them under
/// `faults`, and partitions the model onto the pool's clients (hot-row
/// cache attached when the plan carries one). The caller owns the
/// pool's shutdown.
pub fn replicated_cluster(
    spec: &ModelSpec,
    plan: &ShardingPlan,
    seed: u64,
    replicas: usize,
    faults: &FaultPlan,
) -> (DistributedModel, ReplicatedShardPool) {
    let model = build_model(spec, seed).unwrap_or_else(|e| fail(&format!("build model: {e}")));
    let services: Vec<Arc<ShardService>> = plan
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, plan, s)))
        .collect();
    let pool = ReplicatedShardPool::spawn(
        services.clone(),
        replicas,
        Duration::ZERO,
        faults,
        HealthPolicy::default(),
    );
    let dist = partition_with_clients(model, plan, services, pool.clients())
        .unwrap_or_else(|e| fail(&format!("partition: {e}")));
    if let Some(cache) = &dist.cache {
        pool.attach_cache(Arc::clone(cache));
    }
    (dist, pool)
}

/// Fault-free baseline predictions for `requests` on an in-process
/// partition of the same plan and seed — the bit-exactness reference
/// the concurrent/faulted runs are judged against.
#[must_use]
pub fn solo_predictions(
    spec: &ModelSpec,
    plan: &ShardingPlan,
    seed: u64,
    requests: &[FrontendRequest],
) -> Vec<(u64, Matrix)> {
    let dist = partition(
        build_model(spec, seed).unwrap_or_else(|e| fail(&format!("build model: {e}"))),
        plan,
    )
    .unwrap_or_else(|e| fail(&format!("partition: {e}")));
    predictions_on(&dist, requests)
}

/// Runs every request through `dist` sequentially (overlapped
/// executor, no concurrency) and returns `(id, prediction)` pairs.
#[must_use]
pub fn predictions_on(
    dist: &DistributedModel,
    requests: &[FrontendRequest],
) -> Vec<(u64, Matrix)> {
    requests
        .iter()
        .map(|r| {
            let mut ws = Workspace::new();
            r.inputs.load_into(&dist.spec, &mut ws);
            let out = dist
                .run_overlapped(&mut ws, &mut NoopObserver)
                .unwrap_or_else(|e| fail(&format!("solo run: {e}")));
            (r.id, out)
        })
        .collect()
}

/// Gates the frontend accounting identities every smoke pins:
/// `offered == n == admitted + shed`, `completed + failed == admitted`,
/// and exactly one prediction per completion.
pub fn check_identities(report: &FrontendReport, n: usize, phase: &str) {
    if report.offered != n as u64 || report.offered != report.admitted + report.shed {
        fail(&format!("{phase}: offered != admitted + shed"));
    }
    if report.completed + report.failed != report.admitted {
        fail(&format!("{phase}: completed + failed != admitted"));
    }
    if report.predictions.len() != report.completed as usize {
        fail(&format!(
            "{phase}: {} predictions for {} completions — retries/hedges double-counted",
            report.predictions.len(),
            report.completed
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_core::model::rm;
    use dlrm_core::serving::frontend::materialize_frontend_requests;
    use dlrm_core::sharding::{plan, ShardingStrategy};
    use dlrm_core::workload::{PoolingProfile, TraceDb};

    #[test]
    fn smoke_spec_pins_shape_knobs() {
        let s = smoke_spec(rm::rm1(), 1 << 20, 4.0, 8);
        assert_eq!(s.mean_items_per_request, 4.0);
        assert_eq!(s.default_batch_size, 8);
        // scaled_to_bytes targets ~1 MiB; per-table row minimums may
        // push it slightly over, but it must be nowhere near full size.
        assert!(s.total_bytes() < 8 << 20);
    }

    #[test]
    fn replicated_cluster_matches_solo_baseline() {
        let spec = smoke_spec(rm::rm1(), 1 << 20, 4.0, 4);
        let profile = PoolingProfile::from_spec(&spec);
        let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(2)).unwrap();
        let db = TraceDb::generate(&spec, 4, 9);
        let requests = materialize_frontend_requests(&spec, &db, 11);
        let solo = solo_predictions(&spec, &p, 7, &requests);
        let (dist, pool) = replicated_cluster(&spec, &p, 7, 2, &FaultPlan::none());
        let clustered = predictions_on(&dist, &requests);
        pool.shutdown();
        for ((ia, a), (ib, b)) in solo.iter().zip(&clustered) {
            assert_eq!(ia, ib);
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}
