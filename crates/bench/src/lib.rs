//! Reproduction harness: the paper's published numbers and report
//! formatting shared by every bench target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod paper;
pub mod report;
pub mod timing;
