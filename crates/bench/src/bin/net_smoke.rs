//! Network smoke test: the multi-process deployment end to end, gated
//! in `scripts/verify.sh`.
//!
//! This is the one gate where the shard servers are real OS processes:
//! it spawns the `control_plane` binary and two `shard_server` binaries
//! (sibling executables in the same target directory), lets them
//! register and receive their replica seats, bootstraps a client
//! cluster from the control plane's routing table — every listener on
//! an ephemeral loopback port — and drives an open-loop frontend run
//! while **killing one shard-server process mid-run** (SIGKILL, no
//! drain: the unplanned capacity loss of §III-B).
//!
//! Gates, in the spirit of `chaos_smoke` but across process
//! boundaries:
//!
//! - accounting identities close (`offered == admitted + shed`,
//!   `completed + failed == admitted`, one prediction per completion);
//! - availability ≥ 99% and zero degraded responses — the surviving
//!   replica of every shard absorbs the load via retry/failover;
//! - every prediction is bit-exact against a fault-free solo run in
//!   this process: two processes that rebuilt their tables from the
//!   published spec + seed answer identically;
//! - failovers were actually exercised, and wire accounting shows real
//!   frames/bytes crossed the sockets;
//! - orchestrated shutdown stops the surviving fleet.

use dlrm_bench::harness::{check_identities, fail, smoke_spec, solo_predictions};
use dlrm_core::model::{build_model, rm, ModelSpec};
use dlrm_core::serving::control;
use dlrm_core::serving::frontend::{
    materialize_frontend_requests, run_frontend, FrontendConfig,
};
use dlrm_core::serving::replica::HealthPolicy;
use dlrm_core::sharding::{
    partition_with_clients, plan, RpcPolicy, ShardService, ShardingStrategy,
};
use dlrm_core::workload::{ArrivalSchedule, PoolingProfile, TraceDb};
use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 23;
const SHARDS: usize = 3;
const REPLICAS: usize = 2;
const REQUESTS: usize = 24;
const QPS: f64 = 40.0;
/// When the replica-0 host is SIGKILLed, relative to frontend start.
const KILL_AFTER: Duration = Duration::from_millis(150);
const AVAILABILITY_FLOOR: f64 = 0.99;

fn spec() -> ModelSpec {
    smoke_spec(rm::rm1(), 1 << 20, 4.0, 8)
}

/// Path to a sibling binary of this executable (same target dir).
fn sibling(name: &str) -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("exe dir");
    let path = dir.join(name);
    if !path.exists() {
        fail(&format!(
            "{} not found — build the workspace first (cargo build --workspace --release)",
            path.display()
        ));
    }
    path
}

/// Reads child stdout lines until one contains `needle`; returns it.
fn await_line(child: &mut Child, needle: &str, who: &str) -> String {
    let stdout = child.stdout.take().unwrap_or_else(|| {
        fail(&format!("{who}: stdout not piped"));
    });
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => fail(&format!("{who} exited before printing {needle:?}")),
            Ok(_) => {
                print!("  [{who}] {line}");
                if line.contains(needle) {
                    // Keep draining the rest in the background so the
                    // child never blocks on a full pipe.
                    std::thread::spawn(move || {
                        for l in reader.lines().map_while(Result::ok) {
                            drop(l);
                        }
                    });
                    return line.trim().to_string();
                }
            }
            Err(e) => fail(&format!("{who}: read stdout: {e}")),
        }
    }
}

/// Waits up to `timeout` for `child` to exit; kills it if it does not.
fn reap(mut child: Child, who: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Ok(None) => {
                eprintln!("  [{who}] did not exit within {timeout:?}; killing");
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
            Err(e) => fail(&format!("{who}: wait: {e}")),
        }
    }
}

fn main() {
    let spec = spec();
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("plan");
    let spec_text = dlrm_core::model::publish::spec_to_text(&spec);
    let plan_text = dlrm_core::sharding::publish::plan_to_text(&p);

    // Publish spec + plan where the control-plane process can read them.
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let spec_path = tmp.join(format!("dlrm_net_smoke_{pid}_spec.txt"));
    let plan_path = tmp.join(format!("dlrm_net_smoke_{pid}_plan.txt"));
    std::fs::write(&spec_path, &spec_text).expect("write spec");
    std::fs::write(&plan_path, &plan_text).expect("write plan");

    println!("== net smoke: 1 control plane + {REPLICAS} shard-server processes, {SHARDS} shards ==");

    // ---- Control plane process. ----
    let mut cp = Command::new(sibling("control_plane"))
        .args(["--spec"])
        .arg(&spec_path)
        .arg("--plan")
        .arg(&plan_path)
        .args(["--seed", &SEED.to_string()])
        .args(["--replicas", &REPLICAS.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn control_plane");
    let line = await_line(&mut cp, "listening on", "control_plane");
    let control_addr = line
        .rsplit(' ')
        .next()
        .unwrap_or_else(|| fail("no address in control_plane banner"))
        .to_string();

    // ---- Shard-server processes: server k hosts replica k. ----
    let mut servers = Vec::new();
    for k in 0..REPLICAS {
        let mut child = Command::new(sibling("shard_server"))
            .args(["--control", &control_addr])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard_server");
        await_line(&mut child, "serving seats", &format!("shard_server {k}"));
        servers.push(child);
    }

    // ---- Client bootstrap from the routing table. ----
    let cluster = control::connect_cluster(
        &control_addr,
        Duration::from_secs(10),
        HealthPolicy::default(),
    )
    .unwrap_or_else(|e| fail(&format!("connect_cluster: {e}")));
    if !cluster.routes.complete || cluster.routes.shard_count() != SHARDS {
        fail(&format!("bad routing table: {:?}", cluster.routes));
    }
    let model = build_model(&spec, SEED).expect("build");
    let services: Vec<Arc<ShardService>> = p
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, &p, s)))
        .collect();
    let mut dist =
        partition_with_clients(model, &p, services, cluster.clients()).expect("partition");
    if dist.set_rpc_policy(RpcPolicy::resilient().with_hedge_from_p99_ms(1.0)) == 0 {
        fail("no SparseRpc operator accepted the policy");
    }

    // ---- Open-loop run; replica-0 host dies mid-run. ----
    let db = TraceDb::generate(&spec, REQUESTS, SEED);
    let requests = materialize_frontend_requests(&spec, &db, SEED ^ 1);
    let n = requests.len();
    let expected = solo_predictions(&spec, &p, SEED, &requests);
    let schedule = ArrivalSchedule::poisson(n, QPS, SEED ^ 2);
    let cfg = FrontendConfig {
        queue_capacity: n, // everything fits: shed must be zero
        max_batch_requests: 4,
        batch_timeout: Duration::from_millis(20),
        sla: Duration::from_millis(500),
        workers: 2,
    };
    let victim = servers.remove(0);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(KILL_AFTER);
        let mut victim = victim;
        let _ = victim.kill(); // SIGKILL: no drain, no goodbye
        let _ = victim.wait();
        println!("  [net_smoke] killed shard_server 0 at +{KILL_AFTER:?}");
    });
    let mut report = run_frontend(&dist, requests, &schedule, &cfg);
    report.transport = Some(cluster.transport_summary());
    killer.join().expect("killer thread");

    println!("\n== frontend report ({n} requests, one replica host killed mid-run) ==");
    print!("{report}");

    // ---- Gates. ----
    check_identities(&report, n, "net smoke");
    let availability = report.availability();
    if availability < AVAILABILITY_FLOOR {
        fail(&format!(
            "availability {availability:.4} after killing one replica host (floor {AVAILABILITY_FLOOR})"
        ));
    }
    if report.degraded != 0 {
        fail(&format!(
            "{} degraded responses with a healthy replica per shard",
            report.degraded
        ));
    }
    let mut mismatches = 0;
    for (id, pred) in &report.predictions {
        let (_, want) = expected.iter().find(|(e, _)| e == id).expect("known id");
        if pred != want {
            mismatches += 1;
        }
    }
    if mismatches != 0 {
        fail(&format!(
            "{mismatches} predictions differ from the fault-free solo run: \
             cross-process table rebuild is not bit-exact"
        ));
    }
    let transport = report.transport.as_ref().expect("transport summary");
    if transport.failovers == 0 {
        fail("no failovers recorded despite a killed replica host");
    }
    if transport.wire.is_zero() || transport.wire.bytes_received == 0 {
        fail(&format!("no wire activity recorded: {:?}", transport.wire));
    }

    // ---- Orchestrated shutdown of the survivors. ----
    control::shutdown_cluster(&control_addr, Duration::from_secs(30))
        .unwrap_or_else(|e| fail(&format!("shutdown_cluster: {e}")));
    for (k, child) in servers.into_iter().enumerate() {
        reap(child, &format!("shard_server {}", k + 1), Duration::from_secs(10));
    }
    reap(cp, "control_plane", Duration::from_secs(10));
    let _ = std::fs::remove_file(&spec_path);
    let _ = std::fs::remove_file(&plan_path);

    println!(
        "\nOK: availability {availability:.4} across a mid-run process kill, \
         {} failovers, bit-exact predictions, wire {}",
        transport.failovers, transport.wire
    );
}
