//! Overlap smoke test: proves shard RPCs overlap under the real
//! engine's dependency-aware scheduler.
//!
//! One batch runs against ≥2 thread-backed sparse shards, each with an
//! injected per-request service delay D. A serial executor pays
//! `rpcs × D`; the overlap scheduler issues every shard RPC before
//! blocking, so wall-clock must come in well under that sum (the
//! asserted bound is 0.8 × Σ delays). Predictions are simultaneously
//! checked bit-exact against the sequential executor, and the captured
//! trace is rendered as a Gantt chart so the overlap is visible.
//!
//! Exits non-zero on any violated bound — invoked from
//! `scripts/verify.sh` as the CI overlap gate.

use dlrm_core::model::{build_model, rm, Workspace};
use dlrm_core::serving::engine_trace::RpcTracingObserver;
use dlrm_core::serving::threaded::ThreadedShardPool;
use dlrm_core::sharding::{partition_with_clients, plan, ShardService, ShardingStrategy};
use dlrm_core::trace::{gantt, TraceId};
use dlrm_core::model::graph::NoopObserver;
use dlrm_core::workload::{materialize_request, PoolingProfile, TraceDb};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injected per-shard service delay. Chosen large against the model's
/// dense compute at this batch size, so the serial-vs-overlap gap is
/// dominated by the delays and the 0.8 bound has real slack.
const DELAY_MS: u64 = 60;
/// Overlap bound from the acceptance criteria: wall-clock must be below
/// this fraction of the serial sum of delays.
const BOUND_FRACTION: f64 = 0.8;

fn main() {
    let mut spec = rm::rm1().scaled_to_bytes(2 << 20);
    spec.mean_items_per_request = 8.0;
    spec.default_batch_size = 4;
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(2)).expect("plan");
    let model = build_model(&spec, 7).expect("build");
    let services: Vec<Arc<ShardService>> = p
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, &p, s)))
        .collect();
    assert!(services.len() >= 2, "smoke needs ≥2 shards");
    let delay = Duration::from_millis(DELAY_MS);
    let pool = ThreadedShardPool::spawn_with_delay(services.clone(), delay);
    let dist =
        partition_with_clients(model, &p, services, pool.clients()).expect("partition");

    let db = TraceDb::generate(&spec, 1, 5);
    let batch = &materialize_request(&spec, db.get(0), 4, 5)[0];

    // Reference: the strictly sequential executor on the same inputs.
    let mut ws_seq = Workspace::new();
    batch.load_into(&spec, &mut ws_seq);
    let mut ws_ovl = ws_seq.clone();
    let sequential_start = Instant::now();
    let expected = dist.run(&mut ws_seq, &mut NoopObserver).expect("sequential run");
    let sequential_wall = sequential_start.elapsed();

    // Measured: the overlap scheduler, traced.
    let mut obs = RpcTracingObserver::new(TraceId(0));
    let overlapped_start = Instant::now();
    let got = dist.run_overlapped(&mut ws_ovl, &mut obs).expect("overlapped run");
    let overlapped_wall = overlapped_start.elapsed();
    let rpcs = obs.rpc_count() as usize;
    let collector = obs.finish();

    let summaries = pool.rpc_summaries();
    pool.shutdown();

    println!("{}", gantt::render(&collector, TraceId(0), 64));
    println!("per-shard RPC instrumentation:");
    for s in &summaries {
        println!("  {s}");
    }
    assert_eq!(rpcs, dist.rpc_ops_per_inference(), "all RPC ops traced");

    let serial_floor = delay * rpcs as u32;
    let bound = serial_floor.mul_f64(BOUND_FRACTION);
    println!(
        "\n{rpcs} RPCs × {DELAY_MS} ms injected delay: serial floor {:.1} ms, \
         bound {:.1} ms\n  sequential executor: {:.1} ms\n  overlap scheduler:   {:.1} ms",
        serial_floor.as_secs_f64() * 1e3,
        bound.as_secs_f64() * 1e3,
        sequential_wall.as_secs_f64() * 1e3,
        overlapped_wall.as_secs_f64() * 1e3,
    );

    if got != expected {
        eprintln!("FAIL: overlapped predictions differ from sequential");
        std::process::exit(1);
    }
    if rpcs < 2 {
        eprintln!("FAIL: expected ≥2 RPC ops, got {rpcs}");
        std::process::exit(1);
    }
    if overlapped_wall >= bound {
        eprintln!(
            "FAIL: overlap not demonstrated: {:.1} ms ≥ {:.1} ms bound",
            overlapped_wall.as_secs_f64() * 1e3,
            bound.as_secs_f64() * 1e3
        );
        std::process::exit(1);
    }
    let max_in_flight = summaries.iter().map(|s| s.max_in_flight).max().unwrap_or(0);
    let total_calls: u64 = summaries.iter().map(|s| s.calls).sum();
    if total_calls != (rpcs * 2) as u64 {
        // Each RPC op ran twice: once sequential, once overlapped.
        eprintln!("FAIL: expected {} shard calls, instrumentation saw {total_calls}", rpcs * 2);
        std::process::exit(1);
    }
    if max_in_flight < 1 {
        eprintln!("FAIL: in-flight instrumentation recorded nothing");
        std::process::exit(1);
    }
    println!("\nOK: shard RPCs overlap (bit-exact with sequential execution)");
}
