//! Placement benchmark: what statistics-driven sharding buys.
//!
//! For RM1/RM2/RM3 under two Zipf skews, the same open-loop frontend
//! traffic runs against three 2-shard placements — capacity-balanced,
//! load-balanced, and hot-row-aware (whole-table LPT by residual access
//! weight plus a client-side hot-row cache tier) — over the threaded
//! replica transport. Reported per configuration:
//!
//! - end-to-end latency p50/p99 and latency-bounded QPS (DeepRecSys
//!   figure of merit), and
//! - RPC fan-out as embedding rows sent over the wire per offered
//!   request — the quantity the cache tier exists to shrink.
//!
//! Emits `BENCH_placement.json` at the repo root. Latencies are
//! wall-clock and machine-dependent; the row counts are deterministic.
//! The correctness side (bit-exactness, hit-rate band, conservation)
//! is gated by `cache_smoke` in `scripts/verify.sh`; this bin measures.

use dlrm_bench::report::{write_bench_json, BenchRecord};
use dlrm_core::model::{build_model, rm, ModelSpec};
use dlrm_core::serving::fault::FaultPlan;
use dlrm_core::serving::frontend::{run_frontend, FrontendConfig, FrontendRequest};
use dlrm_core::serving::replica::{HealthPolicy, ReplicatedShardPool};
use dlrm_core::sharding::{
    partition_with_clients, plan, plan_with_stats, HotRowConfig, ShardService, ShardingPlan,
    ShardingStrategy,
};
use dlrm_core::workload::{
    materialize_request_with, ArrivalSchedule, IndexDist, PoolingProfile, RowStats, TraceDb,
};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 71;
const SHARDS: usize = 2;
const REQUESTS: usize = 24;
const SKEWS: [f64; 2] = [0.8, 1.2];

fn specs() -> Vec<ModelSpec> {
    [rm::rm1(), rm::rm2(), rm::rm3()]
        .into_iter()
        .map(|m| {
            let mut spec = m.scaled_to_bytes(1 << 20);
            spec.mean_items_per_request = 4.0;
            spec.default_batch_size = 8;
            spec
        })
        .collect()
}

/// Zipf-skewed frontend requests (one engine batch each).
fn skewed_requests(spec: &ModelSpec, skew: f64) -> Vec<FrontendRequest> {
    let db = TraceDb::generate(spec, REQUESTS, SEED ^ 2);
    (0..REQUESTS)
        .map(|i| FrontendRequest {
            id: i as u64,
            inputs: materialize_request_with(
                spec,
                db.get(i),
                usize::MAX,
                SEED ^ 3,
                IndexDist::Zipf(skew),
            )
            .into_iter()
            .next()
            .expect("one engine batch per request"),
        })
        .collect()
}

struct Measured {
    p50_ns: f64,
    p99_ns: f64,
    qps: f64,
    rows_per_req: f64,
    cache_hit_rate: Option<f64>,
}

/// One open-loop frontend pass of `requests` over a replicated
/// deployment of `p`.
fn run_config(spec: &ModelSpec, p: &ShardingPlan, requests: Vec<FrontendRequest>) -> Measured {
    let model = build_model(spec, SEED).expect("build");
    let services: Vec<Arc<ShardService>> = p
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, p, s)))
        .collect();
    let pool = ReplicatedShardPool::spawn(
        services.clone(),
        1,
        Duration::ZERO,
        &FaultPlan::none(),
        HealthPolicy::default(),
    );
    let dist = partition_with_clients(model, p, services, pool.clients()).expect("partition");
    if let Some(cache) = &dist.cache {
        pool.attach_cache(Arc::clone(cache));
    }

    let n = requests.len();
    let schedule = ArrivalSchedule::poisson(n, 600.0, SEED ^ 4);
    let cfg = FrontendConfig {
        queue_capacity: n,
        max_batch_requests: 4,
        batch_timeout: Duration::from_millis(2),
        sla: Duration::from_millis(250),
        workers: 2,
    };
    let mut report = run_frontend(&dist, requests, &schedule, &cfg);
    let summary = pool.transport_summary();
    pool.shutdown();

    let tail = report.tail();
    Measured {
        p50_ns: tail.p50 * 1e6,
        p99_ns: tail.p99 * 1e6,
        qps: report.latency_bounded_qps(),
        rows_per_req: summary.rows_sent as f64 / report.offered.max(1) as f64,
        cache_hit_rate: (!summary.cache.is_zero()).then(|| summary.cache.hit_rate()),
    }
}

fn main() {
    let mut records = Vec::new();
    println!("==== placement: capacity vs load-balanced vs hot-row-aware ({SHARDS} shards) ====");
    for spec in specs() {
        let profile = PoolingProfile::from_spec(&spec);
        for skew in SKEWS {
            let stats = RowStats::for_spec(&spec, 4_000, skew, SEED);
            let plans: Vec<(&str, ShardingPlan)> = vec![
                (
                    "cb2",
                    plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS))
                        .expect("capacity plan"),
                ),
                (
                    "lb2",
                    plan(&spec, &profile, ShardingStrategy::LoadBalanced(SHARDS))
                        .expect("load plan"),
                ),
                (
                    "hra2",
                    plan_with_stats(
                        &spec,
                        &profile,
                        ShardingStrategy::HotRowAware(SHARDS),
                        &stats,
                        &HotRowConfig {
                            coverage: 0.95,
                            budget_fraction: 0.5,
                        },
                    )
                    .expect("hot-row plan"),
                ),
            ];
            println!("\n-- {} Zipf({skew}) --", spec.name);
            for (label, p) in plans {
                let m = run_config(&spec, &p, skewed_requests(&spec, skew));
                let name = format!("placement_{}_z{skew}_{label}", spec.name.to_lowercase());
                println!(
                    "{label:<5} p50 {:8.2} ms  p99 {:8.2} ms  {:7.1} qps  {:9.1} rows/req{}",
                    m.p50_ns / 1e6,
                    m.p99_ns / 1e6,
                    m.qps,
                    m.rows_per_req,
                    m.cache_hit_rate
                        .map(|h| format!("  (cache hit rate {h:.3})"))
                        .unwrap_or_default(),
                );
                let mut rec = BenchRecord::tail(&name, m.p50_ns, m.p99_ns);
                rec.throughput = Some(("qps".into(), m.qps));
                records.push(rec);
                records.push(BenchRecord::scalar(
                    format!("{name}_wire_rows"),
                    m.rows_per_req,
                    "rows/request",
                ));
            }
        }
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_placement.json");
    write_bench_json(&path, &records).expect("write BENCH_placement.json");
    println!("\nwrote {}", path.display());
}
