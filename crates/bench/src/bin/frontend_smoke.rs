//! Frontend smoke test: the open-loop serving frontend end to end.
//!
//! Two phases against 2 thread-backed sparse shards:
//!
//! 1. **Light load** — Poisson arrivals the pipeline can absorb, queue
//!    sized to admit everything. Asserts: zero prediction mismatches
//!    against solo per-request runs (batching is semantically
//!    invisible), exact admission accounting
//!    (`offered == admitted + shed`, `completed + failed == admitted`),
//!    SLA hit rate inside a pinned band, and a Gantt render showing the
//!    new queue-wait/batch rows next to the executor's RPC rows.
//! 2. **Overload** — injected shard delay, tiny admission queue, and an
//!    arrival rate far above service capacity. Asserts load shedding
//!    actually engages and the accounting identities still close.
//!
//! Wall-clock latencies vary run to run, so the gates pin identities
//! and generous bands, never exact times. Exits non-zero on any
//! violation — invoked from `scripts/verify.sh` as the frontend gate.

use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{build_model, rm, Workspace};
use dlrm_core::serving::frontend::{
    materialize_frontend_requests, run_frontend, FrontendConfig, FrontendRequest,
};
use dlrm_core::serving::threaded::ThreadedShardPool;
use dlrm_core::sharding::{
    partition_with_clients, plan, DistributedModel, ShardService, ShardingStrategy,
};
use dlrm_core::trace::{gantt, SpanKind, TraceId};
use dlrm_core::workload::{ArrivalSchedule, PoolingProfile, TraceDb};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 17;
/// Pinned SLA hit-rate band for the light-load phase. The SLA (250 ms)
/// is enormous against this model's per-batch compute, so anything
/// below 0.9 means the pipeline itself is broken, not noisy.
const LIGHT_HIT_RATE_MIN: f64 = 0.9;

fn build(delay: Duration) -> (DistributedModel, ThreadedShardPool, TraceDb) {
    // ~36 ms/request at this scale (measured in release): light load at
    // 30 qps sits well inside two workers' capacity, and the 500 ms SLA
    // leaves an order of magnitude of headroom for CI noise.
    let mut spec = rm::rm1().scaled_to_bytes(1 << 20);
    spec.mean_items_per_request = 4.0;
    spec.default_batch_size = 8;
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(2)).expect("plan");
    let model = build_model(&spec, SEED).expect("build");
    let services: Vec<Arc<ShardService>> = p
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, &p, s)))
        .collect();
    assert!(services.len() >= 2, "smoke needs ≥2 shards");
    let pool = ThreadedShardPool::spawn_with_delay(services.clone(), delay);
    let dist = partition_with_clients(model, &p, services, pool.clients()).expect("partition");
    let db = TraceDb::generate(&dist.spec, 24, SEED);
    (dist, pool, db)
}

fn solo_predictions(
    dist: &DistributedModel,
    requests: &[FrontendRequest],
) -> Vec<(u64, dlrm_core::tensor::Matrix)> {
    requests
        .iter()
        .map(|r| {
            let mut ws = Workspace::new();
            r.inputs.load_into(&dist.spec, &mut ws);
            let out = dist
                .run_overlapped(&mut ws, &mut NoopObserver)
                .expect("solo run");
            (r.id, out)
        })
        .collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    // ---- Phase 1: light load, everything admitted, bit-exactness. ----
    let (dist, pool, db) = build(Duration::ZERO);
    let requests = materialize_frontend_requests(&dist.spec, &db, SEED ^ 1);
    let expected = solo_predictions(&dist, &requests);
    let n = requests.len();
    let schedule = ArrivalSchedule::poisson(n, 30.0, SEED ^ 2);
    let cfg = FrontendConfig {
        queue_capacity: n, // everything fits: shed must be zero
        max_batch_requests: 4,
        // Long enough that consecutive 30-qps arrivals (mean 33 ms gap)
        // actually co-batch; the 500 ms SLA still dwarfs it.
        batch_timeout: Duration::from_millis(50),
        sla: Duration::from_millis(500),
        workers: 2,
    };
    let report = run_frontend(&dist, requests, &schedule, &cfg);
    pool.shutdown();

    println!("== phase 1: light load ({n} requests, Poisson 30 qps) ==");
    print!("{report}");

    if report.offered != n as u64 || report.offered != report.admitted + report.shed {
        fail("offered != admitted + shed");
    }
    if report.completed + report.failed != report.admitted {
        fail("completed + failed != admitted");
    }
    if report.shed != 0 {
        fail("light load shed requests despite a full-size queue");
    }
    if report.failed != 0 {
        fail("engine failures under light load");
    }
    let mut mismatches = 0;
    for (id, pred) in &report.predictions {
        let (_, want) = expected.iter().find(|(e, _)| e == id).expect("known id");
        if pred != want {
            mismatches += 1;
        }
    }
    if mismatches != 0 {
        fail(&format!("{mismatches} batched predictions differ from solo runs"));
    }
    let hit_rate = report.sla_hit_rate();
    if !(LIGHT_HIT_RATE_MIN..=1.0).contains(&hit_rate) {
        fail(&format!(
            "SLA hit rate {hit_rate:.4} outside pinned band [{LIGHT_HIT_RATE_MIN}, 1.0]"
        ));
    }
    // Some batch must have actually grouped requests, else the batcher
    // degenerated to one-request batches throughout.
    if report.max_batch_requests < 2 {
        fail("no batch ever held ≥2 requests under light load");
    }

    // A lead request's Gantt shows the frontend rows next to the
    // executor's RPC rows.
    let lead = report
        .trace
        .spans()
        .iter()
        .find(|s| matches!(s.kind, SpanKind::RpcOutstanding(_)))
        .map(|s| s.trace)
        .unwrap_or(TraceId(report.predictions[0].0));
    let chart = gantt::render(&report.trace, lead, 64);
    println!("{chart}");
    for needle in ["queue wait", "batch assembly", "batch execute"] {
        if !chart.contains(needle) {
            fail(&format!("Gantt render missing {needle:?} row:\n{chart}"));
        }
    }

    // ---- Phase 2: overload — shedding must engage. ----
    let (dist, pool, db) = build(Duration::from_millis(20));
    let requests = materialize_frontend_requests(&dist.spec, &db, SEED ^ 1);
    let n = requests.len();
    let schedule = ArrivalSchedule::poisson(n, 5000.0, SEED ^ 3);
    let cfg = FrontendConfig {
        queue_capacity: 2,
        max_batch_requests: 2,
        batch_timeout: Duration::from_millis(1),
        sla: Duration::from_millis(25),
        workers: 1,
    };
    let report = run_frontend(&dist, requests, &schedule, &cfg);
    pool.shutdown();

    println!("== phase 2: overload ({n} requests, Poisson 5000 qps, 20 ms shard delay) ==");
    print!("{report}");

    if report.offered != n as u64 || report.offered != report.admitted + report.shed {
        fail("overload: offered != admitted + shed");
    }
    if report.completed + report.failed != report.admitted {
        fail("overload: completed + failed != admitted");
    }
    if report.shed == 0 {
        fail("overload never shed: admission control is not engaging");
    }
    if report.sla_hit_rate() >= 1.0 {
        fail("overload met its SLA perfectly: the gate is not stressing anything");
    }

    println!("\nOK: frontend batching bit-exact, accounting closed, shedding engages under overload");
}
