//! Cache smoke test: the hot-row cache tier end to end, gated in
//! `scripts/verify.sh`.
//!
//! One seeded configuration (RM1, Zipf-1.2 traffic, 2 shards), three
//! gates:
//!
//! 1. **Bit-exactness** — the `HotRowAware` plan with its cache tier
//!    produces predictions bit-identical to a capacity-only plan on the
//!    same traffic. The cache changes where rows are served from, never
//!    what any request computes.
//! 2. **Hit-rate band** — the profiled hot set must actually absorb
//!    the skewed traffic: whole-bag hit rate inside a pinned band.
//!    Everything is seeded (statistics sampling, planning, index
//!    draws), so drift here means a planner or sampling regression,
//!    not noise.
//! 3. **Fan-out reduction** — rows sent over the replica transport
//!    must shrink versus the capacity-only plan, and the conservation
//!    identity `wired + cache-served == capacity-plan wired` must hold
//!    exactly.

use dlrm_bench::harness::{fail, replicated_cluster, smoke_spec};
use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{rm, ModelSpec, Workspace};
use dlrm_core::serving::fault::FaultPlan;
use dlrm_core::sharding::{
    plan, plan_with_stats, HotRowConfig, ShardingPlan, ShardingStrategy,
};
use dlrm_core::tensor::Matrix;
use dlrm_core::workload::{
    materialize_request_with, BatchInputs, IndexDist, PoolingProfile, RowStats, TraceDb,
};

const SEED: u64 = 61;
const SHARDS: usize = 2;
const REQUESTS: usize = 24;
const SKEW: f64 = 1.2;
/// Whole-bag hit-rate band for the pinned configuration. The run is
/// fully deterministic; the band absorbs intentional planner tuning,
/// not randomness.
const HIT_RATE_FLOOR: f64 = 0.20;
const HIT_RATE_CEIL: f64 = 0.98;

fn spec() -> ModelSpec {
    smoke_spec(rm::rm1(), 1 << 20, 6.0, 4)
}

fn skewed_inputs(spec: &ModelSpec) -> Vec<BatchInputs> {
    let db = TraceDb::generate(spec, REQUESTS, SEED ^ 2);
    (0..REQUESTS)
        .flat_map(|i| materialize_request_with(spec, db.get(i), 8, SEED ^ 3, IndexDist::Zipf(SKEW)))
        .collect()
}

/// Runs every input through a replicated-transport deployment of
/// `plan`, returning predictions and the pool's transport summary.
fn run_plan(
    spec: &ModelSpec,
    p: &ShardingPlan,
    inputs: &[BatchInputs],
) -> (Vec<Matrix>, dlrm_core::serving::replica::TransportSummary) {
    let (dist, pool) = replicated_cluster(spec, p, SEED, 1, &FaultPlan::none());
    let out = inputs
        .iter()
        .map(|inp| {
            let mut ws = Workspace::new();
            inp.load_into(&dist.spec, &mut ws);
            dist.run_overlapped(&mut ws, &mut NoopObserver)
                .expect("request")
        })
        .collect();
    let summary = pool.transport_summary();
    pool.shutdown();
    (out, summary)
}

fn main() {
    let spec = spec();
    let inputs = skewed_inputs(&spec);
    let profile = PoolingProfile::from_spec(&spec);

    let capacity =
        plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("capacity plan");
    let stats = RowStats::for_spec(&spec, 4_000, SKEW, SEED);
    let hot = plan_with_stats(
        &spec,
        &profile,
        ShardingStrategy::HotRowAware(SHARDS),
        &stats,
        &HotRowConfig {
            coverage: 0.95,
            budget_fraction: 0.5,
        },
    )
    .expect("hot-row plan");
    if !hot.has_hot_rows() {
        fail("HotRowAware plan elected no hot rows");
    }

    println!(
        "==== cache smoke: {} requests, Zipf({SKEW}), {SHARDS} shards, {} hot rows ====",
        inputs.len(),
        hot.hot_row_count()
    );

    let (base_out, base) = run_plan(&spec, &capacity, &inputs);
    let (hot_out, hotsum) = run_plan(&spec, &hot, &inputs);

    // ---- Gate 1: bit-exactness vs the capacity-only plan. ----
    if hot_out != base_out {
        fail("cache-tier predictions diverged from the capacity-only plan");
    }
    println!("bit-exact: {} predictions match the capacity-only plan", hot_out.len());

    // ---- Gate 2: pinned hit-rate band. ----
    let totals = hotsum.cache;
    if totals.hits + totals.misses == 0 {
        fail("cache tier saw no routed bags");
    }
    let hit_rate = totals.hit_rate();
    println!("cache: {totals}");
    if !(HIT_RATE_FLOOR..=HIT_RATE_CEIL).contains(&hit_rate) {
        fail(&format!(
            "whole-bag hit rate {hit_rate:.4} outside the pinned band [{HIT_RATE_FLOOR}, {HIT_RATE_CEIL}]"
        ));
    }

    // ---- Gate 3: fan-out reduction + exact row conservation. ----
    if !base.cache.is_zero() {
        fail("capacity-only plan must not touch a cache");
    }
    println!(
        "rows over wire: capacity-only {} | hot-row-aware {} ({} cache-served)",
        base.rows_sent, hotsum.rows_sent, totals.local_rows
    );
    if hotsum.rows_sent >= base.rows_sent {
        fail(&format!(
            "hot-row plan sent {} rows, capacity-only sent {} — no fan-out reduction",
            hotsum.rows_sent, base.rows_sent
        ));
    }
    if hotsum.rows_sent + totals.local_rows != base.rows_sent {
        fail(&format!(
            "row conservation violated: {} wired + {} cached != {} total",
            hotsum.rows_sent, totals.local_rows, base.rows_sent
        ));
    }

    println!(
        "\nOK: bit-exact, hit rate {hit_rate:.4} in band, wire rows {} -> {} ({:.1}% reduction)",
        base.rows_sent,
        hotsum.rows_sent,
        100.0 * (base.rows_sent - hotsum.rows_sent) as f64 / base.rows_sent as f64
    );
}
