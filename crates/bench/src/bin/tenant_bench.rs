//! Tenancy benchmark: what colocation costs each tenant, and what
//! capacity pressure costs on top. Emits `BENCH_tenants.json`.
//!
//! Three scenarios over the same seeded per-tenant workloads (RM1 +
//! RM2 + RM3, smoke-scaled, gentle open-loop Poisson streams):
//!
//! 1. **solo** — each tenant alone on the host, unconstrained DRAM:
//!    the isolation baseline.
//! 2. **coloc** — all three tenants share the frontend, unconstrained
//!    DRAM: measures the pure colocation tax (shared workers, weighted
//!    dispatch) with the pressure controller idle.
//! 3. **coloc_tight** — colocated under a DRAM budget set just below
//!    the all-DRAM footprint, pressure ticking live: measures serving
//!    with demotion cutovers riding the same core.
//!
//! Per tenant and scenario, the record set carries the end-to-end
//! p50/p99 and the latency-bounded throughput (SLA-hitting completions
//! per wall second); the tight scenario adds the demotion count and
//! the resident-byte squeeze so regressions in the pressure path are
//! visible, not just latency drift.

use dlrm_bench::harness::{fail, smoke_spec};
use dlrm_bench::report::{write_bench_json, BenchRecord};
use dlrm_core::model::{rm, ModelSpec};
use dlrm_core::serving::frontend::materialize_frontend_requests;
use dlrm_core::serving::tenancy::{
    run_tenant_set, PressureConfig, TenancyRunConfig, TenancyReport, TenantSet, TenantSpec,
    TenantWorkload,
};
use dlrm_core::sharding::ShardingStrategy;
use dlrm_core::workload::{ArrivalSchedule, TraceDb};
use std::time::Duration;

const SEED: u64 = 47;
const REQUESTS: usize = 24;
const QPS: f64 = 12.0;
/// How far under the all-DRAM footprint the tight budget sits.
const PRESSURE_GAP: u64 = 16 << 10;
const MS_TO_NS: f64 = 1e6;

fn tenant(name: &str, spec: ModelSpec, seed: u64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        spec,
        seed,
        strategy: ShardingStrategy::CapacityBalanced(2),
        weight: 1,
        queue_capacity: 64,
        sla: Duration::from_millis(500),
    }
}

fn workload(spec: &ModelSpec, seed: u64) -> TenantWorkload {
    let db = TraceDb::generate(spec, REQUESTS, seed);
    let requests = materialize_frontend_requests(spec, &db, seed ^ 1);
    let schedule = ArrivalSchedule::poisson(requests.len(), QPS, seed ^ 2);
    TenantWorkload { requests, schedule }
}

/// Runs `tenants` against their workloads; `budget` of `None` leaves
/// the controller unconstrained with no live ticking.
fn run(
    tenants: Vec<TenantSpec>,
    workloads: Vec<TenantWorkload>,
    budget: Option<u64>,
) -> (TenantSet, TenancyReport) {
    let set =
        TenantSet::build(tenants, PressureConfig::default()).unwrap_or_else(|e| fail(&e.to_string()));
    let cfg = match budget {
        Some(b) => {
            set.controller().set_budget(b);
            TenancyRunConfig {
                pressure_every: Some(Duration::from_millis(100)),
                ..TenancyRunConfig::default()
            }
        }
        None => TenancyRunConfig::default(),
    };
    let report = run_tenant_set(&set, workloads, &cfg);
    (set, report)
}

/// Appends one tenant's latency + throughput records under `scenario`.
fn record(
    records: &mut Vec<BenchRecord>,
    scenario: &str,
    name: &str,
    report: &mut dlrm_core::serving::frontend::FrontendReport,
) {
    if report.failed != 0 || report.shed != 0 {
        fail(&format!(
            "{scenario}/{name}: {} failed, {} shed — bench loads must complete cleanly",
            report.failed, report.shed
        ));
    }
    let tail = report.tail();
    records.push(BenchRecord::tail(
        format!("tenants_{scenario}_{name}_e2e"),
        tail.p50 * MS_TO_NS,
        tail.p99 * MS_TO_NS,
    ));
    records.push(BenchRecord::scalar(
        format!("tenants_{scenario}_{name}_latency_bounded"),
        report.latency_bounded_qps(),
        "qps",
    ));
}

fn main() {
    let specs = [
        ("rm1", smoke_spec(rm::rm1(), 1 << 20, 4.0, 4)),
        ("rm2", smoke_spec(rm::rm2(), 1 << 20, 4.0, 4)),
        ("rm3", smoke_spec(rm::rm3(), 1 << 20, 4.0, 4)),
    ];
    let mut records = Vec::new();

    // ---- Scenario 1: each tenant solo, unconstrained DRAM. ----
    for (i, (name, spec)) in specs.iter().enumerate() {
        let seed = SEED ^ (i as u64 * 13);
        let (_, mut report) = run(
            vec![tenant(name, spec.clone(), seed)],
            vec![workload(spec, seed ^ 3)],
            None,
        );
        record(&mut records, "solo", name, &mut report.per_tenant[0]);
        println!("solo {name}: {}", report.per_tenant[0].e2e_ms.tail_percentiles());
    }

    // ---- Scenario 2: colocated, unconstrained DRAM. ----
    let tenants = || {
        specs
            .iter()
            .enumerate()
            .map(|(i, (name, spec))| tenant(name, spec.clone(), SEED ^ (i as u64 * 13)))
            .collect::<Vec<_>>()
    };
    let workloads = || {
        specs
            .iter()
            .enumerate()
            .map(|(i, (_, spec))| workload(spec, SEED ^ (i as u64 * 13) ^ 3))
            .collect::<Vec<_>>()
    };
    let (_, mut report) = run(tenants(), workloads(), None);
    for (i, (name, _)) in specs.iter().enumerate() {
        record(&mut records, "coloc", name, &mut report.per_tenant[i]);
    }
    println!("coloc: {}", report.combined.e2e_ms.tail_percentiles());

    // ---- Scenario 3: colocated under a tight budget, live pressure. ----
    let probe = TenantSet::build(tenants(), PressureConfig::default())
        .unwrap_or_else(|e| fail(&e.to_string()));
    let all_dram = probe.bytes_by_tier().resident();
    drop(probe);
    let tight = all_dram.saturating_sub(PRESSURE_GAP);
    let (set, mut report) = run(tenants(), workloads(), Some(tight));
    // Converge: the live ticks normally finish the squeeze; bounded
    // catch-up keeps the record about the steady state, not timing.
    for _ in 0..12 {
        if set.bytes_by_tier().resident() <= tight {
            break;
        }
        let _ = set.pressure_tick();
    }
    if !set.controller().verify_failures().is_empty() {
        fail("dual-read verification failed during the tight-budget run");
    }
    for (i, (name, _)) in specs.iter().enumerate() {
        record(&mut records, "coloc_tight", name, &mut report.per_tenant[i]);
    }
    records.push(BenchRecord::scalar(
        "tenants_tight_demotions",
        set.controller().demotions() as f64,
        "cutovers",
    ));
    records.push(BenchRecord::scalar(
        "tenants_tight_resident",
        set.bytes_by_tier().resident() as f64,
        "bytes",
    ));
    records.push(BenchRecord::scalar(
        "tenants_all_dram_footprint",
        all_dram as f64,
        "bytes",
    ));
    println!(
        "coloc_tight: {} | {} demotions | resident {} of {} all-DRAM",
        report.combined.e2e_ms.tail_percentiles(),
        set.controller().demotions(),
        set.bytes_by_tier().resident(),
        all_dram
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tenants.json");
    write_bench_json(&path, &records).expect("write BENCH_tenants.json");
    println!("wrote {} records to {}", records.len(), path.display());
}
