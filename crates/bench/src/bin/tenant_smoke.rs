//! Tenancy smoke test: multi-tenant colocation with capacity-pressure
//! eviction and SLA isolation, gated in `scripts/verify.sh`.
//!
//! Three tenants (RM1 + RM2 + RM3, smoke-scaled) share one frontend
//! host. The run drives the two failure axes the tenancy layer exists
//! for, at once:
//!
//! - **Capacity pressure** — the host DRAM budget is set just below the
//!   tenants' all-DRAM footprint, so the pressure controller must
//!   demote cold tables down the storage ladder (DRAM → quantized →
//!   paged) while traffic flows; afterwards the budget is lifted and
//!   the controller must promote everything back to DRAM, every
//!   transition dual-read verified.
//! - **Admission overload** — tenant A's arrivals spike to 200× its
//!   rate mid-run against a tiny admission queue. A must shed at its
//!   own door; B and C must ride through with their solo-grade
//!   availability and SLA outcomes.
//!
//! Gates: accounting identities close per tenant, zero failed requests
//! anywhere, A sheds (and only A), B/C availability ≥ 99% with SLA hit
//! rates in band, ≥ 1 demotion and ≥ 1 promotion published with zero
//! dual-read failures, and the post-promotion epochs answer the golden
//! probes bit for bit.

use dlrm_bench::harness::{fail, smoke_spec};
use dlrm_core::model::{rm, ModelSpec};
use dlrm_core::serving::tenancy::{
    run_tenant_set, PressureConfig, TenancyRunConfig, TenantSet, TenantSpec, TenantWorkload, Tier,
};
use dlrm_core::serving::frontend::materialize_frontend_requests;
use dlrm_core::sharding::ShardingStrategy;
use dlrm_core::workload::{ArrivalSchedule, TraceDb};
use std::time::Duration;

const SEED: u64 = 41;
const B_REQUESTS: usize = 24;
const BC_QPS: f64 = 12.0;
const A_REQUESTS: usize = 48;
const A_QUEUE: usize = 2;
const SLA_FLOOR: f64 = 0.80;
const AVAILABILITY_FLOOR: f64 = 0.99;
/// How far under the all-DRAM footprint the tight budget sits.
const PRESSURE_GAP: u64 = 16 << 10;

fn tenant(name: &str, spec: ModelSpec, seed: u64, weight: u64, queue: usize) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        spec,
        seed,
        strategy: ShardingStrategy::CapacityBalanced(2),
        weight,
        queue_capacity: queue,
        sla: Duration::from_millis(500),
    }
}

fn workload(spec: &ModelSpec, n: usize, schedule: ArrivalSchedule, seed: u64) -> TenantWorkload {
    let db = TraceDb::generate(spec, n, seed);
    let requests = materialize_frontend_requests(spec, &db, seed ^ 1);
    TenantWorkload { requests, schedule }
}

fn main() {
    let a_spec = smoke_spec(rm::rm1(), 1 << 20, 4.0, 4);
    let b_spec = smoke_spec(rm::rm2(), 1 << 20, 4.0, 4);
    let c_spec = smoke_spec(rm::rm3(), 1 << 20, 4.0, 4);

    let set = TenantSet::build(
        vec![
            tenant("rm1", a_spec.clone(), SEED, 2, A_QUEUE),
            tenant("rm2", b_spec.clone(), SEED ^ 5, 1, 64),
            tenant("rm3", c_spec.clone(), SEED ^ 9, 1, 64),
        ],
        // One cutover per tick: each rebuild+verify costs real CPU on a
        // small box, and the gates are about convergence, not rate.
        PressureConfig {
            max_actions_per_tick: 1,
            ..PressureConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("build tenant set: {e}")));

    // Tight budget: just under the all-DRAM footprint, so the very
    // first pressure tick must start demoting.
    let all_dram = set.bytes_by_tier().resident();
    if all_dram <= 2 * PRESSURE_GAP {
        fail("smoke models too small to express capacity pressure");
    }
    let tight = all_dram - PRESSURE_GAP;
    set.controller().set_budget(tight);
    println!(
        "==== tenant smoke: 3 tenants, {:.2} MiB all-DRAM, budget {:.2} MiB ====",
        all_dram as f64 / (1 << 20) as f64,
        tight as f64 / (1 << 20) as f64
    );

    // Tenant A's rate spikes 200x for the middle half of its arrivals —
    // an effectively instantaneous clump its 2-slot admission queue
    // cannot hold; B and C run plain Poisson streams the host can serve
    // comfortably.
    let workloads = vec![
        workload(
            &a_spec,
            A_REQUESTS,
            ArrivalSchedule::poisson_burst(A_REQUESTS, 50.0, 200.0, 0.25, 0.5, SEED ^ 2),
            SEED ^ 3,
        ),
        workload(
            &b_spec,
            B_REQUESTS,
            ArrivalSchedule::poisson(B_REQUESTS, BC_QPS, SEED ^ 4),
            SEED ^ 5,
        ),
        workload(
            &c_spec,
            B_REQUESTS,
            ArrivalSchedule::poisson(B_REQUESTS, BC_QPS, SEED ^ 6),
            SEED ^ 7,
        ),
    ];
    let cfg = TenancyRunConfig {
        pressure_every: Some(Duration::from_millis(100)),
        ..TenancyRunConfig::default()
    };
    let report = run_tenant_set(&set, workloads, &cfg);
    print!("{}", report.combined);

    // ---- Gate 1: per-tenant accounting identities, zero failures. ----
    for t in &report.combined.tenants {
        if t.offered != t.admitted + t.shed {
            fail(&format!("{}: offered != admitted + shed", t.name));
        }
        if t.completed + t.failed != t.admitted {
            fail(&format!("{}: completed + failed != admitted", t.name));
        }
        if t.failed != 0 {
            fail(&format!("{}: {} requests failed", t.name, t.failed));
        }
        if t.degraded != 0 {
            fail(&format!("{}: {} degraded responses", t.name, t.degraded));
        }
    }

    // ---- Gate 2: the overload stays A's problem. ----
    let a = &report.combined.tenants[0];
    if a.shed == 0 {
        fail("tenant A's burst never overflowed its admission queue");
    }
    for t in &report.combined.tenants[1..] {
        if t.shed != 0 {
            fail(&format!(
                "{} shed {} requests under tenant A's overload",
                t.name, t.shed
            ));
        }
        if t.availability < AVAILABILITY_FLOOR {
            fail(&format!(
                "{} availability {:.4} under colocation (floor {AVAILABILITY_FLOOR})",
                t.name, t.availability
            ));
        }
        if t.sla_hit_rate < SLA_FLOOR {
            fail(&format!(
                "{} SLA hit rate {:.4} under colocation (floor {SLA_FLOOR})",
                t.name, t.sla_hit_rate
            ));
        }
    }

    // ---- Gate 3: pressure demoted under the tight budget. The live
    // ---- ticks normally finish the job; bounded catch-up ticks keep
    // ---- the gate about *convergence*, not tick-loop timing. ----
    for _ in 0..12 {
        if set.bytes_by_tier().resident() <= tight {
            break;
        }
        let _ = set.pressure_tick();
    }
    let squeezed = set.bytes_by_tier();
    if squeezed.resident() > tight {
        fail(&format!(
            "resident {} still over budget {} after catch-up ticks",
            squeezed.resident(),
            tight
        ));
    }
    if set.controller().demotions() == 0 {
        fail("capacity pressure published no demotions");
    }
    println!(
        "under pressure: {} ({} demotions)",
        squeezed,
        set.controller().demotions()
    );

    // ---- Gate 4: lifting the budget promotes everything home. ----
    set.controller().set_budget(u64::MAX);
    for _ in 0..60 {
        let all_dram_again = set
            .tenants()
            .iter()
            .all(|t| t.tiers().iter().all(|&tier| tier == Tier::Dram));
        if all_dram_again {
            break;
        }
        let _ = set.pressure_tick();
    }
    for t in set.tenants() {
        if !t.tiers().iter().all(|&tier| tier == Tier::Dram) {
            fail(&format!(
                "{}: tables still demoted after the budget lifted",
                t.name()
            ));
        }
    }
    if set.controller().promotions() == 0 {
        fail("budget lift published no promotions");
    }
    let restored = set.bytes_by_tier();
    if restored.resident() != all_dram {
        fail(&format!(
            "resident bytes {} != all-DRAM footprint {} after promotion",
            restored.resident(),
            all_dram
        ));
    }

    // ---- Gate 5: every transition verified, and the promoted epochs
    // ---- answer the golden probes bit for bit. ----
    let failures = set.controller().verify_failures();
    if !failures.is_empty() {
        fail(&format!("dual-read verification failures: {failures:?}"));
    }
    for t in set.tenants() {
        let replay = t
            .probe_current()
            .unwrap_or_else(|e| fail(&format!("{}: final probe: {e}", t.name())));
        for (got, want) in replay.iter().zip(t.golden()) {
            if got.as_slice() != want.as_slice() {
                fail(&format!(
                    "{}: post-promotion predictions differ from golden",
                    t.name()
                ));
            }
        }
    }

    println!(
        "\nOK: A shed {} of {} offered; B/C availability {:.4}/{:.4}, SLA {:.4}/{:.4}; \
         {} demotions + {} promotions, all verified, all-DRAM restored bit-exact",
        a.shed,
        a.offered,
        report.combined.tenants[1].availability,
        report.combined.tenants[2].availability,
        report.combined.tenants[1].sla_hit_rate,
        report.combined.tenants[2].sla_hit_rate,
        set.controller().demotions(),
        set.controller().promotions()
    );
}
