//! Rebalance smoke test: online resharding + replica autoscaling under
//! live diurnal traffic, gated in `scripts/verify.sh`.
//!
//! One seeded configuration (RM1, 2 shards, Zipf-1.2 traffic whose hot
//! set shifts halfway through, diurnal arrival ramp). A [`Rebalancer`]
//! runs beside the live frontend and must, during/around the run:
//!
//! 1. **Migrate live** — profile the traffic, warm a hot-row-aware
//!    successor plan in the background, dual-read verify it, and cut
//!    the tier over at least twice (the second migration chases the
//!    shifted hot set), with every vacated epoch drained.
//! 2. **Autoscale** — add a replica under the diurnal peak and remove
//!    one when traffic ebbs.
//! 3. **Stay invisible** — zero shed, zero failed, zero degraded
//!    requests, and every prediction bit-exact with a static run of the
//!    original plan: cutovers change *where* rows are served, never
//!    what any request computes.
//! 4. **Account for the handoff** — requests land in
//!    `FrontendReport::epochs_served` under the epoch that executed
//!    them (≥ 2 epochs visible), and the retired hot-row cache's
//!    counters survive under `cache_retired` with the refresh counted.
//!
//! Wall-clock phases (warm timing, exactly when a tick fires) vary run
//! to run, so the gates poll controller milestones with deadlines and
//! pin identities, never exact times.

use dlrm_bench::harness::{deterministic_policy, fail, smoke_spec, solo_predictions};
use dlrm_core::model::{rm, ModelSpec};
use dlrm_core::serving::frontend::{run_frontend_live, FrontendConfig, FrontendRequest};
use dlrm_core::serving::rebalance::{
    build_epoch_serving, EpochSwitch, RebalanceConfig, Rebalancer,
};
use dlrm_core::sharding::{plan, HotRowConfig, ShardingStrategy};
use dlrm_core::tensor::Matrix;
use dlrm_core::workload::{
    materialize_request_with, ArrivalSchedule, IndexDist, OnlineProfiler, PoolingProfile, TraceDb,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 73;
const SHARDS: usize = 2;
const REQUESTS: usize = 300;
const SKEW: f64 = 1.2;
const MEAN_QPS: f64 = 500.0;
const DIURNAL_AMPLITUDE: f64 = 0.5;
const TICK: Duration = Duration::from_millis(20);

fn spec() -> ModelSpec {
    smoke_spec(rm::rm1(), 1 << 20, 6.0, 4)
}

/// Zipf-skewed requests whose hot set shifts at the halfway mark: the
/// first half draws indices under one seed, the second under another,
/// so the profiled hot rows genuinely drift mid-run.
fn shifting_requests(spec: &ModelSpec) -> Vec<FrontendRequest> {
    let db = TraceDb::generate(spec, REQUESTS, SEED);
    (0..REQUESTS)
        .map(|i| {
            let shape = db.get(i);
            let phase_seed = if i < REQUESTS / 2 { SEED ^ 0xA } else { SEED ^ 0xB };
            let inputs =
                materialize_request_with(spec, shape, usize::MAX, phase_seed, IndexDist::Zipf(SKEW))
                    .into_iter()
                    .next()
                    .expect("one engine batch per request");
            FrontendRequest {
                id: shape.id,
                inputs,
            }
        })
        .collect()
}

fn main() {
    let spec = spec();
    let profile = PoolingProfile::from_spec(&spec);
    let initial =
        plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("initial plan");

    let ctrl_cfg = RebalanceConfig {
        profile_min_accesses: 60,
        dual_read_requests: 3,
        dual_read_seed: SEED ^ 17,
        // A generous cache budget so successor epochs serve whole bags
        // locally — the refresh-handoff gate below needs real hits.
        hot_rows: HotRowConfig {
            coverage: 0.95,
            budget_fraction: 0.5,
        },
        cooldown_ticks: 30,
        min_replicas: 1,
        max_replicas: 2,
        scale_up_calls_per_tick: 3,
        scale_down_calls_per_tick: 0,
        sustain_ticks: 2,
        max_migrations: 2,
        rpc_policy: Some(deterministic_policy()),
        ..RebalanceConfig::default()
    };
    let epoch0 =
        build_epoch_serving(&spec, &initial, SEED, 1, &ctrl_cfg).expect("build serving epoch 0");
    let switch = Arc::new(EpochSwitch::new(epoch0));
    let profiler = Arc::new(OnlineProfiler::for_spec(&spec));
    let rebalancer = Rebalancer::new(
        spec.clone(),
        SEED,
        Arc::clone(&switch),
        Arc::clone(&profiler),
        ctrl_cfg,
    )
    .spawn(TICK);

    let requests = shifting_requests(&spec);

    // Static baseline on the original plan: the invariant every epoch is
    // judged against.
    let baseline: Vec<(u64, Matrix)> = solo_predictions(&spec, &initial, SEED, &requests);

    // Diurnal ramp: instantaneous rate swings ±50% around the mean over
    // one simulated day — the peak pressures the replicas, the trough
    // and the post-run idle let the autoscaler contract.
    let schedule = ArrivalSchedule::trace_replay(
        REQUESTS,
        MEAN_QPS,
        DIURNAL_AMPLITUDE,
        1.0,
        SEED ^ 6,
    );
    let cfg = FrontendConfig {
        queue_capacity: REQUESTS,
        max_batch_requests: 4,
        batch_timeout: Duration::from_millis(2),
        sla: Duration::from_millis(250),
        workers: 2,
    };
    println!(
        "rebalance_smoke: {} requests over {:.0}ms ({}x{} shards/replicas initially)",
        REQUESTS,
        schedule.duration_ms(),
        SHARDS,
        1
    );
    let report = run_frontend_live(&switch, requests, &schedule, &cfg, Some(&profiler));

    // Controller milestones, polled with deadlines (the controller
    // keeps ticking on its own thread after traffic ends): replicas
    // back at the floor, then the second migration chasing the shifted
    // hot set.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let at_floor = {
            let current = switch.current();
            let pool = current.pool.as_ref().expect("serving pool");
            pool.replica_counts().iter().all(|&c| c == 1)
        };
        if at_floor {
            break;
        }
        if Instant::now() >= deadline {
            fail("replicas never scaled back to the floor after traffic ended");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while switch.epoch() < 2 {
        if Instant::now() >= deadline {
            fail(&format!(
                "second migration (shifted hot set) never published: epoch {}",
                switch.epoch()
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // One more beat so the controller can drain the last retiree.
    std::thread::sleep(Duration::from_millis(100));
    let rb_report = rebalancer.stop();

    let mut transport = {
        let current = switch.current();
        current.pool.as_ref().expect("serving pool").transport_summary()
    };
    transport.absorb_retired(&rb_report.retired_transport);

    println!("{rb_report}");
    println!("served by epoch: {:?}", report.epochs_served);
    println!("live transport + retired: {transport}");

    // Gate 1: at least two live migrations, fully drained.
    if rb_report.completed_migrations() < 2 {
        fail(&format!(
            "expected >= 2 completed migrations, got {} ({} aborted)",
            rb_report.completed_migrations(),
            rb_report.aborted_migrations()
        ));
    }
    if rb_report.cutovers < 2 {
        fail(&format!("expected >= 2 cutovers, got {}", rb_report.cutovers));
    }
    if rb_report.undrained != 0 {
        fail(&format!("{} retired epochs never drained", rb_report.undrained));
    }
    for m in &rb_report.migrations {
        if !m.aborted && (m.moved_tables == 0 || m.moved_bytes == 0) {
            fail(&format!(
                "completed migration {} -> {} moved nothing",
                m.from_epoch, m.to_epoch
            ));
        }
    }

    // Gate 2: the autoscaler both expanded under the peak and
    // contracted afterwards.
    let (ups, downs) = rb_report.scale_counts();
    if ups == 0 {
        fail("diurnal peak never triggered a replica scale-up");
    }
    if downs == 0 {
        fail("traffic ebb never triggered a replica scale-down");
    }

    // Gate 3: rebalancing was invisible to availability. Nothing shed
    // (queue sized for the run), nothing failed, nothing degraded.
    if report.offered != REQUESTS as u64 {
        fail(&format!("offered {} != {}", report.offered, REQUESTS));
    }
    if report.shed != 0 {
        fail(&format!("{} requests shed during rebalancing", report.shed));
    }
    if report.failed != 0 {
        fail(&format!("{} requests failed during rebalancing", report.failed));
    }
    if report.degraded != 0 {
        fail(&format!("{} requests degraded during rebalancing", report.degraded));
    }
    if report.completed != REQUESTS as u64 {
        fail(&format!("completed {} != {}", report.completed, REQUESTS));
    }

    // Gate 4: the cutover is visible in the report — requests were
    // served by at least two distinct epochs, and the attribution
    // exactly covers the completions.
    if report.epochs_served.len() < 2 {
        fail(&format!(
            "cutover not visible in epochs_served: {:?}",
            report.epochs_served
        ));
    }
    let attributed: u64 = report.epochs_served.iter().map(|(_, c)| c).sum();
    if attributed != report.completed {
        fail(&format!(
            "epoch attribution {attributed} != completed {}",
            report.completed
        ));
    }

    // Gate 5: bit-exactness across every epoch — all predictions match
    // the static run of the original plan.
    let mut mismatches = 0usize;
    for (id, pred) in &report.predictions {
        let Some((_, expect)) = baseline.iter().find(|(b, _)| b == id) else {
            fail(&format!("prediction for unknown request id {id}"));
        };
        if pred != expect {
            mismatches += 1;
        }
    }
    if mismatches != 0 {
        fail(&format!(
            "{mismatches}/{} predictions diverged from the static plan",
            report.predictions.len()
        ));
    }

    // Gate 6: the retired hot-row cache's counters survived the
    // handoff — epoch 1 served with a cache, and retiring it must have
    // counted one refresh and preserved its totals under
    // `cache_retired` (pre-refresh), distinct from the live epoch's
    // own cache counters (post-refresh).
    let retired = &rb_report.retired_transport;
    if retired.cache_refreshes == 0 {
        fail("retiring the cached epoch counted no cache refresh");
    }
    if retired.cache_retired.hits == 0 {
        fail("retired epoch's cache hits vanished at handoff");
    }

    println!(
        "OK: {} migrations ({} epochs served traffic), {} scale-ups / {} scale-downs, \
         {}/{} bit-exact, 0 shed / 0 failed / 0 degraded",
        rb_report.completed_migrations(),
        report.epochs_served.len(),
        ups,
        downs,
        report.predictions.len(),
        REQUESTS
    );
}
