//! Calibration probe: prints measured vs paper Table III/IV columns so
//! cost-model constants can be tuned.

use dlrm_bench::paper;
use dlrm_bench::report::compare_row;
use dlrm_core::model::rm;
use dlrm_core::Study;

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    for (spec, cells) in [
        (rm::rm1(), paper::table3_rm1()),
        (rm::rm2(), paper::table3_rm2()),
        (rm::rm3(), paper::table4_rm3()),
    ] {
        println!("\n=== {} ({} requests) ===", spec.name, requests);
        let mut study = Study::new(spec).with_requests(requests);
        for cell in cells {
            match study.run(cell.strategy) {
                Ok(r) => println!("{}  rpcs/req={:.1}", compare_row(&cell, &r), r.rpcs_per_request),
                Err(e) => println!("{:<10} SKIPPED: {e}", cell.strategy.label()),
            }
        }
    }
}
