//! Rebalance benchmark: what a live cutover costs.
//!
//! A closed request loop runs against an [`EpochSwitch`] while a
//! [`Rebalancer`] profiles the traffic, warms a successor plan, and
//! cuts over. Each request is timestamped and attributed to the epoch
//! that served it, so the run splits cleanly into *steady state* and
//! the *migration window* (the `total_ms` preceding the first
//! new-epoch response). Reported per model scale:
//!
//! - request e2e p50/p99 in steady state vs inside the migration
//!   window — the latency tax of warming + dual-reading while serving;
//! - availability inside the migration window (completed / attempted);
//! - migration phase timings (warm, dual-read, total) against the
//!   bytes of embedding capacity the cutover re-homed — since shards
//!   rebuild statelessly from the seed, this is the *capacity
//!   re-homing rate*, the paper's scale-out cost knob (§III-A1).
//!
//! Emits `BENCH_rebalance.json` at the repo root. Not a verify gate:
//! numbers here are wall-clock and machine-dependent.

use dlrm_bench::report::{write_bench_json, BenchRecord};
use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{rm, ModelSpec, Workspace};
use dlrm_core::serving::rebalance::{
    build_epoch_serving, EpochSwitch, RebalanceConfig, Rebalancer,
};
use dlrm_core::sharding::rpc::RpcPolicy;
use dlrm_core::sharding::{plan, HotRowConfig, ShardingStrategy};
use dlrm_core::workload::{
    materialize_request_with, BatchInputs, IndexDist, OnlineProfiler, PoolingProfile, TraceDb,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 91;
const SHARDS: usize = 2;
const INPUTS: usize = 48;
const MIN_SAMPLES: usize = 400;
const MAX_SAMPLES: usize = 1600;
const SKEW: f64 = 1.2;

fn spec_at(bytes: u64) -> ModelSpec {
    let mut spec = rm::rm1().scaled_to_bytes(bytes);
    spec.mean_items_per_request = 6.0;
    spec.default_batch_size = 4;
    spec
}

fn deterministic_policy() -> RpcPolicy {
    RpcPolicy {
        attempt_timeout: None,
        max_attempts: 4,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(1),
        hedge_after: None,
        degraded_fallback: true,
    }
}

fn skewed_inputs(spec: &ModelSpec) -> Vec<BatchInputs> {
    let db = TraceDb::generate(spec, INPUTS, SEED);
    (0..INPUTS)
        .map(|i| {
            materialize_request_with(spec, db.get(i), usize::MAX, SEED ^ 3, IndexDist::Zipf(SKEW))
                .into_iter()
                .next()
                .expect("one engine batch per request")
        })
        .collect()
}

struct ScaleResult {
    steady_ns: Vec<f64>,
    cutover_ns: Vec<f64>,
    cutover_attempted: usize,
    cutover_completed: usize,
    warm_ms: f64,
    dual_read_ms: f64,
    total_ms: f64,
    moved_bytes: u64,
}

/// One scale: serve a closed loop through one live migration, split the
/// samples at the migration window, and return the timings.
fn run_scale(bytes: u64) -> ScaleResult {
    let spec = spec_at(bytes);
    let profile = PoolingProfile::from_spec(&spec);
    let initial =
        plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("initial plan");
    let cfg = RebalanceConfig {
        profile_min_accesses: 200,
        dual_read_requests: 3,
        dual_read_seed: SEED ^ 17,
        hot_rows: HotRowConfig {
            coverage: 0.95,
            budget_fraction: 0.5,
        },
        cooldown_ticks: 0,
        max_migrations: 1,
        // Autoscaling off: this bench isolates the migration cost.
        scale_up_calls_per_tick: u64::MAX,
        scale_down_calls_per_tick: 0,
        rpc_policy: Some(deterministic_policy()),
        ..RebalanceConfig::default()
    };
    let epoch0 = build_epoch_serving(&spec, &initial, SEED, 1, &cfg).expect("build epoch 0");
    let switch = Arc::new(EpochSwitch::new(epoch0));
    let profiler = Arc::new(OnlineProfiler::for_spec(&spec));
    let rebalancer = Rebalancer::new(
        spec.clone(),
        SEED,
        Arc::clone(&switch),
        Arc::clone(&profiler),
        cfg,
    )
    .spawn(Duration::from_millis(5));

    let inputs = skewed_inputs(&spec);
    let origin = Instant::now();
    // (offset_ms, e2e_ns, epoch, ok) per attempted request.
    let mut samples: Vec<(f64, f64, u64, bool)> = Vec::with_capacity(MIN_SAMPLES);
    let mut i = 0usize;
    loop {
        let inp = &inputs[i % inputs.len()];
        profiler.observe(inp);
        let started = Instant::now();
        let current = switch.current();
        let mut ws = Workspace::new();
        inp.load_into(&spec, &mut ws);
        let ok = current.model.run_overlapped(&mut ws, &mut NoopObserver).is_ok();
        samples.push((
            started.duration_since(origin).as_secs_f64() * 1e3,
            started.elapsed().as_nanos() as f64,
            current.epoch,
            ok,
        ));
        drop(current);
        i += 1;
        let migrated = samples.last().is_some_and(|s| s.2 >= 1);
        if (migrated && i >= MIN_SAMPLES) || i >= MAX_SAMPLES {
            break;
        }
    }
    let report = rebalancer.stop();
    let m = report
        .migrations
        .iter()
        .find(|m| !m.aborted)
        .expect("bench run must complete one migration");

    // The migration window: `total_ms` ending at the first response
    // served by the new epoch.
    let cut_at = samples
        .iter()
        .find(|s| s.2 >= 1)
        .map(|s| s.0)
        .expect("loop ran until cutover");
    let window = (cut_at - m.total_ms, cut_at);
    let mut steady_ns = Vec::new();
    let mut cutover_ns = Vec::new();
    let mut cutover_attempted = 0usize;
    let mut cutover_completed = 0usize;
    for &(at, ns, _, ok) in &samples {
        if at >= window.0 && at < window.1 {
            cutover_attempted += 1;
            cutover_completed += usize::from(ok);
            if ok {
                cutover_ns.push(ns);
            }
        } else if ok {
            steady_ns.push(ns);
        }
    }
    ScaleResult {
        steady_ns,
        cutover_ns,
        cutover_attempted,
        cutover_completed,
        warm_ms: m.warm_ms,
        dual_read_ms: m.dual_read_ms,
        total_ms: m.total_ms,
        moved_bytes: m.moved_bytes,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let scales: [(u64, &str); 2] = [(1 << 20, "1mib"), (1 << 22, "4mib")];
    let mut records = Vec::new();
    for (bytes, label) in scales {
        let mut r = run_scale(bytes);
        r.steady_ns.sort_by(|a, b| a.total_cmp(b));
        r.cutover_ns.sort_by(|a, b| a.total_cmp(b));
        let steady_p50 = percentile(&r.steady_ns, 0.50);
        let steady_p99 = percentile(&r.steady_ns, 0.99);
        let cut_p50 = percentile(&r.cutover_ns, 0.50);
        let cut_p99 = percentile(&r.cutover_ns, 0.99);
        let availability = if r.cutover_attempted == 0 {
            100.0
        } else {
            100.0 * r.cutover_completed as f64 / r.cutover_attempted as f64
        };
        let rehome_rate = r.moved_bytes as f64 / (r.total_ms / 1e3).max(1e-9);

        println!("==== rebalance bench @ {label} ====");
        println!(
            "steady:   {} samples, p50 {:.1} us, p99 {:.1} us",
            r.steady_ns.len(),
            steady_p50 / 1e3,
            steady_p99 / 1e3
        );
        println!(
            "cutover:  {} samples, p50 {:.1} us, p99 {:.1} us, availability {:.2}%",
            r.cutover_ns.len(),
            cut_p50 / 1e3,
            cut_p99 / 1e3,
            availability
        );
        println!(
            "migration: warm {:.1} ms + dual-read {:.1} ms = {:.1} ms total | \
             {:.2} MiB re-homed ({:.1} MiB/s)",
            r.warm_ms,
            r.dual_read_ms,
            r.total_ms,
            r.moved_bytes as f64 / (1 << 20) as f64,
            rehome_rate / (1 << 20) as f64
        );

        records.push(BenchRecord::tail(
            format!("rebalance_request_steady_{label}"),
            steady_p50,
            steady_p99,
        ));
        records.push(BenchRecord::tail(
            format!("rebalance_request_cutover_{label}"),
            cut_p50,
            cut_p99,
        ));
        records.push(BenchRecord::scalar(
            format!("rebalance_availability_cutover_{label}"),
            availability,
            "percent",
        ));
        records.push(BenchRecord::scalar(
            format!("rebalance_migration_warm_{label}"),
            r.warm_ms,
            "ms",
        ));
        records.push(BenchRecord::scalar(
            format!("rebalance_migration_dual_read_{label}"),
            r.dual_read_ms,
            "ms",
        ));
        records.push(BenchRecord::scalar(
            format!("rebalance_migration_total_{label}"),
            r.total_ms,
            "ms",
        ));
        records.push(BenchRecord::scalar(
            format!("rebalance_moved_bytes_{label}"),
            r.moved_bytes as f64,
            "bytes",
        ));
        records.push(BenchRecord::scalar(
            format!("rebalance_rehome_rate_{label}"),
            rehome_rate,
            "bytes_per_sec",
        ));
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rebalance.json");
    write_bench_json(&path, &records).expect("write BENCH_rebalance.json");
    println!("\nwrote {}", path.display());
}
