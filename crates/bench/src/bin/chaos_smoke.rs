//! Chaos smoke test: the fault-tolerant transport end to end, gated in
//! `scripts/verify.sh`.
//!
//! Three phases against 3 sparse shards × 2 replicas each:
//!
//! 1. **Replica faults** — a seeded [`FaultPlan`] crashes one replica
//!    of every shard mid-run and makes one surviving replica slow.
//!    Under the resilient retry policy with hedging, the frontend must
//!    hold availability ≥ 99% with *zero* degraded responses, and every
//!    completed prediction must be bit-exact against a fault-free solo
//!    run — failover may change which replica answers, never the
//!    answer.
//! 2. **Total shard outage** — every replica of every shard is crashed
//!    from the first request. Degraded-mode serving must engage: all
//!    admitted requests complete (as degraded, zero-embedding
//!    responses), none fail.
//! 3. **Determinism** — rerunning phase 2 with the same seeds must
//!    reproduce identical outcome counts (offered / admitted / shed /
//!    completed / failed / degraded).
//!
//! Wall-clock latencies vary run to run; the gates pin accounting
//! identities, availability floors and bit-exactness, never times.

use dlrm_bench::harness::{check_identities, fail, replicated_cluster, smoke_spec, solo_predictions};
use dlrm_core::model::{rm, ModelSpec};
use dlrm_core::serving::fault::{FaultAction, FaultPlan, ReplicaFaultSchedule};
use dlrm_core::serving::frontend::{
    materialize_frontend_requests, run_frontend, FrontendConfig, FrontendReport,
};
use dlrm_core::sharding::{plan, RpcPolicy, ShardingStrategy};
use dlrm_core::workload::{ArrivalSchedule, PoolingProfile, TraceDb};
use std::time::Duration;

const SEED: u64 = 23;
const SHARDS: usize = 3;
const REPLICAS: usize = 2;
const AVAILABILITY_FLOOR: f64 = 0.99;

fn spec() -> ModelSpec {
    smoke_spec(rm::rm1(), 1 << 20, 4.0, 8)
}

/// Builds the replicated cluster under `faults` and runs one open-loop
/// frontend pass, attaching the pool's transport summary to the report.
fn run_cluster(faults: &FaultPlan, policy: RpcPolicy, qps: f64) -> (FrontendReport, usize) {
    let spec = spec();
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("plan");
    let (mut dist, pool) = replicated_cluster(&spec, &p, SEED, REPLICAS, faults);
    if dist.set_rpc_policy(policy) == 0 {
        fail("no SparseRpc operator accepted the policy");
    }

    let db = TraceDb::generate(&spec, 24, SEED);
    let requests = materialize_frontend_requests(&spec, &db, SEED ^ 1);
    let n = requests.len();
    let schedule = ArrivalSchedule::poisson(n, qps, SEED ^ 2);
    let cfg = FrontendConfig {
        queue_capacity: n, // everything fits: shed must be zero
        max_batch_requests: 4,
        batch_timeout: Duration::from_millis(20),
        sla: Duration::from_millis(500),
        workers: 2,
    };
    let mut report = run_frontend(&dist, requests, &schedule, &cfg);
    report.transport = Some(pool.transport_summary());
    pool.shutdown();
    (report, n)
}

/// Phase-1 baseline: the same trace on a fault-free in-process
/// partition of the same plan.
fn baseline(spec: &ModelSpec) -> Vec<(u64, dlrm_core::tensor::Matrix)> {
    let profile = PoolingProfile::from_spec(spec);
    let p = plan(spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("plan");
    let db = TraceDb::generate(spec, 24, SEED);
    let requests = materialize_frontend_requests(spec, &db, SEED ^ 1);
    solo_predictions(spec, &p, SEED, &requests)
}

fn main() {
    // ---- Phase 1: one replica of each shard crashes mid-run, one
    // ---- surviving replica is slow; availability must hold. ----
    let mut faults = FaultPlan::none();
    for shard in 0..SHARDS {
        faults = faults.with(shard, 0, ReplicaFaultSchedule::crash_at(2 + shard as u64));
    }
    // Shard 0's surviving replica answers, but slowly: the straggler
    // tail the hedge is for.
    faults = faults.with(
        0,
        1,
        ReplicaFaultSchedule::none().with_every(FaultAction::Delay(Duration::from_millis(2))),
    );
    let policy = RpcPolicy::resilient().with_hedge_from_p99_ms(1.0);
    let (report, n) = run_cluster(&faults, policy, 60.0);

    println!("== phase 1: replica crashes + slow replica ({n} requests) ==");
    print!("{report}");

    check_identities(&report, n, "phase 1");
    let availability = report.availability();
    if availability < AVAILABILITY_FLOOR {
        fail(&format!(
            "availability {availability:.4} under replica faults (floor {AVAILABILITY_FLOOR})"
        ));
    }
    if report.degraded != 0 {
        fail(&format!(
            "{} degraded responses with a healthy replica per shard",
            report.degraded
        ));
    }
    let expected = baseline(&spec());
    let mut mismatches = 0;
    for (id, pred) in &report.predictions {
        let (_, want) = expected.iter().find(|(e, _)| e == id).expect("known id");
        if pred != want {
            mismatches += 1;
        }
    }
    if mismatches != 0 {
        fail(&format!(
            "{mismatches} predictions differ from fault-free solo runs"
        ));
    }
    let transport = report.transport.as_ref().expect("transport summary");
    if transport.failovers == 0 {
        fail("no failovers recorded despite crashed replicas");
    }

    // ---- Phase 2: total outage — degraded-mode serving engages. ----
    let mut outage = FaultPlan::none();
    for shard in 0..SHARDS {
        for replica in 0..REPLICAS {
            outage = outage.with(shard, replica, ReplicaFaultSchedule::crash_at(0));
        }
    }
    let (report, n) = run_cluster(&outage, RpcPolicy::resilient(), 200.0);

    println!("\n== phase 2: total shard outage ({n} requests) ==");
    print!("{report}");

    check_identities(&report, n, "phase 2");
    if report.failed != 0 {
        fail(&format!(
            "{} requests failed during a total outage: degraded fallback did not engage",
            report.failed
        ));
    }
    if report.degraded != report.completed || report.degraded == 0 {
        fail(&format!(
            "expected every completion degraded, got {}/{}",
            report.degraded, report.completed
        ));
    }
    if report.sla_hits() != 0 {
        fail("degraded responses must not count as SLA hits");
    }

    // ---- Phase 3: same seeds, same outcome counts. ----
    let (rerun, _) = run_cluster(&outage, RpcPolicy::resilient(), 200.0);
    let counts = |r: &FrontendReport| {
        (
            r.offered, r.admitted, r.shed, r.completed, r.failed, r.degraded,
        )
    };
    if counts(&report) != counts(&rerun) {
        fail(&format!(
            "same-seed rerun diverged: {:?} vs {:?}",
            counts(&report),
            counts(&rerun)
        ));
    }
    println!("\n== phase 3: same-seed rerun reproduced {:?} ==", counts(&rerun));

    println!(
        "\nOK: availability {availability:.4} under replica faults, degraded-mode serving on total outage, deterministic outcome counts"
    );
}
