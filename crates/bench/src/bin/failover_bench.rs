//! Failover benchmark: what hedging buys under a slow replica.
//!
//! One sparse shard served by 2 replicas, one of which stalls every
//! fourth request it serves (an intermittent straggler — the
//! tail-at-scale failure shape). A closed loop drives single-request
//! inferences through the replicated transport twice — once with
//! retries only, once with straggler hedging — and reports the e2e
//! latency p50/p99 of each. Without hedging, every RPC unlucky enough
//! to hit a stall eats the full delay, so the tail absorbs it; with
//! hedging, the duplicate attempt races the straggler and the healthy
//! replica wins the tail back while the median stays put (the
//! tail-at-scale recipe the paper's §VII serving tier assumes).
//!
//! Emits `BENCH_chaos.json` at the repo root — one record per
//! (config, percentile) — alongside a human-readable comparison. Not a
//! verify gate: numbers here are wall-clock and machine-dependent.

use dlrm_bench::report::{write_bench_json, BenchRecord};
use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{build_model, rm, ModelSpec, Workspace};
use dlrm_core::serving::fault::{FaultAction, FaultPlan, ReplicaFaultSchedule};
use dlrm_core::serving::replica::{HealthPolicy, ReplicatedShardPool};
use dlrm_core::sharding::{
    partition_with_clients, plan, RpcPolicy, ShardService, ShardingStrategy,
};
use dlrm_core::workload::{materialize_request, PoolingProfile, TraceDb};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 31;
const REQUESTS: usize = 80;
/// The injected stall on replica 0's straggling requests.
const STALL_MS: u64 = 20;
/// Replica 0 stalls every `STALL_PERIOD`-th request it serves.
const STALL_PERIOD: u64 = 4;

fn spec() -> ModelSpec {
    let mut spec = rm::rm1().scaled_to_bytes(1 << 20);
    spec.mean_items_per_request = 4.0;
    spec.default_batch_size = 4;
    spec
}

/// Runs `REQUESTS` closed-loop inferences under `policy` against a
/// 2-replica shard whose replica 0 stalls periodically. Returns
/// per-request e2e nanoseconds.
fn run_config(policy: RpcPolicy) -> Vec<f64> {
    let spec = spec();
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::OneShard).expect("plan");
    let model = build_model(&spec, SEED).expect("build");
    let services: Vec<Arc<ShardService>> = p
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, &p, s)))
        .collect();
    let mut schedule = ReplicaFaultSchedule::none();
    let mut ordinal = 0;
    // Enough stall points to cover every request replica 0 could see,
    // hedges included.
    while ordinal < (REQUESTS as u64) * 16 {
        schedule = schedule.with(ordinal, FaultAction::Delay(Duration::from_millis(STALL_MS)));
        ordinal += STALL_PERIOD;
    }
    let faults = FaultPlan::none().with(0, 0, schedule);
    let pool = ReplicatedShardPool::spawn(
        services.clone(),
        2,
        Duration::ZERO,
        &faults,
        HealthPolicy::default(),
    );
    let mut dist =
        partition_with_clients(model, &p, services, pool.clients()).expect("partition");
    assert!(dist.set_rpc_policy(policy) >= 1);

    let db = TraceDb::generate(&spec, REQUESTS, SEED);
    let mut samples = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let inputs = materialize_request(&spec, db.get(i), usize::MAX, SEED ^ 7)
            .into_iter()
            .next()
            .expect("one engine batch per request");
        let mut ws = Workspace::new();
        inputs.load_into(&spec, &mut ws);
        let start = Instant::now();
        dist.run_overlapped(&mut ws, &mut NoopObserver)
            .expect("request under a slow-but-alive replica");
        samples.push(start.elapsed().as_secs_f64() * 1e9);
    }
    pool.shutdown();
    samples
}

/// The p-th percentile (nearest-rank) of `samples`.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

fn main() {
    // Retries only: a stalled reply is still a reply, so every RPC that
    // lands on a stall point eats the full delay.
    let no_hedge = RpcPolicy::resilient();
    // Hedged: duplicate the attempt if no reply within a tenth of the
    // stall; the healthy replica's answer wins the race.
    let hedged = RpcPolicy::resilient().with_hedge_from_p99_ms(STALL_MS as f64 * 0.1);

    let mut records = Vec::new();
    println!("==== chaos: straggling-replica failover, {REQUESTS} closed-loop requests ====");
    println!(
        "(replica 0 of 2 stalls +{STALL_MS} ms on every {STALL_PERIOD}th request it serves)\n"
    );
    for (label, policy) in [("no_hedge", no_hedge), ("with_hedge", hedged)] {
        let mut samples = run_config(policy);
        let p50 = percentile(&mut samples, 50.0);
        let p99 = percentile(&mut samples, 99.0);
        println!(
            "{label:<12} p50 {:8.3} ms   p99 {:8.3} ms",
            p50 / 1e6,
            p99 / 1e6
        );
        records.push(BenchRecord::tail(
            format!("chaos_slow_replica_{label}"),
            p50,
            p99,
        ));
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chaos.json");
    write_bench_json(&path, &records).expect("write BENCH_chaos.json");
    println!("\nwrote {}", path.display());
}
