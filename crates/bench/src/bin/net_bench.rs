//! Network transport benchmark: what the socket boundary costs.
//!
//! The same distributed model runs a closed request loop over two
//! transports — the direct in-process client (function call, zero
//! serde) and the TCP loopback transport (real frames, real kernel
//! round trips) — and reports per-request e2e p50/p99 for each, the
//! TCP overhead, and how much of the TCP wall time is serde (encode +
//! decode) versus socket I/O and service time. This quantifies the
//! paper's premise that scale-out pays a per-hop latency tax
//! (§III-A2); the serde share says how much of that tax our wire
//! format is responsible for.
//!
//! Emits `BENCH_net.json` at the repo root — p50/p99 records per
//! transport plus the serde figures — alongside a human-readable
//! comparison. Not a verify gate: numbers here are wall-clock and
//! machine-dependent.

use dlrm_bench::report::{write_bench_json, BenchRecord};
use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{build_model, rm, ModelSpec, Workspace};
use dlrm_core::serving::fault::FaultPlan;
use dlrm_core::serving::replica::HealthPolicy;
use dlrm_core::serving::shard_server::TcpShardPool;
use dlrm_core::sharding::{
    partition, partition_with_clients, plan, DistributedModel, ShardService, ShardingStrategy,
};
use dlrm_core::workload::{materialize_request, BatchInputs, PoolingProfile, TraceDb};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 37;
const SHARDS: usize = 2;
const REQUESTS: usize = 150;
const WARMUP: usize = 10;

fn spec() -> ModelSpec {
    let mut spec = rm::rm1().scaled_to_bytes(1 << 20);
    spec.mean_items_per_request = 4.0;
    spec.default_batch_size = 4;
    spec
}

fn inputs_for(spec: &ModelSpec) -> Vec<BatchInputs> {
    let db = TraceDb::generate(spec, REQUESTS, SEED);
    (0..REQUESTS)
        .map(|i| {
            materialize_request(spec, db.get(i), usize::MAX, SEED ^ 7)
                .into_iter()
                .next()
                .expect("one engine batch per request")
        })
        .collect()
}

/// Runs the closed loop and returns per-request e2e nanoseconds
/// (warmup excluded).
fn closed_loop(dist: &DistributedModel, inputs: &[BatchInputs]) -> Vec<f64> {
    let mut samples = Vec::with_capacity(inputs.len());
    for (i, inputs) in inputs.iter().enumerate() {
        let mut ws = Workspace::new();
        inputs.load_into(&dist.spec, &mut ws);
        let start = Instant::now();
        dist.run_overlapped(&mut ws, &mut NoopObserver)
            .expect("request");
        if i >= WARMUP {
            samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
    samples
}

/// The p-th percentile (nearest-rank) of `samples`.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

fn main() {
    let spec = spec();
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(SHARDS)).expect("plan");
    let inputs = inputs_for(&spec);
    let timed = REQUESTS - WARMUP;

    println!(
        "==== net: in-process vs TCP loopback transport, {timed} closed-loop requests ({SHARDS} shards) ===="
    );

    // ---- In-process: direct function-call clients, zero serde. ----
    let dist = partition(build_model(&spec, SEED).expect("build"), &p).expect("partition");
    let mut inproc = closed_loop(&dist, &inputs);
    let inproc_p50 = percentile(&mut inproc, 50.0);
    let inproc_p99 = percentile(&mut inproc, 99.0);
    drop(dist);

    // ---- TCP loopback: every RPC crosses a socket. ----
    let model = build_model(&spec, SEED).expect("build");
    let services: Vec<Arc<ShardService>> = p
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, &p, s)))
        .collect();
    let pool = TcpShardPool::spawn(
        services.clone(),
        1,
        Duration::ZERO,
        &FaultPlan::none(),
        HealthPolicy::default(),
    )
    .expect("spawn tcp pool");
    let dist = partition_with_clients(model, &p, services, pool.clients()).expect("partition");
    let wall_start = Instant::now();
    let mut tcp = closed_loop(&dist, &inputs);
    let tcp_wall_ns = wall_start.elapsed().as_secs_f64() * 1e9;
    let tcp_p50 = percentile(&mut tcp, 50.0);
    let tcp_p99 = percentile(&mut tcp, 99.0);

    let wire = pool.transport_summary().wire;
    pool.shutdown();
    assert!(!wire.is_zero(), "TCP run recorded no wire activity");
    let rpcs = wire.frames_sent.max(1);
    let serde_ns_total = wire.serde_ns as f64;
    let serde_per_rpc = serde_ns_total / rpcs as f64;
    let serde_share = 100.0 * serde_ns_total / tcp_wall_ns;
    let bytes_per_rpc =
        (wire.bytes_sent + wire.bytes_received) as f64 / rpcs as f64;

    println!(
        "in_process   p50 {:9.1} us   p99 {:9.1} us",
        inproc_p50 / 1e3,
        inproc_p99 / 1e3
    );
    println!(
        "tcp_loopback p50 {:9.1} us   p99 {:9.1} us",
        tcp_p50 / 1e3,
        tcp_p99 / 1e3
    );
    println!(
        "tcp overhead p50 {:+9.1} us   p99 {:+9.1} us",
        (tcp_p50 - inproc_p50) / 1e3,
        (tcp_p99 - inproc_p99) / 1e3
    );
    println!(
        "tcp wire: {} rpcs, {:.0} B/rpc, serde {:.1} us/rpc ({serde_share:.2}% of wall)",
        rpcs,
        bytes_per_rpc,
        serde_per_rpc / 1e3
    );

    let mut serde_record = BenchRecord::p50("net_tcp_serde_per_rpc", serde_per_rpc);
    serde_record.throughput = Some(("percent_of_wall".into(), serde_share));
    let records = vec![
        BenchRecord::tail("net_request_inprocess", inproc_p50, inproc_p99),
        BenchRecord::tail("net_request_tcp", tcp_p50, tcp_p99),
        BenchRecord::tail(
            "net_tcp_overhead",
            tcp_p50 - inproc_p50,
            tcp_p99 - inproc_p99,
        ),
        serde_record,
        BenchRecord::scalar("net_tcp_bytes_per_rpc", bytes_per_rpc, "bytes"),
    ];
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net.json");
    write_bench_json(&path, &records).expect("write BENCH_net.json");
    println!("\nwrote {}", path.display());
}
