//! Runtime smoke test: the CI gate for the intra-op parallel kernel
//! runtime (DESIGN §3.3, §3.8).
//!
//! Four bounds, checked on a fixed model and a fixed GEMM shape:
//!
//! 1. **Determinism** — predictions from the full model are bit-exact
//!    across explicit 1-worker and 4-worker pools (and against the
//!    plain sequential executor). Always asserted: the contract holds
//!    on any machine.
//! 2. **Single-thread GEMM throughput** — the blocked/register-tiled
//!    *scalar* kernel (dispatch pinned to scalar) must beat the naive
//!    reference by ≥3× at 256×512×512. Always asserted: this is an
//!    ILP/locality win, not a core-count or SIMD win.
//! 3. **SIMD GEMM throughput** — the exact AVX2 tier must stay
//!    bit-exact with the reference, and the *fastest* available SIMD
//!    tier (FMA-contracted where the host has it, exact AVX2
//!    otherwise) must beat the scalar blocked kernel by ≥2× on the
//!    same shape. The FMA result is tolerance-checked against the
//!    reference rather than bitwise (DESIGN §3.8: contraction is the
//!    one documented departure from the exact fold). The exact tier
//!    alone cannot carry the ratio gate: separate mul/add peaks at
//!    exactly 2× the SSE throughput the autovectorized scalar kernel
//!    already sustains, so 2× is its theoretical ceiling, not a
//!    passable bound. Auto-skipped on hosts without AVX2 (the ratio
//!    gate only; bit-exactness has nothing to check there since the
//!    tier cannot run).
//! 4. **Parallel speedup** — a large-batch model run on a 4-worker
//!    pool must be ≥1.5× faster than on a 1-worker pool. Only asserted
//!    when the host actually has ≥4 cores (otherwise printed as SKIP —
//!    forking 4 ways on 1 core cannot speed anything up).
//!
//! Exits non-zero on any violated bound — invoked from
//! `scripts/verify.sh` as the runtime gate, once under the default
//! dispatch and once under `DLRM_SIMD=off` so both code paths stay
//! exercised.

use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{build_model, rm, Pool, RuntimeCtx, Workspace};
use dlrm_core::runtime::KernelDispatch;
use dlrm_core::tensor::Matrix;
use dlrm_core::workload::{materialize_request, TraceDb};
use std::sync::Arc;
use std::time::Instant;

/// Single-thread blocked-vs-naive GEMM bound (acceptance criterion).
const GEMM_SPEEDUP_BOUND: f64 = 3.0;
/// Fastest SIMD tier vs scalar-blocked GEMM bound (only on AVX2 hosts).
const SIMD_SPEEDUP_BOUND: f64 = 2.0;
/// Relative error budget for the FMA-contracted tier against the
/// reference kernel (mirrors the property-suite tolerance: one
/// contraction per mul/add pair over a k-long fold).
const FMA_REL_TOL: f32 = 1e-4;
/// 4-worker vs 1-worker model-run bound (only on ≥4-core hosts).
const PAR_SPEEDUP_BOUND: f64 = 1.5;
/// GEMM acceptance shape.
const GEMM_SHAPE: (usize, usize, usize) = (256, 512, 512);

fn median_secs(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// Times `f` a few times and returns the median wall-clock seconds.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        runs.push(t0.elapsed().as_secs_f64());
    }
    median_secs(runs)
}

fn main() {
    let mut failures = 0usize;
    println!(
        "dispatch: {} (DLRM_SIMD={})",
        KernelDispatch::detect().level(),
        std::env::var("DLRM_SIMD").unwrap_or_else(|_| "<unset>".into())
    );

    // --- Fixed model: a scaled RM3 with a large batch, so FC and SLS
    // --- kernels clear their parallel-grain thresholds.
    let mut spec = rm::rm3().scaled_to_bytes(8 << 20);
    spec.mean_items_per_request = 512.0;
    spec.default_batch_size = 256;
    let model = build_model(&spec, 7).expect("build model");
    let db = TraceDb::generate(&spec, 1, 13);
    let batches = materialize_request(&spec, db.get(0), 256, 13);
    let batch = &batches[0];

    let run_on = |pool: Pool| -> Matrix {
        let ctx = RuntimeCtx::new(pool);
        let counts = Arc::new(model.consumer_counts());
        let mut ws = Workspace::with_ctx(ctx);
        ws.set_consumer_counts(counts);
        batch.load_into(&spec, &mut ws);
        model
            .run_overlapped(&mut ws, &mut NoopObserver)
            .expect("model run")
    };

    // --- 1. Determinism across worker counts.
    let sequential = {
        let mut ws = Workspace::new();
        batch.load_into(&spec, &mut ws);
        model.run(&mut ws, &mut NoopObserver).expect("sequential run")
    };
    let one = run_on(Pool::new(1));
    let four = run_on(Pool::new(4));
    if one == sequential && four == sequential {
        println!(
            "PASS determinism: predictions bit-exact across sequential / 1-worker / 4-worker \
             ({} rows)",
            sequential.rows()
        );
    } else {
        println!("FAIL determinism: predictions differ across worker counts");
        failures += 1;
    }

    // --- 2. Blocked vs naive GEMM, single thread, dispatch pinned to
    // --- scalar so the bound measures blocking/tiling, not SIMD.
    let (m, k, n) = GEMM_SHAPE;
    let scalar_pool = Pool::with_dispatch(1, KernelDispatch::scalar());
    let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 17) as f32 * 0.1).collect());
    let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 13) as f32 * 0.01).collect());
    if a.matmul_par(&b, &scalar_pool) != a.matmul_reference(&b) {
        println!("FAIL gemm: blocked kernel is not bit-exact with the reference");
        failures += 1;
    }
    let blocked = time_median(5, || a.matmul_par(&b, &scalar_pool));
    let naive = time_median(5, || a.matmul_reference(&b));
    let gemm_speedup = naive / blocked.max(1e-12);
    let gflop = 2.0 * (m * k * n) as f64 / 1e9;
    println!(
        "{} gemm {m}x{k}x{n}: blocked {:.2} GFLOP/s vs naive {:.2} GFLOP/s — {gemm_speedup:.2}x \
         (bound {GEMM_SPEEDUP_BOUND}x)",
        if gemm_speedup >= GEMM_SPEEDUP_BOUND { "PASS" } else { "FAIL" },
        gflop / blocked,
        gflop / naive,
    );
    if gemm_speedup < GEMM_SPEEDUP_BOUND {
        failures += 1;
    }

    // --- 3. SIMD tiers vs scalar blocked kernel (needs AVX2 hardware;
    // --- the ratio gate auto-skips elsewhere).
    if let Some(avx2) = KernelDispatch::forced_avx2() {
        let reference = a.matmul_reference(&b);
        let avx2_pool = Pool::with_dispatch(1, avx2);
        if a.matmul_par(&b, &avx2_pool) != reference {
            println!("FAIL simd gemm: exact AVX2 tier is not bit-exact with the reference");
            failures += 1;
        }
        // Ratio gate rides on the fastest tier the host offers: the
        // FMA-contracted kernel where available (tolerance-checked),
        // the exact tier otherwise.
        let (tier, fast_pool) = match KernelDispatch::forced_fma() {
            Some(fma) => ("fma", Pool::with_dispatch(1, fma)),
            None => ("avx2", avx2_pool),
        };
        let fast = a.matmul_par(&b, &fast_pool);
        let max_rel = reference
            .as_slice()
            .iter()
            .zip(fast.as_slice())
            .map(|(r, f)| (r - f).abs() / r.abs().max(1.0))
            .fold(0.0f32, f32::max);
        if max_rel > FMA_REL_TOL {
            println!(
                "FAIL simd gemm: {tier} tier off by {max_rel:.2e} relative \
                 (tolerance {FMA_REL_TOL:.0e})"
            );
            failures += 1;
        }
        let simd = time_median(5, || a.matmul_par(&b, &fast_pool));
        let simd_speedup = blocked / simd.max(1e-12);
        println!(
            "{} simd gemm {m}x{k}x{n}: {tier} {:.2} GFLOP/s vs scalar blocked {:.2} GFLOP/s — \
             {simd_speedup:.2}x (bound {SIMD_SPEEDUP_BOUND}x)",
            if simd_speedup >= SIMD_SPEEDUP_BOUND { "PASS" } else { "FAIL" },
            gflop / simd,
            gflop / blocked,
        );
        if simd_speedup < SIMD_SPEEDUP_BOUND {
            failures += 1;
        }
    } else {
        println!("SKIP simd gemm: host lacks AVX2, ratio gate not applicable");
    }

    // --- 4. 4-worker vs 1-worker model run (needs real cores).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 4 {
        let t1 = time_median(5, || run_on(Pool::new(1)));
        let t4 = time_median(5, || run_on(Pool::new(4)));
        let speedup = t1 / t4.max(1e-12);
        println!(
            "{} parallel: 4 workers {:.1} ms vs 1 worker {:.1} ms — {speedup:.2}x \
             (bound {PAR_SPEEDUP_BOUND}x)",
            if speedup >= PAR_SPEEDUP_BOUND { "PASS" } else { "FAIL" },
            t4 * 1e3,
            t1 * 1e3,
        );
        if speedup < PAR_SPEEDUP_BOUND {
            failures += 1;
        }
    } else {
        println!(
            "SKIP parallel speedup: host has {cores} core(s), need >= 4 for a meaningful \
             wall-clock bound (determinism was still asserted above)"
        );
    }

    if failures > 0 {
        eprintln!("runtime_smoke: {failures} bound(s) violated");
        std::process::exit(1);
    }
    println!("runtime_smoke: all bounds hold");
}
