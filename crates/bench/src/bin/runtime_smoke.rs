//! Runtime smoke test: the CI gate for the intra-op parallel kernel
//! runtime (DESIGN §3.3).
//!
//! Three bounds, checked on a fixed model and a fixed GEMM shape:
//!
//! 1. **Determinism** — predictions from the full model are bit-exact
//!    across explicit 1-worker and 4-worker pools (and against the
//!    plain sequential executor). Always asserted: the contract holds
//!    on any machine.
//! 2. **Single-thread GEMM throughput** — the blocked/register-tiled
//!    kernel must beat the naive reference by ≥3× at 256×512×512.
//!    Always asserted: this is an ILP/locality win, not a core-count
//!    win.
//! 3. **Parallel speedup** — a large-batch model run on a 4-worker
//!    pool must be ≥1.5× faster than on a 1-worker pool. Only asserted
//!    when the host actually has ≥4 cores (otherwise printed as SKIP —
//!    forking 4 ways on 1 core cannot speed anything up).
//!
//! Exits non-zero on any violated bound — invoked from
//! `scripts/verify.sh` as the runtime gate.

use dlrm_core::model::graph::NoopObserver;
use dlrm_core::model::{build_model, rm, Pool, RuntimeCtx, Workspace};
use dlrm_core::tensor::Matrix;
use dlrm_core::workload::{materialize_request, TraceDb};
use std::sync::Arc;
use std::time::Instant;

/// Single-thread blocked-vs-naive GEMM bound (acceptance criterion).
const GEMM_SPEEDUP_BOUND: f64 = 3.0;
/// 4-worker vs 1-worker model-run bound (only on ≥4-core hosts).
const PAR_SPEEDUP_BOUND: f64 = 1.5;
/// GEMM acceptance shape.
const GEMM_SHAPE: (usize, usize, usize) = (256, 512, 512);

fn median_secs(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// Times `f` a few times and returns the median wall-clock seconds.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        runs.push(t0.elapsed().as_secs_f64());
    }
    median_secs(runs)
}

fn main() {
    let mut failures = 0usize;

    // --- Fixed model: a scaled RM3 with a large batch, so FC and SLS
    // --- kernels clear their parallel-grain thresholds.
    let mut spec = rm::rm3().scaled_to_bytes(8 << 20);
    spec.mean_items_per_request = 512.0;
    spec.default_batch_size = 256;
    let model = build_model(&spec, 7).expect("build model");
    let db = TraceDb::generate(&spec, 1, 13);
    let batches = materialize_request(&spec, db.get(0), 256, 13);
    let batch = &batches[0];

    let run_on = |pool: Pool| -> Matrix {
        let ctx = RuntimeCtx::new(pool);
        let counts = Arc::new(model.consumer_counts());
        let mut ws = Workspace::with_ctx(ctx);
        ws.set_consumer_counts(counts);
        batch.load_into(&spec, &mut ws);
        model
            .run_overlapped(&mut ws, &mut NoopObserver)
            .expect("model run")
    };

    // --- 1. Determinism across worker counts.
    let sequential = {
        let mut ws = Workspace::new();
        batch.load_into(&spec, &mut ws);
        model.run(&mut ws, &mut NoopObserver).expect("sequential run")
    };
    let one = run_on(Pool::new(1));
    let four = run_on(Pool::new(4));
    if one == sequential && four == sequential {
        println!(
            "PASS determinism: predictions bit-exact across sequential / 1-worker / 4-worker \
             ({} rows)",
            sequential.rows()
        );
    } else {
        println!("FAIL determinism: predictions differ across worker counts");
        failures += 1;
    }

    // --- 2. Blocked vs naive GEMM, single thread.
    let (m, k, n) = GEMM_SHAPE;
    let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 17) as f32 * 0.1).collect());
    let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 13) as f32 * 0.01).collect());
    if a.matmul(&b) != a.matmul_reference(&b) {
        println!("FAIL gemm: blocked kernel is not bit-exact with the reference");
        failures += 1;
    }
    let blocked = time_median(5, || a.matmul(&b));
    let naive = time_median(5, || a.matmul_reference(&b));
    let gemm_speedup = naive / blocked.max(1e-12);
    let gflop = 2.0 * (m * k * n) as f64 / 1e9;
    println!(
        "{} gemm {m}x{k}x{n}: blocked {:.2} GFLOP/s vs naive {:.2} GFLOP/s — {gemm_speedup:.2}x \
         (bound {GEMM_SPEEDUP_BOUND}x)",
        if gemm_speedup >= GEMM_SPEEDUP_BOUND { "PASS" } else { "FAIL" },
        gflop / blocked,
        gflop / naive,
    );
    if gemm_speedup < GEMM_SPEEDUP_BOUND {
        failures += 1;
    }

    // --- 3. 4-worker vs 1-worker model run (needs real cores).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 4 {
        let t1 = time_median(5, || run_on(Pool::new(1)));
        let t4 = time_median(5, || run_on(Pool::new(4)));
        let speedup = t1 / t4.max(1e-12);
        println!(
            "{} parallel: 4 workers {:.1} ms vs 1 worker {:.1} ms — {speedup:.2}x \
             (bound {PAR_SPEEDUP_BOUND}x)",
            if speedup >= PAR_SPEEDUP_BOUND { "PASS" } else { "FAIL" },
            t4 * 1e3,
            t1 * 1e3,
        );
        if speedup < PAR_SPEEDUP_BOUND {
            failures += 1;
        }
    } else {
        println!(
            "SKIP parallel speedup: host has {cores} core(s), need >= 4 for a meaningful \
             wall-clock bound (determinism was still asserted above)"
        );
    }

    if failures > 0 {
        eprintln!("runtime_smoke: {failures} bound(s) violated");
        std::process::exit(1);
    }
    println!("runtime_smoke: all bounds hold");
}
