//! Minimal in-tree timing harness: the workspace's replacement for the
//! criterion dev-dependency. It keeps the parts the benches actually
//! used — named benchmarks, warmup, many timed samples, batched setup
//! for routines that consume their input — and prints a compact
//! min/median/mean summary per benchmark.
//!
//! Methodology: each *sample* times a batch of `iters` back-to-back
//! calls on a monotonic clock and records the per-call average, which
//! amortizes `Instant` overhead for nanosecond-scale routines. The
//! batch size is calibrated once during warmup so that one sample
//! takes roughly [`Harness::target_sample`]. Median-of-samples is the
//! headline number because it is robust to scheduler noise.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's collected samples, in per-iteration nanoseconds.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name as passed to [`Harness::bench`].
    pub name: String,
    /// Per-iteration nanoseconds, one entry per sample, sorted ascending.
    pub samples_ns: Vec<f64>,
    /// Total iterations executed across all samples (excluding warmup).
    pub total_iters: u64,
}

impl Measurement {
    /// Fastest observed sample (per-iteration ns).
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(0.0)
    }

    /// Median sample (per-iteration ns) — the headline statistic.
    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mid = self.samples_ns.len() / 2;
        if self.samples_ns.len() % 2 == 1 {
            self.samples_ns[mid]
        } else {
            (self.samples_ns[mid - 1] + self.samples_ns[mid]) / 2.0
        }
    }

    /// Mean over all samples (per-iteration ns).
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

/// Renders nanoseconds with an auto-selected unit, criterion-style.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark runner: configure once, then call [`Harness::bench`] /
/// [`Harness::bench_batched`] per benchmark.
#[derive(Debug)]
pub struct Harness {
    /// Wall-clock budget spent warming up (and calibrating) each bench.
    pub warmup: Duration,
    /// Number of timed samples collected per bench.
    pub samples: usize,
    /// Target wall-clock duration of a single sample.
    pub target_sample: Duration,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            warmup: Duration::from_millis(300),
            samples: 30,
            target_sample: Duration::from_millis(15),
            results: Vec::new(),
        }
    }
}

impl Harness {
    /// A harness with the default warmup/sample configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A harness sized for quick smoke runs (used by the harness's own
    /// tests and `--quick` invocations).
    pub fn quick() -> Self {
        Harness {
            warmup: Duration::from_millis(20),
            samples: 8,
            target_sample: Duration::from_millis(2),
            results: Vec::new(),
        }
    }

    /// Times `routine` repeatedly and records a [`Measurement`]. The
    /// routine's return value is passed through [`black_box`] so the
    /// optimizer cannot elide the work.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) -> &Measurement {
        // Warmup doubles as calibration: count how many calls fit in
        // the warmup budget to size each timed batch.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warmup || warm_calls == 0 {
            black_box(routine());
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;
        let iters = ((self.target_sample.as_secs_f64() / per_call.max(1e-9)) as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(name, samples_ns, iters * self.samples as u64)
    }

    /// Like [`Harness::bench`], but re-creates the input via `setup`
    /// before every call so routines that consume or mutate their input
    /// (e.g. quantizing a table in place) see fresh data. Setup time is
    /// excluded from the measurement, so each sample times exactly one
    /// call.
    pub fn bench_batched<T, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) -> &Measurement {
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warmup || warm_calls == 0 {
            let input = setup();
            black_box(routine(input));
            warm_calls += 1;
        }

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
        self.record(name, samples_ns, self.samples as u64)
    }

    fn record(&mut self, name: &str, mut samples_ns: Vec<f64>, total_iters: u64) -> &Measurement {
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            name: name.to_string(),
            samples_ns,
            total_iters,
        };
        println!(
            "{:<36} min {:>11}   median {:>11}   mean {:>11}",
            m.name,
            format_ns(m.min_ns()),
            format_ns(m.median_ns()),
            format_ns(m.mean_ns()),
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements collected so far, in execution order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_positive_timings() {
        let mut h = Harness::quick();
        let m = h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_eq!(m.samples_ns.len(), 8);
        assert!(m.min_ns() > 0.0);
        assert!(m.min_ns() <= m.median_ns());
        assert!(m.median_ns() <= m.samples_ns.last().copied().unwrap());
        assert!(m.total_iters >= 8);
    }

    #[test]
    fn bench_batched_times_only_the_routine() {
        let mut h = Harness::quick();
        let m = h.bench_batched(
            "consume",
            || vec![1u8; 64],
            |v| v.into_iter().map(u64::from).sum::<u64>(),
        );
        assert_eq!(m.samples_ns.len(), 8);
        assert!(m.min_ns() > 0.0);
    }

    #[test]
    fn measurements_accumulate_in_order() {
        let mut h = Harness::quick();
        h.bench("a", || 1u32);
        h.bench("b", || 2u32);
        let names: Vec<&str> = h.results().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_345.0), "12.35 µs");
        assert_eq!(format_ns(12_345_678.0), "12.35 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn median_handles_even_sample_counts() {
        let m = Measurement {
            name: "m".into(),
            samples_ns: vec![1.0, 2.0, 3.0, 4.0],
            total_iters: 4,
        };
        assert_eq!(m.median_ns(), 2.5);
        assert_eq!(m.mean_ns(), 2.5);
        assert_eq!(m.min_ns(), 1.0);
    }
}
