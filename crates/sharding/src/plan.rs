//! Sharding plans: which table lives on which shard.

use crate::ShardingStrategy;
use dlrm_model::{ModelSpec, NetId, TableId};
use dlrm_workload::PoolingProfile;
use std::collections::BTreeSet;

/// Identifies one sparse shard within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Where a table's rows live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// On the main shard (singular configuration only).
    Main,
    /// On remote sparse shards. One entry = the whole table on that
    /// shard; multiple entries = row-wise modulus partitioning: row `r`
    /// lives on `shards[r % shards.len()]` at local row `r / len`
    /// (§III-A1: "partitioning embedding table rows with a simple
    /// modulus operator across shards").
    Shards(Vec<ShardId>),
}

/// One table's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TablePlacement {
    /// The table.
    pub table: TableId,
    /// Where its rows live.
    pub location: Location,
}

impl TablePlacement {
    /// Number of row-partitions (1 when whole or on main).
    #[must_use]
    pub fn parts(&self) -> usize {
        match &self.location {
            Location::Main => 1,
            Location::Shards(s) => s.len().max(1),
        }
    }

    /// Whether the table is split across multiple shards.
    #[must_use]
    pub fn is_row_sharded(&self) -> bool {
        matches!(&self.location, Location::Shards(s) if s.len() > 1)
    }

    /// The part index (modulus residue) this shard serves, if any.
    #[must_use]
    pub fn part_on(&self, shard: ShardId) -> Option<usize> {
        match &self.location {
            Location::Main => None,
            Location::Shards(s) => s.iter().position(|&x| x == shard),
        }
    }
}

/// A complete sharding decision for one model.
///
/// # Examples
///
/// ```
/// use dlrm_sharding::{plan, ShardingStrategy};
/// use dlrm_workload::PoolingProfile;
///
/// let spec = dlrm_model::rm::rm1();
/// let profile = PoolingProfile::from_spec(&spec);
/// let p = plan(&spec, &profile, ShardingStrategy::LoadBalanced(2))?;
/// // Load-balanced: pooling work split roughly evenly.
/// let a = p.shard_pooling(dlrm_sharding::ShardId(0), &profile);
/// let b = p.shard_pooling(dlrm_sharding::ShardId(1), &profile);
/// assert!((a - b).abs() / (a + b) < 0.05);
/// # Ok::<(), dlrm_sharding::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingPlan {
    strategy: ShardingStrategy,
    num_shards: usize,
    placements: Vec<TablePlacement>,
    /// Per-table hot-row sets (parallel to `placements`; all empty for
    /// strategies without row statistics). A listed row stays *placed*
    /// on its shard per `placements` — the hot set marks a read-only
    /// main-shard copy the serving layer may consult instead of the
    /// wire.
    hot_rows: Vec<Vec<u64>>,
    /// Migration epoch: 0 for a freshly planned layout, bumped once per
    /// live cutover (see [`Self::succeed`]). A server holding a plan of
    /// epoch `e` must reject assignments whose plan epoch is `< e`.
    epoch: u64,
    /// Per-shard generation (parallel to the shard ids): bumped for the
    /// shards whose table set or hot-row set changed in a migration, so
    /// a routing layer can tell *which* shards a cutover rebuilt.
    generations: Vec<u64>,
}

impl ShardingPlan {
    /// Creates a plan; used by the planner and by tests constructing
    /// plans directly.
    ///
    /// # Panics
    ///
    /// Panics if a placement references a shard `>= num_shards` or
    /// placements are not densely indexed by table id.
    #[must_use]
    pub fn new(
        strategy: ShardingStrategy,
        num_shards: usize,
        placements: Vec<TablePlacement>,
    ) -> Self {
        for (i, p) in placements.iter().enumerate() {
            assert_eq!(p.table, TableId(i), "placements must be table-id ordered");
            if let Location::Shards(shards) = &p.location {
                assert!(!shards.is_empty(), "empty shard list for {}", p.table);
                for s in shards {
                    assert!(s.0 < num_shards, "{s} out of range ({num_shards} shards)");
                }
                let unique: BTreeSet<_> = shards.iter().collect();
                assert_eq!(unique.len(), shards.len(), "duplicate shards for {}", p.table);
            }
        }
        let hot_rows = vec![Vec::new(); placements.len()];
        let generations = vec![0; num_shards];
        Self {
            strategy,
            num_shards,
            placements,
            hot_rows,
            epoch: 0,
            generations,
        }
    }

    /// Attaches per-table hot-row sets (indexed by table id, each
    /// sorted ascending) to the plan — the row-placement layer the
    /// `HotRowAware` planner emits and the serving cache tier consumes.
    ///
    /// # Panics
    ///
    /// Panics if `hot_rows` is not parallel to the placements or a
    /// table's set is not strictly ascending (sorted, no duplicates).
    #[must_use]
    pub fn with_hot_rows(mut self, hot_rows: Vec<Vec<u64>>) -> Self {
        assert_eq!(
            hot_rows.len(),
            self.placements.len(),
            "hot-row sets must be parallel to placements"
        );
        for (t, rows) in hot_rows.iter().enumerate() {
            assert!(
                rows.windows(2).all(|w| w[0] < w[1]),
                "hot rows for table {t} must be strictly ascending"
            );
        }
        self.hot_rows = hot_rows;
        self
    }

    /// The hot-row set of one table (sorted ascending; empty when the
    /// plan carries no row placement for it).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[must_use]
    pub fn hot_rows(&self, table: TableId) -> &[u64] {
        &self.hot_rows[table.0]
    }

    /// Whether any table carries a hot-row set.
    #[must_use]
    pub fn has_hot_rows(&self) -> bool {
        self.hot_rows.iter().any(|r| !r.is_empty())
    }

    /// Total hot rows across all tables.
    #[must_use]
    pub fn hot_row_count(&self) -> usize {
        self.hot_rows.iter().map(Vec::len).sum()
    }

    /// Migration epoch (0 for a freshly planned layout).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-shard generations, indexed by shard id.
    #[must_use]
    pub fn generations(&self) -> &[u64] {
        &self.generations
    }

    /// One shard's generation.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn generation(&self, shard: ShardId) -> u64 {
        self.generations[shard.0]
    }

    /// Sets the epoch and per-shard generations directly — the parser's
    /// entry point for v3 plan documents.
    ///
    /// # Panics
    ///
    /// Panics if `generations` is not parallel to the shard ids.
    #[must_use]
    pub fn with_versioning(mut self, epoch: u64, generations: Vec<u64>) -> Self {
        assert_eq!(
            generations.len(),
            self.num_shards,
            "one generation per shard"
        );
        self.epoch = epoch;
        self.generations = generations;
        self
    }

    /// Whether two plans place rows identically (placements and hot-row
    /// sets), ignoring strategy labels and migration versioning — the
    /// "is a migration even worth it" predicate.
    #[must_use]
    pub fn same_layout(&self, other: &Self) -> bool {
        self.num_shards == other.num_shards
            && self.placements == other.placements
            && self.hot_rows == other.hot_rows
    }

    /// Versions `self` as the successor of `predecessor` in a live
    /// migration: the epoch becomes `predecessor.epoch() + 1`, and each
    /// shard whose table set or hot-row set differs from the
    /// predecessor's gets its generation bumped (shards new to this plan
    /// start one past the predecessor's highest generation; unchanged
    /// shards carry their generation forward).
    #[must_use]
    pub fn succeed(mut self, predecessor: &Self) -> Self {
        let fresh = predecessor.generations.iter().copied().max().unwrap_or(0) + 1;
        self.epoch = predecessor.epoch + 1;
        let generations: Vec<u64> = self
            .shards()
            .map(|s| {
                if s.0 >= predecessor.num_shards {
                    return fresh;
                }
                let tables_match = self
                    .tables_on(s)
                    .map(|p| (p.table, p.part_on(s)))
                    .eq(predecessor.tables_on(s).map(|p| (p.table, p.part_on(s))));
                let hot_match = self
                    .tables_on(s)
                    .all(|p| self.hot_rows(p.table) == predecessor.hot_rows(p.table));
                if tables_match && hot_match {
                    predecessor.generations[s.0]
                } else {
                    predecessor.generations[s.0] + 1
                }
            })
            .collect();
        self.generations = generations;
        self
    }

    /// The strategy that produced this plan.
    #[must_use]
    pub fn strategy(&self) -> ShardingStrategy {
        self.strategy
    }

    /// Number of sparse shards (0 for singular).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// All shard ids.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.num_shards).map(ShardId)
    }

    /// The placement of one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[must_use]
    pub fn placement(&self, table: TableId) -> &TablePlacement {
        &self.placements[table.0]
    }

    /// All placements, table-id ordered.
    #[must_use]
    pub fn placements(&self) -> &[TablePlacement] {
        &self.placements
    }

    /// Tables (or table parts) hosted on `shard`.
    pub fn tables_on(&self, shard: ShardId) -> impl Iterator<Item = &TablePlacement> {
        self.placements
            .iter()
            .filter(move |p| p.part_on(shard).is_some())
    }

    /// Per-shard capacity in bytes; a row-sharded table contributes
    /// `bytes / parts` to each hosting shard (Table II "Capacity" rows).
    #[must_use]
    pub fn shard_capacity_bytes(&self, shard: ShardId, spec: &ModelSpec) -> f64 {
        self.tables_on(shard)
            .map(|p| spec.table(p.table).bytes() as f64 / p.parts() as f64)
            .sum()
    }

    /// Number of tables (counting row-shards) on `shard` (Table II
    /// "Embedding Tables" rows).
    #[must_use]
    pub fn shard_table_count(&self, shard: ShardId) -> usize {
        self.tables_on(shard).count()
    }

    /// Estimated pooling factor served by `shard`; a row-sharded table's
    /// pooling splits evenly across its parts (Table II "Estimated
    /// Pooling Factor" rows).
    #[must_use]
    pub fn shard_pooling(&self, shard: ShardId, profile: &PoolingProfile) -> f64 {
        self.tables_on(shard)
            .map(|p| profile.of(p.table) / p.parts() as f64)
            .sum()
    }

    /// The shards holding any table of `net` — the shards an inference
    /// of that net can issue RPCs to. NSBP minimizes the *sum over nets*
    /// of this set's size (one RPC per shard per net per batch).
    #[must_use]
    pub fn shards_touched_by_net(&self, net: NetId, spec: &ModelSpec) -> BTreeSet<ShardId> {
        let mut out = BTreeSet::new();
        for p in &self.placements {
            if spec.table(p.table).net == net {
                if let Location::Shards(shards) = &p.location {
                    out.extend(shards.iter().copied());
                }
            }
        }
        out
    }

    /// Whether every table of every net shares shards with only its own
    /// net (the NSBP invariant: "tables from separate nets are never
    /// assigned to the same shard").
    #[must_use]
    pub fn nets_are_isolated(&self, spec: &ModelSpec) -> bool {
        let mut owner: Vec<Option<NetId>> = vec![None; self.num_shards];
        for p in &self.placements {
            if let Location::Shards(shards) = &p.location {
                let net = spec.table(p.table).net;
                for s in shards {
                    match owner[s.0] {
                        None => owner[s.0] = Some(net),
                        Some(existing) if existing == net => {}
                        Some(_) => return false,
                    }
                }
            }
        }
        true
    }

    /// Checks structural consistency against `spec`.
    ///
    /// # Errors
    ///
    /// Describes the first violation: wrong placement count, an empty
    /// shard, or (for distributed strategies) a table left on main.
    pub fn validate(&self, spec: &ModelSpec) -> Result<(), String> {
        if self.placements.len() != spec.tables.len() {
            return Err(format!(
                "plan covers {} tables, model has {}",
                self.placements.len(),
                spec.tables.len()
            ));
        }
        if self.strategy.is_distributed() {
            for p in &self.placements {
                if matches!(p.location, Location::Main) {
                    return Err(format!("{} left on main in distributed plan", p.table));
                }
            }
            for s in self.shards() {
                if self.shard_table_count(s) == 0 {
                    return Err(format!("{s} hosts no tables"));
                }
            }
        } else {
            for p in &self.placements {
                if !matches!(p.location, Location::Main) {
                    return Err(format!("{} off-main in singular plan", p.table));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_spec() -> ModelSpec {
        dlrm_model::rm::rm3().scaled_to_bytes(16 << 20)
    }

    #[test]
    fn modulus_partition_accessors() {
        let p = TablePlacement {
            table: TableId(0),
            location: Location::Shards(vec![ShardId(1), ShardId(3), ShardId(5)]),
        };
        assert_eq!(p.parts(), 3);
        assert!(p.is_row_sharded());
        assert_eq!(p.part_on(ShardId(3)), Some(1));
        assert_eq!(p.part_on(ShardId(0)), None);
    }

    #[test]
    fn capacity_splits_across_row_shards() {
        let spec = two_table_spec();
        let mut placements: Vec<TablePlacement> = spec
            .tables
            .iter()
            .map(|t| TablePlacement {
                table: t.id,
                location: Location::Shards(vec![ShardId(0)]),
            })
            .collect();
        // Row-shard table 0 across shards 1 and 2.
        placements[0].location = Location::Shards(vec![ShardId(1), ShardId(2)]);
        let plan = ShardingPlan::new(ShardingStrategy::NetSpecificBinPacking(3), 3, placements);
        let t0_bytes = spec.table(TableId(0)).bytes() as f64;
        assert_eq!(plan.shard_capacity_bytes(ShardId(1), &spec), t0_bytes / 2.0);
        assert_eq!(plan.shard_capacity_bytes(ShardId(2), &spec), t0_bytes / 2.0);
        assert_eq!(plan.shard_table_count(ShardId(0)), spec.tables.len() - 1);
        assert_eq!(plan.validate(&spec), Ok(()));
    }

    #[test]
    fn net_isolation_detects_mixing() {
        let spec = dlrm_model::rm::rm1().scaled_to_bytes(16 << 20);
        // Everything on one shard: both nets share it → not isolated.
        let placements: Vec<TablePlacement> = spec
            .tables
            .iter()
            .map(|t| TablePlacement {
                table: t.id,
                location: Location::Shards(vec![ShardId(0)]),
            })
            .collect();
        let plan = ShardingPlan::new(ShardingStrategy::OneShard, 1, placements);
        assert!(!plan.nets_are_isolated(&spec));
    }

    #[test]
    fn validate_rejects_empty_shard() {
        let spec = two_table_spec();
        let placements: Vec<TablePlacement> = spec
            .tables
            .iter()
            .map(|t| TablePlacement {
                table: t.id,
                location: Location::Shards(vec![ShardId(0)]),
            })
            .collect();
        let plan = ShardingPlan::new(ShardingStrategy::CapacityBalanced(2), 2, placements);
        assert!(plan.validate(&spec).unwrap_err().contains("hosts no tables"));
    }

    #[test]
    fn hot_rows_attach_and_read_back() {
        let spec = two_table_spec();
        let placements: Vec<TablePlacement> = spec
            .tables
            .iter()
            .map(|t| TablePlacement {
                table: t.id,
                location: Location::Shards(vec![ShardId(0)]),
            })
            .collect();
        let n = placements.len();
        let plan = ShardingPlan::new(ShardingStrategy::OneShard, 1, placements);
        assert!(!plan.has_hot_rows());
        assert!(plan.hot_rows(TableId(0)).is_empty());
        let mut hot = vec![Vec::new(); n];
        hot[0] = vec![3, 9, 40];
        let plan = plan.with_hot_rows(hot);
        assert!(plan.has_hot_rows());
        assert_eq!(plan.hot_rows(TableId(0)), &[3, 9, 40]);
        assert_eq!(plan.hot_row_count(), 3);
        assert!(plan.hot_rows(TableId(1)).is_empty());
        // Hot rows are serving-layer copies, not placements: the plan
        // still validates as-is.
        assert_eq!(plan.validate(&spec), Ok(()));
    }

    #[test]
    fn succession_bumps_epoch_and_changed_shard_generations() {
        let spec = two_table_spec();
        let placements: Vec<TablePlacement> = spec
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| TablePlacement {
                table: t.id,
                location: Location::Shards(vec![ShardId(i % 2)]),
            })
            .collect();
        let old = ShardingPlan::new(ShardingStrategy::CapacityBalanced(2), 2, placements.clone());
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.generations(), &[0, 0]);

        // Same placements, but shard 0's table gains a hot-row set:
        // only shard 0's generation moves.
        let mut hot = vec![Vec::new(); placements.len()];
        hot[0] = vec![1, 7];
        let new = ShardingPlan::new(ShardingStrategy::HotRowAware(2), 2, placements.clone())
            .with_hot_rows(hot)
            .succeed(&old);
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.generation(ShardId(0)), 1);
        assert_eq!(new.generation(ShardId(1)), 0);
        assert!(!new.same_layout(&old));
        assert!(old.same_layout(&old.clone()));

        // A shard count increase: the new shard starts past the
        // predecessor's highest generation.
        let mut wider: Vec<TablePlacement> = placements;
        wider[0].location = Location::Shards(vec![ShardId(2)]);
        let wide = ShardingPlan::new(ShardingStrategy::CapacityBalanced(3), 3, wider).succeed(&new);
        assert_eq!(wide.epoch(), 2);
        assert_eq!(wide.generation(ShardId(2)), 2);
    }

    #[test]
    fn with_versioning_round_trips_through_accessors() {
        let plan = ShardingPlan::new(
            ShardingStrategy::OneShard,
            1,
            vec![TablePlacement {
                table: TableId(0),
                location: Location::Shards(vec![ShardId(0)]),
            }],
        )
        .with_versioning(5, vec![3]);
        assert_eq!(plan.epoch(), 5);
        assert_eq!(plan.generation(ShardId(0)), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn hot_rows_must_be_sorted_and_unique() {
        let plan = ShardingPlan::new(
            ShardingStrategy::OneShard,
            1,
            vec![TablePlacement {
                table: TableId(0),
                location: Location::Shards(vec![ShardId(0)]),
            }],
        );
        let _ = plan.with_hot_rows(vec![vec![5, 5]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_shard() {
        let _ = ShardingPlan::new(
            ShardingStrategy::OneShard,
            1,
            vec![TablePlacement {
                table: TableId(0),
                location: Location::Shards(vec![ShardId(2)]),
            }],
        );
    }
}
