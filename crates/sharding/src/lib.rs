//! Capacity-driven model sharding: the paper's core contribution.
//!
//! Terabyte-scale recommendation models cannot fit on one server, so the
//! model graph is *sharded*: every `SparseLengthsSum` operator and its
//! embedding table moves to a remote **sparse shard**, and the **main
//! shard** (all dense layers) reaches them through asynchronous RPC
//! operators (§III). This crate implements:
//!
//! - [`ShardingStrategy`]: the evaluated strategies of Table I —
//!   singular, 1-shard, capacity-balanced, load-balanced, and
//!   net-specific bin-packing (NSBP), at 2/4/8 shards;
//! - [`plan()`]: the planner producing a [`ShardingPlan`] (which table
//!   lives on which shard, including row-wise modulus partitioning of
//!   tables too large for any single shard, §III-A1);
//! - plan introspection reproducing Table II (per-shard capacity, table
//!   count, estimated pooling factor);
//! - [`partition()`]: the graph-rewrite tool of §III-C — builds per-shard
//!   sparse nets and replaces the main net's SLS operators with
//!   [`rpc::SparseRpc`] operators, verified bit-compatible with singular
//!   execution;
//! - [`auto`]: an automatic sharding search (the paper's proposed future
//!   work) used for ablation benches.
//!
//! # Examples
//!
//! ```
//! use dlrm_sharding::{plan, ShardingStrategy};
//! use dlrm_workload::PoolingProfile;
//!
//! let spec = dlrm_model::rm::rm1();
//! let profile = PoolingProfile::from_spec(&spec);
//! let p = plan(&spec, &profile, ShardingStrategy::CapacityBalanced(8))?;
//! assert_eq!(p.num_shards(), 8);
//! # Ok::<(), dlrm_sharding::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto;
mod cache;
mod partition;
mod plan;
mod planner;
pub mod publish;
pub mod rpc;
mod shard_service;
mod strategy;

pub use cache::{CacheTotals, HotRowCache};
pub use partition::{partition, partition_with_clients, DistributedModel, PartitionError};
pub use rpc::{RpcError, RpcPolicy};
pub use plan::{Location, ShardId, ShardingPlan, TablePlacement};
pub use planner::{plan, plan_with_stats, HotRowConfig, PlanError};
pub use shard_service::{InProcessClient, ShardService};
pub use strategy::ShardingStrategy;
