//! The sharding strategies of Table I.

/// A sharding strategy plus its shard count — one column of Tables
/// II/III/IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardingStrategy {
    /// Distributed inference disabled; the entire model on one server.
    Singular,
    /// One sparse shard holding every embedding table — the impractical
    /// worst case ("all embedding tables are placed on one shard and no
    /// work is parallelized", §VI-B1).
    OneShard,
    /// Table placement equalizing total embedding-table *size* per shard
    /// (§III-B1). Minimizes shard count for a given capacity.
    CapacityBalanced(usize),
    /// Table placement equalizing estimated *pooling work* per shard
    /// (§III-B2), so no single shard bounds the critical path.
    LoadBalanced(usize),
    /// Net-specific bin-packing (§III-B3): tables are first grouped by
    /// net, then packed into size-limited bins; oversized tables are
    /// row-partitioned. One RPC per shard per inference — the most
    /// compute-efficient, least latency-friendly strategy.
    NetSpecificBinPacking(usize),
    /// Automatic greedy placement (this reproduction's extension of the
    /// paper's future work, [`crate::auto`]): load balancing with net
    /// affinity and capacity caps.
    Auto(usize),
    /// Statistics-driven placement (RecShard-style, reproduction
    /// extension): per-row access CDFs pick a hot-row set that stays
    /// resident on the main shard (served from a local read-only cache),
    /// while cold traffic balances across shards by residual access
    /// weight. Requires row statistics — plan via
    /// [`crate::plan_with_stats`].
    HotRowAware(usize),
}

impl ShardingStrategy {
    /// Number of sparse shards this configuration uses (0 for singular).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        match *self {
            ShardingStrategy::Singular => 0,
            ShardingStrategy::OneShard => 1,
            ShardingStrategy::CapacityBalanced(n)
            | ShardingStrategy::LoadBalanced(n)
            | ShardingStrategy::NetSpecificBinPacking(n)
            | ShardingStrategy::Auto(n)
            | ShardingStrategy::HotRowAware(n) => n,
        }
    }

    /// Whether this configuration runs distributed inference at all.
    #[must_use]
    pub fn is_distributed(&self) -> bool {
        !matches!(self, ShardingStrategy::Singular)
    }

    /// Short label used in tables ("singular", "1-shard", "lb-4", …).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ShardingStrategy::Singular => "singular".into(),
            ShardingStrategy::OneShard => "1-shard".into(),
            ShardingStrategy::CapacityBalanced(n) => format!("cb-{n}"),
            ShardingStrategy::LoadBalanced(n) => format!("lb-{n}"),
            ShardingStrategy::NetSpecificBinPacking(n) => format!("nsbp-{n}"),
            ShardingStrategy::Auto(n) => format!("auto-{n}"),
            ShardingStrategy::HotRowAware(n) => format!("hra-{n}"),
        }
    }

    /// One-line description, as in Table I.
    #[must_use]
    pub fn description(&self) -> &'static str {
        match self {
            ShardingStrategy::Singular => {
                "Distributed inference disabled. Entire model loaded on one server."
            }
            ShardingStrategy::OneShard => "Only one sparse shard with all embedding tables.",
            ShardingStrategy::CapacityBalanced(_) => {
                "Table placement ensures similar total embedding table size per shard."
            }
            ShardingStrategy::LoadBalanced(_) => {
                "Table placement ensures similar pooling work per shard."
            }
            ShardingStrategy::NetSpecificBinPacking(_) => {
                "Tables grouped by ML net, packed into shards until a size limit is \
                 reached; larger tables are effectively given an entire shard."
            }
            ShardingStrategy::Auto(_) => {
                "Automatic greedy placement: load balancing with net affinity and \
                 per-shard capacity caps (reproduction extension)."
            }
            ShardingStrategy::HotRowAware(_) => {
                "Statistics-driven placement: hot rows (by access CDF) cached on the \
                 main shard, cold traffic balanced across shards (reproduction \
                 extension)."
            }
        }
    }

    /// The eleven configurations evaluated for RM1/RM2 (Table III), in
    /// publication order.
    #[must_use]
    pub fn full_sweep() -> Vec<ShardingStrategy> {
        use ShardingStrategy::*;
        let mut v = vec![Singular, OneShard];
        v.extend([2, 4, 8].map(LoadBalanced));
        v.extend([2, 4, 8].map(CapacityBalanced));
        v.extend([2, 4, 8].map(NetSpecificBinPacking));
        v
    }

    /// The configurations evaluated for RM3 (Table IV): only NSBP shards
    /// the dominant table ("RM3 is only sharded with NSBP ... due to
    /// existing technical challenges of sharding huge tables", §V-A).
    #[must_use]
    pub fn rm3_sweep() -> Vec<ShardingStrategy> {
        use ShardingStrategy::*;
        vec![
            Singular,
            OneShard,
            NetSpecificBinPacking(4),
            NetSpecificBinPacking(8),
        ]
    }
}

impl std::fmt::Display for ShardingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts() {
        assert_eq!(ShardingStrategy::Singular.num_shards(), 0);
        assert_eq!(ShardingStrategy::OneShard.num_shards(), 1);
        assert_eq!(ShardingStrategy::LoadBalanced(4).num_shards(), 4);
        assert!(!ShardingStrategy::Singular.is_distributed());
        assert!(ShardingStrategy::OneShard.is_distributed());
    }

    #[test]
    fn full_sweep_matches_table_iii_columns() {
        let sweep = ShardingStrategy::full_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0], ShardingStrategy::Singular);
        assert_eq!(sweep[1], ShardingStrategy::OneShard);
        // Three of each parametrized family.
        let lb = sweep
            .iter()
            .filter(|s| matches!(s, ShardingStrategy::LoadBalanced(_)))
            .count();
        assert_eq!(lb, 3);
    }

    #[test]
    fn labels_are_unique() {
        let sweep = ShardingStrategy::full_sweep();
        let labels: std::collections::HashSet<String> =
            sweep.iter().map(ShardingStrategy::label).collect();
        assert_eq!(labels.len(), sweep.len());
    }
}
