//! Sparse-shard services: the remote side of the RPC operators.

use crate::plan::{ShardId, ShardingPlan};
use crate::rpc::{RpcError, ShardRequest, ShardResponse, SparseShardClient};
use dlrm_model::{EmbeddingTable, Pool, TableId};
use dlrm_tensor::Matrix;
use std::collections::HashMap;
use std::sync::Arc;

/// A stateless sparse-shard service: holds this shard's (slices of)
/// embedding tables and answers pooled lookups.
///
/// Statelessness is a hard constraint in the paper's design: "each shard
/// is stateless to avoid further complexity ... shards may fail and need
/// to restart or replicas may be added" (§III-A1). Accordingly the
/// service is immutable after construction and every request carries all
/// the state it needs.
#[derive(Debug)]
pub struct ShardService {
    shard: ShardId,
    tables: HashMap<TableId, Arc<EmbeddingTable>>,
    /// Intra-op pool the SLS kernels fan out on (sequential unless
    /// configured via [`Self::with_pool`]). Bag-parallel pooling is
    /// bit-exact for any worker count, so this never changes results.
    pool: Pool,
}

impl ShardService {
    /// Builds the shard's table slices from the full model tables and
    /// the plan.
    ///
    /// For a whole table, the shard shares the model's `Arc` directly.
    /// For a row-sharded table, the shard materializes its partition:
    /// local row `j` is global row `j * parts + part` (the modulus
    /// layout of §III-A1).
    ///
    /// # Panics
    ///
    /// Panics if `model_tables` does not cover the plan's tables.
    #[must_use]
    pub fn build(
        model_tables: &[Arc<EmbeddingTable>],
        plan: &ShardingPlan,
        shard: ShardId,
    ) -> Self {
        let mut tables = HashMap::new();
        for placement in plan.placements() {
            let Some(part) = placement.part_on(shard) else {
                continue;
            };
            let full = &model_tables[placement.table.0];
            let parts = placement.parts();
            let local: Arc<EmbeddingTable> = if parts == 1 {
                Arc::clone(full)
            } else {
                let rows = full.rows();
                let local_rows = rows.div_ceil(parts).max(1);
                let dim = full.dim();
                let mut m = Matrix::zeros(local_rows, dim);
                for j in 0..local_rows {
                    let global = j * parts + part;
                    if global < rows {
                        m.row_mut(j).copy_from_slice(full.row(global));
                    }
                }
                Arc::new(EmbeddingTable::from_weights(
                    format!("{}[part {part}/{parts}]", full.name()),
                    m,
                ))
            };
            tables.insert(placement.table, local);
        }
        Self {
            shard,
            tables,
            pool: Pool::sequential(),
        }
    }

    /// Returns the service with its SLS kernels fanning out on `pool`.
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The shard this service implements.
    #[must_use]
    pub fn shard_id(&self) -> ShardId {
        self.shard
    }

    /// Number of (possibly partial) tables hosted.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Bytes of embedding weights materialized on this shard.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.tables.values().map(|t| t.bytes()).sum()
    }

    /// Executes one RPC: pools every requested slice.
    ///
    /// # Errors
    ///
    /// [`RpcError::ShardFault`] naming the offending table when it is
    /// not hosted here or an index is out of range — deterministic
    /// rejections, never retried.
    pub fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, RpcError> {
        let fault = |message: String| RpcError::ShardFault {
            shard: self.shard,
            message,
        };
        let mut pooled = Vec::with_capacity(request.slices.len());
        for slice in &request.slices {
            let table = self
                .tables
                .get(&slice.table)
                .ok_or_else(|| fault(format!("{} not hosted on {}", slice.table, self.shard)))?;
            if let Some(&max) = slice.indices.iter().max() {
                if max as usize >= table.rows() {
                    return Err(fault(format!(
                        "index {max} out of range for {} ({} local rows)",
                        slice.table,
                        table.rows()
                    )));
                }
            }
            pooled.push((
                slice.table,
                table.sparse_lengths_sum_par(&slice.indices, &slice.lengths, &self.pool),
            ));
        }
        Ok(ShardResponse { pooled })
    }
}

/// In-process client: calls the shard service directly. Used for
/// correctness verification of the partitioned graph (no concurrency,
/// no cost model).
#[derive(Debug, Clone)]
pub struct InProcessClient {
    service: Arc<ShardService>,
}

impl InProcessClient {
    /// Wraps a shard service.
    #[must_use]
    pub fn new(service: Arc<ShardService>) -> Self {
        Self { service }
    }
}

impl SparseShardClient for InProcessClient {
    fn shard_id(&self) -> ShardId {
        self.service.shard_id()
    }

    fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, RpcError> {
        self.service.execute(request)
    }
}

/// Convenience: one placement with the whole table on one shard.
#[cfg(test)]
fn whole(table: usize, shard: usize) -> crate::plan::TablePlacement {
    crate::plan::TablePlacement {
        table: TableId(table),
        location: crate::plan::Location::Shards(vec![ShardId(shard)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Location;
    use crate::rpc::TableSlice;
    use crate::ShardingStrategy;
    use dlrm_model::NetId;

    fn table(rows: usize) -> Arc<EmbeddingTable> {
        let data: Vec<f32> = (0..rows * 2).map(|k| k as f32).collect();
        Arc::new(EmbeddingTable::from_weights(
            "t",
            Matrix::from_vec(rows, 2, data),
        ))
    }

    #[test]
    fn whole_table_shared_not_copied() {
        let tables = vec![table(4)];
        let plan = ShardingPlan::new(ShardingStrategy::OneShard, 1, vec![whole(0, 0)]);
        let svc = ShardService::build(&tables, &plan, ShardId(0));
        assert_eq!(svc.table_count(), 1);
        assert_eq!(svc.capacity_bytes(), 4 * 2 * 4);
    }

    #[test]
    fn row_sharded_slices_interleave() {
        let tables = vec![table(5)];
        let plan = ShardingPlan::new(
            ShardingStrategy::NetSpecificBinPacking(2),
            2,
            vec![crate::plan::TablePlacement {
                table: TableId(0),
                location: Location::Shards(vec![ShardId(0), ShardId(1)]),
            }],
        );
        let s0 = ShardService::build(&tables, &plan, ShardId(0));
        let s1 = ShardService::build(&tables, &plan, ShardId(1));
        // Global rows 0,2,4 on shard 0; 1,3 on shard 1.
        // Row values: row r = [2r, 2r+1].
        let resp0 = s0
            .execute(&ShardRequest {
                net: NetId(0),
                slices: vec![TableSlice {
                    table: TableId(0),
                    indices: vec![0, 1, 2], // global 0, 2, 4
                    lengths: vec![3],
                }],
            })
            .unwrap();
        assert_eq!(resp0.pooled[0].1.row(0), &[0.0 + 4.0 + 8.0, 1.0 + 5.0 + 9.0]);
        let resp1 = s1
            .execute(&ShardRequest {
                net: NetId(0),
                slices: vec![TableSlice {
                    table: TableId(0),
                    indices: vec![0, 1], // global 1, 3
                    lengths: vec![2],
                }],
            })
            .unwrap();
        assert_eq!(resp1.pooled[0].1.row(0), &[2.0 + 6.0, 3.0 + 7.0]);
    }

    #[test]
    fn unknown_table_rejected() {
        let tables = vec![table(2)];
        let plan = ShardingPlan::new(ShardingStrategy::OneShard, 1, vec![whole(0, 0)]);
        let svc = ShardService::build(&tables, &plan, ShardId(0));
        let err = svc
            .execute(&ShardRequest {
                net: NetId(0),
                slices: vec![TableSlice {
                    table: TableId(9),
                    indices: vec![],
                    lengths: vec![],
                }],
            })
            .unwrap_err();
        assert!(err.to_string().contains("not hosted"));
        assert!(!err.is_retryable());
    }

    #[test]
    fn out_of_range_local_index_rejected() {
        let tables = vec![table(2)];
        let plan = ShardingPlan::new(ShardingStrategy::OneShard, 1, vec![whole(0, 0)]);
        let svc = ShardService::build(&tables, &plan, ShardId(0));
        let err = svc
            .execute(&ShardRequest {
                net: NetId(0),
                slices: vec![TableSlice {
                    table: TableId(0),
                    indices: vec![7],
                    lengths: vec![1],
                }],
            })
            .unwrap_err();
        assert!(err.to_string().contains("out of range"));
        assert_eq!(err.kind(), "shard-fault");
    }

    #[test]
    fn in_process_client_passes_through() {
        let tables = vec![table(3)];
        let plan = ShardingPlan::new(ShardingStrategy::OneShard, 1, vec![whole(0, 0)]);
        let svc = Arc::new(ShardService::build(&tables, &plan, ShardId(0)));
        let client = InProcessClient::new(Arc::clone(&svc));
        assert_eq!(client.shard_id(), ShardId(0));
        let resp = client
            .execute(&ShardRequest {
                net: NetId(0),
                slices: vec![TableSlice {
                    table: TableId(0),
                    indices: vec![2],
                    lengths: vec![1],
                }],
            })
            .unwrap();
        assert_eq!(resp.pooled[0].1.row(0), &[4.0, 5.0]);
    }
}
