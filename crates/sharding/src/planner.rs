//! The capacity-driven sharding planner.

use crate::plan::{Location, ShardId, ShardingPlan, TablePlacement};
use crate::ShardingStrategy;
use dlrm_model::{Footprint, ModelSpec, NetId, TableId};
use dlrm_workload::{PoolingProfile, RowStats};

/// Errors from sharding-plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A distributed strategy was requested with zero shards.
    ZeroShards,
    /// More shards requested than placeable units exist.
    TooManyShards {
        /// Shards requested.
        requested: usize,
        /// Whole tables available to spread.
        tables: usize,
    },
    /// The strategy cannot produce a valid plan for this model (e.g.
    /// NSBP with fewer shards than nets).
    Infeasible(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroShards => write!(f, "distributed strategy requires at least one shard"),
            PlanError::TooManyShards { requested, tables } => write!(
                f,
                "cannot spread {tables} tables across {requested} shards without row-sharding"
            ),
            PlanError::Infeasible(msg) => write!(f, "infeasible sharding: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Produces a sharding plan for `spec` under `strategy`, using `profile`
/// for load estimates (load-balanced placement; Table II's pooling
/// columns).
///
/// # Errors
///
/// Returns [`PlanError`] when the strategy/shard-count combination is
/// infeasible for this model.
///
/// # Examples
///
/// ```
/// use dlrm_sharding::{plan, ShardingStrategy, ShardId};
/// use dlrm_workload::PoolingProfile;
///
/// let spec = dlrm_model::rm::rm3();
/// let profile = PoolingProfile::from_spec(&spec);
/// let p = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(4))?;
/// // The dominant table is row-partitioned across three shards; the
/// // small tables share the remaining one (§V-A).
/// let dominant = p.placement(dlrm_model::TableId(0));
/// assert_eq!(dominant.parts(), 3);
/// # Ok::<(), dlrm_sharding::PlanError>(())
/// ```
pub fn plan(
    spec: &ModelSpec,
    profile: &PoolingProfile,
    strategy: ShardingStrategy,
) -> Result<ShardingPlan, PlanError> {
    match strategy {
        ShardingStrategy::Singular => {
            let placements = spec
                .tables
                .iter()
                .map(|t| TablePlacement {
                    table: t.id,
                    location: Location::Main,
                })
                .collect();
            Ok(ShardingPlan::new(strategy, 0, placements))
        }
        ShardingStrategy::OneShard => {
            let placements = spec
                .tables
                .iter()
                .map(|t| TablePlacement {
                    table: t.id,
                    location: Location::Shards(vec![ShardId(0)]),
                })
                .collect();
            Ok(ShardingPlan::new(strategy, 1, placements))
        }
        ShardingStrategy::CapacityBalanced(n) => {
            let key = |t: &dlrm_model::TableSpec| t.footprint_bytes() as f64;
            balanced_plan(spec, strategy, n, key)
        }
        ShardingStrategy::LoadBalanced(n) => {
            let key = |t: &dlrm_model::TableSpec| profile.of(t.id);
            balanced_plan(spec, strategy, n, key)
        }
        ShardingStrategy::NetSpecificBinPacking(n) => nsbp_plan(spec, strategy, n),
        ShardingStrategy::Auto(n) => {
            let config = crate::auto::AutoConfig::for_model(spec, n);
            crate::auto::auto_plan(spec, profile, &config)
        }
        ShardingStrategy::HotRowAware(_) => Err(PlanError::Infeasible(
            "HotRowAware placement requires row statistics; plan via plan_with_stats".to_string(),
        )),
    }
}

/// Tuning for [`plan_with_stats`] hot-row selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotRowConfig {
    /// Per-table CDF coverage cap: a table contributes hot-row
    /// candidates only up to this fraction of its sampled accesses
    /// (the CDF tail past this point is not worth caching).
    pub coverage: f64,
    /// Cache byte budget as a fraction of the model's total
    /// embedding-table bytes.
    pub budget_fraction: f64,
}

impl Default for HotRowConfig {
    fn default() -> Self {
        Self {
            coverage: 0.9,
            budget_fraction: 0.05,
        }
    }
}

/// [`plan`] extended with per-table row statistics, enabling the
/// [`ShardingStrategy::HotRowAware`] strategy (RecShard-style): rows
/// are ranked by expected accesses saved per cached byte
/// (`pooling-weighted frequency / row bytes`), greedily selected across
/// all tables under the byte budget and per-table coverage cap of
/// `cfg`, and recorded as the plan's hot-row sets. Whole tables are
/// then LPT-balanced across the `n` shards by *residual* (uncovered)
/// access weight, so the shards split the cold traffic evenly.
///
/// Tables stay whole (no row-sharding), which keeps per-bag summation
/// order identical to the singular model — the property that makes the
/// serving cache tier bit-exact.
///
/// Strategies other than `HotRowAware` ignore `stats` and `cfg` and
/// defer to [`plan`].
///
/// # Errors
///
/// Returns [`PlanError`] when the strategy/shard-count combination is
/// infeasible, or when `stats` does not match `spec`'s tables.
pub fn plan_with_stats(
    spec: &ModelSpec,
    profile: &PoolingProfile,
    strategy: ShardingStrategy,
    stats: &[RowStats],
    cfg: &HotRowConfig,
) -> Result<ShardingPlan, PlanError> {
    let ShardingStrategy::HotRowAware(n) = strategy else {
        return plan(spec, profile, strategy);
    };
    if stats.len() != spec.tables.len() {
        return Err(PlanError::Infeasible(format!(
            "row stats cover {} tables, model has {}",
            stats.len(),
            spec.tables.len()
        )));
    }
    for (t, s) in spec.tables.iter().zip(stats) {
        if s.rows() != t.rows {
            return Err(PlanError::Infeasible(format!(
                "row stats for {} profile {} rows, table has {}",
                t.id,
                s.rows(),
                t.rows
            )));
        }
    }
    if !(cfg.coverage > 0.0 && cfg.coverage <= 1.0) {
        return Err(PlanError::Infeasible(format!(
            "coverage {} outside (0, 1]",
            cfg.coverage
        )));
    }
    if !(cfg.budget_fraction > 0.0 && cfg.budget_fraction <= 1.0) {
        return Err(PlanError::Infeasible(format!(
            "budget fraction {} outside (0, 1]",
            cfg.budget_fraction
        )));
    }

    // Candidate rows: each table's CDF prefix up to the coverage cap,
    // scored by expected accesses saved per cached byte. The pooling
    // profile weighs tables by how much traffic they actually see.
    struct Candidate {
        table: usize,
        row: u64,
        count: u64,
        score: f64,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for (ti, (t, s)) in spec.tables.iter().zip(stats).enumerate() {
        let row_bytes = (t.bytes() as f64 / t.rows as f64).max(1.0);
        let weight = profile.of(t.id) / s.total_accesses() as f64;
        let keep = s.rows_for_coverage(cfg.coverage);
        for &(row, count) in s.ranked().iter().take(keep) {
            candidates.push(Candidate {
                table: ti,
                row,
                count,
                score: count as f64 * weight / row_bytes,
            });
        }
    }
    // Deterministic order: score descending, then table/row ascending.
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.table.cmp(&b.table))
            .then(a.row.cmp(&b.row))
    });

    let budget = cfg.budget_fraction * spec.total_bytes() as f64;
    let mut spent = 0.0f64;
    let mut hot: Vec<Vec<u64>> = vec![Vec::new(); spec.tables.len()];
    let mut covered: Vec<u64> = vec![0; spec.tables.len()];
    for c in candidates {
        let row_bytes = spec.tables[c.table].bytes() as f64 / spec.tables[c.table].rows as f64;
        if spent + row_bytes > budget {
            break;
        }
        spent += row_bytes;
        hot[c.table].push(c.row);
        covered[c.table] += c.count;
    }
    for rows in &mut hot {
        rows.sort_unstable();
    }

    // Balance whole tables across shards by the access weight the cache
    // does NOT absorb.
    let residual = |t: &dlrm_model::TableSpec| {
        let s = &stats[t.id.0];
        let cold = (s.total_accesses() - covered[t.id.0]) as f64 / s.total_accesses() as f64;
        profile.of(t.id) * cold
    };
    Ok(balanced_plan(spec, strategy, n, residual)?.with_hot_rows(hot))
}

/// Longest-processing-time greedy balance: sort tables by descending
/// key, repeatedly assign to the least-loaded shard. Ties broken by
/// total bytes so zero-load tables still spread.
fn balanced_plan(
    spec: &ModelSpec,
    strategy: ShardingStrategy,
    n: usize,
    key: impl Fn(&dlrm_model::TableSpec) -> f64,
) -> Result<ShardingPlan, PlanError> {
    if n == 0 {
        return Err(PlanError::ZeroShards);
    }
    if n > spec.tables.len() {
        return Err(PlanError::TooManyShards {
            requested: n,
            tables: spec.tables.len(),
        });
    }
    let mut order: Vec<&dlrm_model::TableSpec> = spec.tables.iter().collect();
    order.sort_by(|a, b| {
        key(b)
            .total_cmp(&key(a))
            .then(b.bytes().cmp(&a.bytes()))
            .then(a.id.cmp(&b.id))
    });

    let mut load = vec![0.0f64; n];
    let mut bytes = vec![0u64; n];
    let mut assignment: Vec<Option<ShardId>> = vec![None; spec.tables.len()];
    for t in order {
        let target = (0..n)
            .min_by(|&a, &b| {
                load[a]
                    .total_cmp(&load[b])
                    .then(bytes[a].cmp(&bytes[b]))
                    .then(a.cmp(&b))
            })
            .expect("n > 0");
        load[target] += key(t);
        bytes[target] += t.bytes();
        assignment[t.id.0] = Some(ShardId(target));
    }

    let placements = spec
        .tables
        .iter()
        .map(|t| TablePlacement {
            table: t.id,
            location: Location::Shards(vec![assignment[t.id.0].expect("assigned")]),
        })
        .collect();
    Ok(ShardingPlan::new(strategy, n, placements))
}

/// One NSBP bin: either a set of whole tables from one net, or one part
/// of a row-sharded table. Sizes are integer [`Footprint`] bytes; the
/// only fractional quantity in the packer is the capacity limit itself.
#[derive(Debug, Clone)]
enum Bin {
    Whole {
        net: NetId,
        tables: Vec<TableId>,
        bytes: u64,
    },
    /// `part` of `parts` of a row-sharded table.
    Part { table: TableId, bytes: u64 },
}

impl Bin {
    fn bytes(&self) -> u64 {
        match self {
            Bin::Whole { bytes, .. } | Bin::Part { bytes, .. } => *bytes,
        }
    }
}

/// Net-specific bin-packing (§III-B3): group tables by net, first-fit-
/// decreasing into bins of a size limit, row-sharding tables that exceed
/// the limit. The limit starts at `total/n` and grows until the bin
/// count fits `n`; leftover shards are absorbed by further splitting the
/// largest bins.
fn nsbp_plan(
    spec: &ModelSpec,
    strategy: ShardingStrategy,
    n: usize,
) -> Result<ShardingPlan, PlanError> {
    if n == 0 {
        return Err(PlanError::ZeroShards);
    }
    if n < spec.nets.len() {
        return Err(PlanError::Infeasible(format!(
            "NSBP needs at least one shard per net ({} nets, {n} shards)",
            spec.nets.len()
        )));
    }

    let total = spec.footprint_bytes();
    let mut cap = total as f64 / n as f64;
    let mut bins = pack_all_nets(spec, cap);
    // Grow the limit until everything fits in n bins (bounded: at
    // cap >= total each net is one bin and row-sharding vanishes).
    let mut guard = 0;
    while bins.len() > n {
        cap *= 1.02;
        bins = pack_all_nets(spec, cap);
        guard += 1;
        assert!(guard < 10_000, "NSBP capacity search did not converge");
    }

    // Spend leftover shards by splitting the biggest bins, preserving
    // net isolation.
    while bins.len() < n {
        let (idx, _) = bins
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.bytes().cmp(&b.bytes()))
            .expect("at least one bin");
        match bins.remove(idx) {
            Bin::Part { table, .. } => {
                // Increase the table's part count by one: remove all its
                // parts and re-add parts+1.
                let mut existing: Vec<usize> = Vec::new();
                let mut i = 0;
                while i < bins.len() {
                    if matches!(&bins[i], Bin::Part { table: t, .. } if *t == table) {
                        bins.remove(i);
                        existing.push(i);
                    } else {
                        i += 1;
                    }
                }
                let parts = existing.len() + 2; // removed one + removed rest + one extra
                let per = spec.table(table).footprint_bytes() / parts as u64;
                for _ in 0..parts {
                    bins.push(Bin::Part { table, bytes: per });
                }
            }
            Bin::Whole { net, tables, bytes } => {
                if tables.len() >= 2 {
                    // Split the table set into two bins by alternating
                    // descending sizes.
                    let mut sorted = tables;
                    sorted.sort_by_key(|&t| std::cmp::Reverse(spec.table(t).footprint_bytes()));
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    let (mut ab, mut bb) = (0u64, 0u64);
                    for t in sorted {
                        let sz = spec.table(t).footprint_bytes();
                        if ab <= bb {
                            a.push(t);
                            ab += sz;
                        } else {
                            b.push(t);
                            bb += sz;
                        }
                    }
                    bins.push(Bin::Whole {
                        net,
                        tables: a,
                        bytes: ab,
                    });
                    bins.push(Bin::Whole {
                        net,
                        tables: b,
                        bytes: bb,
                    });
                } else {
                    // A single whole table: row-shard it in two.
                    let table = tables[0];
                    let per = bytes / 2;
                    bins.push(Bin::Part { table, bytes: per });
                    bins.push(Bin::Part { table, bytes: per });
                }
            }
        }
    }

    // Assign shard ids in net order (then pack order), and build
    // placements.
    bins.sort_by(|a, b| {
        let net_of = |bin: &Bin| match bin {
            Bin::Whole { net, .. } => net.0,
            Bin::Part { table, .. } => spec.table(*table).net.0,
        };
        net_of(a).cmp(&net_of(b))
    });
    let mut placements: Vec<TablePlacement> = spec
        .tables
        .iter()
        .map(|t| TablePlacement {
            table: t.id,
            location: Location::Shards(Vec::new()),
        })
        .collect();
    for (shard_idx, bin) in bins.iter().enumerate() {
        match bin {
            Bin::Whole { tables, .. } => {
                for &t in tables {
                    if let Location::Shards(s) = &mut placements[t.0].location {
                        s.push(ShardId(shard_idx));
                    }
                }
            }
            Bin::Part { table, .. } => {
                if let Location::Shards(s) = &mut placements[table.0].location {
                    s.push(ShardId(shard_idx));
                }
            }
        }
    }
    // Sanity: every table placed somewhere.
    for p in &placements {
        if matches!(&p.location, Location::Shards(s) if s.is_empty()) {
            return Err(PlanError::Infeasible(format!("{} unplaced", p.table)));
        }
    }
    Ok(ShardingPlan::new(strategy, n, placements))
}

/// FFD-packs every net's tables into bins of capacity `cap`; tables
/// larger than `cap` become row-sharded parts.
fn pack_all_nets(spec: &ModelSpec, cap: f64) -> Vec<Bin> {
    let mut bins = Vec::new();
    for net in &spec.nets {
        let mut tables: Vec<&dlrm_model::TableSpec> = spec.tables_of_net(net.id).collect();
        tables.sort_by(|a, b| {
            b.footprint_bytes()
                .cmp(&a.footprint_bytes())
                .then(a.id.cmp(&b.id))
        });
        let mut net_bins: Vec<Bin> = Vec::new();
        for t in tables {
            let bytes = t.footprint_bytes();
            if bytes as f64 > cap {
                let parts = (bytes as f64 / cap).ceil() as usize;
                let per = bytes / parts as u64;
                for _ in 0..parts {
                    bins.push(Bin::Part {
                        table: t.id,
                        bytes: per,
                    });
                }
                continue;
            }
            // First-fit into this net's bins.
            let slot = net_bins.iter_mut().find(|b| match b {
                Bin::Whole { bytes: bb, .. } => (*bb + bytes) as f64 <= cap,
                Bin::Part { .. } => false,
            });
            match slot {
                Some(Bin::Whole {
                    tables: ts,
                    bytes: bb,
                    ..
                }) => {
                    ts.push(t.id);
                    *bb += bytes;
                }
                _ => net_bins.push(Bin::Whole {
                    net: net.id,
                    tables: vec![t.id],
                    bytes,
                }),
            }
        }
        bins.extend(net_bins);
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::rm;

    fn profile_for(spec: &ModelSpec) -> PoolingProfile {
        PoolingProfile::from_spec(spec)
    }

    #[test]
    fn singular_keeps_everything_on_main() {
        let spec = rm::rm1();
        let p = plan(&spec, &profile_for(&spec), ShardingStrategy::Singular).unwrap();
        assert_eq!(p.num_shards(), 0);
        assert_eq!(p.validate(&spec), Ok(()));
    }

    #[test]
    fn one_shard_holds_all_tables() {
        let spec = rm::rm1();
        let p = plan(&spec, &profile_for(&spec), ShardingStrategy::OneShard).unwrap();
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shard_table_count(ShardId(0)), 257);
        assert!((p.shard_capacity_bytes(ShardId(0), &spec) - spec.total_bytes() as f64).abs() < 1.0);
    }

    #[test]
    fn capacity_balanced_equalizes_bytes_like_table_ii() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for n in [2usize, 4, 8] {
            let p = plan(&spec, &prof, ShardingStrategy::CapacityBalanced(n)).unwrap();
            assert_eq!(p.validate(&spec), Ok(()));
            let caps: Vec<f64> = p
                .shards()
                .map(|s| p.shard_capacity_bytes(s, &spec))
                .collect();
            let max = caps.iter().cloned().fold(0.0, f64::max);
            let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
            // Table II: capacity-balanced shards are within a whisker of
            // each other (24.25 GiB × 8).
            assert!(
                (max - min) / max < 0.02,
                "n={n}: caps spread too wide: {caps:?}"
            );
        }
    }

    #[test]
    fn load_balanced_equalizes_pooling_like_table_ii() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for n in [2usize, 4, 8] {
            let p = plan(&spec, &prof, ShardingStrategy::LoadBalanced(n)).unwrap();
            let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &prof)).collect();
            let max = pools.iter().cloned().fold(0.0, f64::max);
            let min = pools.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                (max - min) / max < 0.02,
                "n={n}: pooling spread too wide: {pools:?}"
            );
        }
    }

    #[test]
    fn capacity_balanced_leaves_load_imbalanced() {
        // Table II: capacity-balanced per-shard load varied up to 371%.
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        let p = plan(&spec, &prof, ShardingStrategy::CapacityBalanced(8)).unwrap();
        let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &prof)).collect();
        let max = pools.iter().cloned().fold(0.0, f64::max);
        let min = pools.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.5, "expected load imbalance, got {pools:?}");
    }

    #[test]
    fn load_balanced_leaves_capacity_imbalanced() {
        // Table II: load-balanced per-shard capacity varied up to ~50%.
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        let p = plan(&spec, &prof, ShardingStrategy::LoadBalanced(8)).unwrap();
        let caps: Vec<f64> = p
            .shards()
            .map(|s| p.shard_capacity_bytes(s, &spec))
            .collect();
        let max = caps.iter().cloned().fold(0.0, f64::max);
        let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.15, "expected capacity imbalance, got {caps:?}");
    }

    #[test]
    fn nsbp_isolates_nets() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for n in [2usize, 4, 8] {
            let p = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(n)).unwrap();
            assert_eq!(p.validate(&spec), Ok(()));
            assert!(p.nets_are_isolated(&spec), "n={n}");
        }
    }

    #[test]
    fn nsbp_two_shards_puts_each_net_on_its_own_shard() {
        // Table II NSBP-2: shard1 = user net (33.58 GiB), shard2 =
        // content net (160 GiB).
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        let p = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(2)).unwrap();
        let caps: Vec<f64> = p
            .shards()
            .map(|s| p.shard_capacity_bytes(s, &spec) / (1u64 << 30) as f64)
            .collect();
        let (small, large) = (caps[0].min(caps[1]), caps[0].max(caps[1]));
        assert!((small - 33.58).abs() < 1.5, "user shard {small}");
        assert!((large - 160.47).abs() < 3.0, "content shard {large}");
        // Pooling asymmetry: the small shard does ~94% of the work.
        let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &prof)).collect();
        let hot = pools.iter().cloned().fold(0.0, f64::max);
        assert!(hot / prof.total() > 0.9);
    }

    #[test]
    fn nsbp_rm3_row_shards_the_dominant_table() {
        // §V-A: "given four sparse shards, the largest table is
        // partitioned into three shards and the remaining tables grouped
        // together into one shard".
        let spec = rm::rm3();
        let prof = profile_for(&spec);
        let p4 = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(4)).unwrap();
        assert_eq!(p4.placement(TableId(0)).parts(), 3);
        let p8 = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(8)).unwrap();
        assert_eq!(p8.placement(TableId(0)).parts(), 7);
        // Small tables all share one shard.
        let small_shards: std::collections::BTreeSet<_> = spec.tables[1..]
            .iter()
            .flat_map(|t| match &p8.placement(t.id).location {
                Location::Shards(s) => s.clone(),
                Location::Main => vec![],
            })
            .collect();
        assert_eq!(small_shards.len(), 1);
    }

    #[test]
    fn nsbp_needs_one_shard_per_net() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        assert!(matches!(
            plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(1)),
            Err(PlanError::Infeasible(_))
        ));
    }

    #[test]
    fn every_sweep_config_plans_for_rm1_and_rm2() {
        for spec in [rm::rm1(), rm::rm2()] {
            let prof = profile_for(&spec);
            for strat in ShardingStrategy::full_sweep() {
                let p = plan(&spec, &prof, strat).unwrap();
                assert_eq!(p.validate(&spec), Ok(()), "{} {strat}", spec.name);
            }
        }
    }

    #[test]
    fn rm3_sweep_plans() {
        let spec = rm::rm3();
        let prof = profile_for(&spec);
        for strat in ShardingStrategy::rm3_sweep() {
            let p = plan(&spec, &prof, strat).unwrap();
            assert_eq!(p.validate(&spec), Ok(()), "{strat}");
        }
    }

    #[test]
    fn zero_shards_rejected() {
        let spec = rm::rm3();
        let prof = profile_for(&spec);
        assert_eq!(
            plan(&spec, &prof, ShardingStrategy::CapacityBalanced(0)),
            Err(PlanError::ZeroShards)
        );
    }

    #[test]
    fn more_shards_than_tables_rejected_for_balanced() {
        let spec = rm::rm3(); // 39 tables
        let prof = profile_for(&spec);
        assert!(matches!(
            plan(&spec, &prof, ShardingStrategy::CapacityBalanced(40)),
            Err(PlanError::TooManyShards { .. })
        ));
    }

    #[test]
    fn plans_are_deterministic() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for strat in ShardingStrategy::full_sweep() {
            let a = plan(&spec, &prof, strat).unwrap();
            let b = plan(&spec, &prof, strat).unwrap();
            assert_eq!(a, b, "{strat}");
        }
    }

    fn stats_for(spec: &ModelSpec, s: f64, seed: u64) -> Vec<RowStats> {
        RowStats::for_spec(spec, 4_000, s, seed)
    }

    #[test]
    fn hot_row_aware_requires_stats() {
        let spec = rm::rm3().scaled_to_bytes(8 << 20);
        let prof = profile_for(&spec);
        assert!(matches!(
            plan(&spec, &prof, ShardingStrategy::HotRowAware(2)),
            Err(PlanError::Infeasible(_))
        ));
    }

    #[test]
    fn hot_row_aware_plans_whole_tables_with_hot_sets_under_budget() {
        let spec = rm::rm1().scaled_to_bytes(32 << 20);
        let prof = profile_for(&spec);
        let stats = stats_for(&spec, 1.2, 17);
        let cfg = HotRowConfig::default();
        let p = plan_with_stats(&spec, &prof, ShardingStrategy::HotRowAware(2), &stats, &cfg)
            .unwrap();
        assert_eq!(p.validate(&spec), Ok(()));
        assert!(p.has_hot_rows(), "skewed stats must select hot rows");
        // Whole-table placement only (bit-exactness depends on it).
        for pl in p.placements() {
            assert_eq!(pl.parts(), 1, "{} row-sharded", pl.table);
        }
        // Hot rows are in range, sorted, and within the byte budget.
        let mut cached_bytes = 0.0;
        for t in &spec.tables {
            let rows = p.hot_rows(t.id);
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
            assert!(rows.iter().all(|&r| r < t.rows), "{} out of range", t.id);
            cached_bytes += rows.len() as f64 * t.bytes() as f64 / t.rows as f64;
        }
        assert!(cached_bytes <= cfg.budget_fraction * spec.total_bytes() as f64);
    }

    #[test]
    fn hot_row_aware_is_deterministic_and_stats_sensitive() {
        let spec = rm::rm2().scaled_to_bytes(16 << 20);
        let prof = profile_for(&spec);
        let cfg = HotRowConfig::default();
        let stats = stats_for(&spec, 1.1, 5);
        let a = plan_with_stats(&spec, &prof, ShardingStrategy::HotRowAware(2), &stats, &cfg)
            .unwrap();
        let b = plan_with_stats(&spec, &prof, ShardingStrategy::HotRowAware(2), &stats, &cfg)
            .unwrap();
        assert_eq!(a, b);
        let other = stats_for(&spec, 1.1, 6);
        let c = plan_with_stats(&spec, &prof, ShardingStrategy::HotRowAware(2), &other, &cfg)
            .unwrap();
        assert_ne!(a, c, "different samples should move the hot set");
    }

    #[test]
    fn plan_with_stats_defers_for_other_strategies() {
        let spec = rm::rm3().scaled_to_bytes(8 << 20);
        let prof = profile_for(&spec);
        let stats = stats_for(&spec, 1.0, 3);
        let cfg = HotRowConfig::default();
        let via_stats = plan_with_stats(
            &spec,
            &prof,
            ShardingStrategy::CapacityBalanced(2),
            &stats,
            &cfg,
        )
        .unwrap();
        let direct = plan(&spec, &prof, ShardingStrategy::CapacityBalanced(2)).unwrap();
        assert_eq!(via_stats, direct);
    }

    #[test]
    fn plan_with_stats_rejects_mismatched_stats() {
        let spec = rm::rm3().scaled_to_bytes(8 << 20);
        let prof = profile_for(&spec);
        let short = vec![RowStats::sample_zipf(100, 100, 1.0, 1)];
        assert!(matches!(
            plan_with_stats(
                &spec,
                &prof,
                ShardingStrategy::HotRowAware(2),
                &short,
                &HotRowConfig::default()
            ),
            Err(PlanError::Infeasible(_))
        ));
    }
}
