//! The capacity-driven sharding planner.

use crate::plan::{Location, ShardId, ShardingPlan, TablePlacement};
use crate::ShardingStrategy;
use dlrm_model::{ModelSpec, NetId, TableId};
use dlrm_workload::PoolingProfile;

/// Errors from sharding-plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A distributed strategy was requested with zero shards.
    ZeroShards,
    /// More shards requested than placeable units exist.
    TooManyShards {
        /// Shards requested.
        requested: usize,
        /// Whole tables available to spread.
        tables: usize,
    },
    /// The strategy cannot produce a valid plan for this model (e.g.
    /// NSBP with fewer shards than nets).
    Infeasible(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroShards => write!(f, "distributed strategy requires at least one shard"),
            PlanError::TooManyShards { requested, tables } => write!(
                f,
                "cannot spread {tables} tables across {requested} shards without row-sharding"
            ),
            PlanError::Infeasible(msg) => write!(f, "infeasible sharding: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Produces a sharding plan for `spec` under `strategy`, using `profile`
/// for load estimates (load-balanced placement; Table II's pooling
/// columns).
///
/// # Errors
///
/// Returns [`PlanError`] when the strategy/shard-count combination is
/// infeasible for this model.
///
/// # Examples
///
/// ```
/// use dlrm_sharding::{plan, ShardingStrategy, ShardId};
/// use dlrm_workload::PoolingProfile;
///
/// let spec = dlrm_model::rm::rm3();
/// let profile = PoolingProfile::from_spec(&spec);
/// let p = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(4))?;
/// // The dominant table is row-partitioned across three shards; the
/// // small tables share the remaining one (§V-A).
/// let dominant = p.placement(dlrm_model::TableId(0));
/// assert_eq!(dominant.parts(), 3);
/// # Ok::<(), dlrm_sharding::PlanError>(())
/// ```
pub fn plan(
    spec: &ModelSpec,
    profile: &PoolingProfile,
    strategy: ShardingStrategy,
) -> Result<ShardingPlan, PlanError> {
    match strategy {
        ShardingStrategy::Singular => {
            let placements = spec
                .tables
                .iter()
                .map(|t| TablePlacement {
                    table: t.id,
                    location: Location::Main,
                })
                .collect();
            Ok(ShardingPlan::new(strategy, 0, placements))
        }
        ShardingStrategy::OneShard => {
            let placements = spec
                .tables
                .iter()
                .map(|t| TablePlacement {
                    table: t.id,
                    location: Location::Shards(vec![ShardId(0)]),
                })
                .collect();
            Ok(ShardingPlan::new(strategy, 1, placements))
        }
        ShardingStrategy::CapacityBalanced(n) => {
            let key = |t: &dlrm_model::TableSpec| t.bytes() as f64;
            balanced_plan(spec, strategy, n, key)
        }
        ShardingStrategy::LoadBalanced(n) => {
            let key = |t: &dlrm_model::TableSpec| profile.of(t.id);
            balanced_plan(spec, strategy, n, key)
        }
        ShardingStrategy::NetSpecificBinPacking(n) => nsbp_plan(spec, strategy, n),
        ShardingStrategy::Auto(n) => {
            let config = crate::auto::AutoConfig::for_model(spec, n);
            crate::auto::auto_plan(spec, profile, &config)
        }
    }
}

/// Longest-processing-time greedy balance: sort tables by descending
/// key, repeatedly assign to the least-loaded shard. Ties broken by
/// total bytes so zero-load tables still spread.
fn balanced_plan(
    spec: &ModelSpec,
    strategy: ShardingStrategy,
    n: usize,
    key: impl Fn(&dlrm_model::TableSpec) -> f64,
) -> Result<ShardingPlan, PlanError> {
    if n == 0 {
        return Err(PlanError::ZeroShards);
    }
    if n > spec.tables.len() {
        return Err(PlanError::TooManyShards {
            requested: n,
            tables: spec.tables.len(),
        });
    }
    let mut order: Vec<&dlrm_model::TableSpec> = spec.tables.iter().collect();
    order.sort_by(|a, b| {
        key(b)
            .total_cmp(&key(a))
            .then(b.bytes().cmp(&a.bytes()))
            .then(a.id.cmp(&b.id))
    });

    let mut load = vec![0.0f64; n];
    let mut bytes = vec![0u64; n];
    let mut assignment: Vec<Option<ShardId>> = vec![None; spec.tables.len()];
    for t in order {
        let target = (0..n)
            .min_by(|&a, &b| {
                load[a]
                    .total_cmp(&load[b])
                    .then(bytes[a].cmp(&bytes[b]))
                    .then(a.cmp(&b))
            })
            .expect("n > 0");
        load[target] += key(t);
        bytes[target] += t.bytes();
        assignment[t.id.0] = Some(ShardId(target));
    }

    let placements = spec
        .tables
        .iter()
        .map(|t| TablePlacement {
            table: t.id,
            location: Location::Shards(vec![assignment[t.id.0].expect("assigned")]),
        })
        .collect();
    Ok(ShardingPlan::new(strategy, n, placements))
}

/// One NSBP bin: either a set of whole tables from one net, or one part
/// of a row-sharded table.
#[derive(Debug, Clone)]
enum Bin {
    Whole {
        net: NetId,
        tables: Vec<TableId>,
        bytes: f64,
    },
    /// `part` of `parts` of a row-sharded table.
    Part { table: TableId, bytes: f64 },
}

impl Bin {
    fn bytes(&self) -> f64 {
        match self {
            Bin::Whole { bytes, .. } | Bin::Part { bytes, .. } => *bytes,
        }
    }
}

/// Net-specific bin-packing (§III-B3): group tables by net, first-fit-
/// decreasing into bins of a size limit, row-sharding tables that exceed
/// the limit. The limit starts at `total/n` and grows until the bin
/// count fits `n`; leftover shards are absorbed by further splitting the
/// largest bins.
fn nsbp_plan(
    spec: &ModelSpec,
    strategy: ShardingStrategy,
    n: usize,
) -> Result<ShardingPlan, PlanError> {
    if n == 0 {
        return Err(PlanError::ZeroShards);
    }
    if n < spec.nets.len() {
        return Err(PlanError::Infeasible(format!(
            "NSBP needs at least one shard per net ({} nets, {n} shards)",
            spec.nets.len()
        )));
    }

    let total: f64 = spec.tables.iter().map(|t| t.bytes() as f64).sum();
    let mut cap = total / n as f64;
    let mut bins = pack_all_nets(spec, cap);
    // Grow the limit until everything fits in n bins (bounded: at
    // cap >= total each net is one bin and row-sharding vanishes).
    let mut guard = 0;
    while bins.len() > n {
        cap *= 1.02;
        bins = pack_all_nets(spec, cap);
        guard += 1;
        assert!(guard < 10_000, "NSBP capacity search did not converge");
    }

    // Spend leftover shards by splitting the biggest bins, preserving
    // net isolation.
    while bins.len() < n {
        let (idx, _) = bins
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.bytes().total_cmp(&b.bytes()))
            .expect("at least one bin");
        match bins.remove(idx) {
            Bin::Part { table, .. } => {
                // Increase the table's part count by one: remove all its
                // parts and re-add parts+1.
                let mut existing: Vec<usize> = Vec::new();
                let mut i = 0;
                while i < bins.len() {
                    if matches!(&bins[i], Bin::Part { table: t, .. } if *t == table) {
                        bins.remove(i);
                        existing.push(i);
                    } else {
                        i += 1;
                    }
                }
                let parts = existing.len() + 2; // removed one + removed rest + one extra
                let per = spec.table(table).bytes() as f64 / parts as f64;
                for _ in 0..parts {
                    bins.push(Bin::Part { table, bytes: per });
                }
            }
            Bin::Whole { net, tables, bytes } => {
                if tables.len() >= 2 {
                    // Split the table set into two bins by alternating
                    // descending sizes.
                    let mut sorted = tables;
                    sorted.sort_by_key(|&t| std::cmp::Reverse(spec.table(t).bytes()));
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    let (mut ab, mut bb) = (0.0f64, 0.0f64);
                    for t in sorted {
                        let sz = spec.table(t).bytes() as f64;
                        if ab <= bb {
                            a.push(t);
                            ab += sz;
                        } else {
                            b.push(t);
                            bb += sz;
                        }
                    }
                    bins.push(Bin::Whole {
                        net,
                        tables: a,
                        bytes: ab,
                    });
                    bins.push(Bin::Whole {
                        net,
                        tables: b,
                        bytes: bb,
                    });
                } else {
                    // A single whole table: row-shard it in two.
                    let table = tables[0];
                    let per = bytes / 2.0;
                    bins.push(Bin::Part { table, bytes: per });
                    bins.push(Bin::Part { table, bytes: per });
                }
            }
        }
    }

    // Assign shard ids in net order (then pack order), and build
    // placements.
    bins.sort_by(|a, b| {
        let net_of = |bin: &Bin| match bin {
            Bin::Whole { net, .. } => net.0,
            Bin::Part { table, .. } => spec.table(*table).net.0,
        };
        net_of(a).cmp(&net_of(b))
    });
    let mut placements: Vec<TablePlacement> = spec
        .tables
        .iter()
        .map(|t| TablePlacement {
            table: t.id,
            location: Location::Shards(Vec::new()),
        })
        .collect();
    for (shard_idx, bin) in bins.iter().enumerate() {
        match bin {
            Bin::Whole { tables, .. } => {
                for &t in tables {
                    if let Location::Shards(s) = &mut placements[t.0].location {
                        s.push(ShardId(shard_idx));
                    }
                }
            }
            Bin::Part { table, .. } => {
                if let Location::Shards(s) = &mut placements[table.0].location {
                    s.push(ShardId(shard_idx));
                }
            }
        }
    }
    // Sanity: every table placed somewhere.
    for p in &placements {
        if matches!(&p.location, Location::Shards(s) if s.is_empty()) {
            return Err(PlanError::Infeasible(format!("{} unplaced", p.table)));
        }
    }
    Ok(ShardingPlan::new(strategy, n, placements))
}

/// FFD-packs every net's tables into bins of capacity `cap`; tables
/// larger than `cap` become row-sharded parts.
fn pack_all_nets(spec: &ModelSpec, cap: f64) -> Vec<Bin> {
    let mut bins = Vec::new();
    for net in &spec.nets {
        let mut tables: Vec<&dlrm_model::TableSpec> = spec.tables_of_net(net.id).collect();
        tables.sort_by(|a, b| b.bytes().cmp(&a.bytes()).then(a.id.cmp(&b.id)));
        let mut net_bins: Vec<Bin> = Vec::new();
        for t in tables {
            let bytes = t.bytes() as f64;
            if bytes > cap {
                let parts = (bytes / cap).ceil() as usize;
                let per = bytes / parts as f64;
                for _ in 0..parts {
                    bins.push(Bin::Part {
                        table: t.id,
                        bytes: per,
                    });
                }
                continue;
            }
            // First-fit into this net's bins.
            let slot = net_bins.iter_mut().find(|b| match b {
                Bin::Whole { bytes: bb, .. } => *bb + bytes <= cap,
                Bin::Part { .. } => false,
            });
            match slot {
                Some(Bin::Whole {
                    tables: ts,
                    bytes: bb,
                    ..
                }) => {
                    ts.push(t.id);
                    *bb += bytes;
                }
                _ => net_bins.push(Bin::Whole {
                    net: net.id,
                    tables: vec![t.id],
                    bytes,
                }),
            }
        }
        bins.extend(net_bins);
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::rm;

    fn profile_for(spec: &ModelSpec) -> PoolingProfile {
        PoolingProfile::from_spec(spec)
    }

    #[test]
    fn singular_keeps_everything_on_main() {
        let spec = rm::rm1();
        let p = plan(&spec, &profile_for(&spec), ShardingStrategy::Singular).unwrap();
        assert_eq!(p.num_shards(), 0);
        assert_eq!(p.validate(&spec), Ok(()));
    }

    #[test]
    fn one_shard_holds_all_tables() {
        let spec = rm::rm1();
        let p = plan(&spec, &profile_for(&spec), ShardingStrategy::OneShard).unwrap();
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shard_table_count(ShardId(0)), 257);
        assert!((p.shard_capacity_bytes(ShardId(0), &spec) - spec.total_bytes() as f64).abs() < 1.0);
    }

    #[test]
    fn capacity_balanced_equalizes_bytes_like_table_ii() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for n in [2usize, 4, 8] {
            let p = plan(&spec, &prof, ShardingStrategy::CapacityBalanced(n)).unwrap();
            assert_eq!(p.validate(&spec), Ok(()));
            let caps: Vec<f64> = p
                .shards()
                .map(|s| p.shard_capacity_bytes(s, &spec))
                .collect();
            let max = caps.iter().cloned().fold(0.0, f64::max);
            let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
            // Table II: capacity-balanced shards are within a whisker of
            // each other (24.25 GiB × 8).
            assert!(
                (max - min) / max < 0.02,
                "n={n}: caps spread too wide: {caps:?}"
            );
        }
    }

    #[test]
    fn load_balanced_equalizes_pooling_like_table_ii() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for n in [2usize, 4, 8] {
            let p = plan(&spec, &prof, ShardingStrategy::LoadBalanced(n)).unwrap();
            let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &prof)).collect();
            let max = pools.iter().cloned().fold(0.0, f64::max);
            let min = pools.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                (max - min) / max < 0.02,
                "n={n}: pooling spread too wide: {pools:?}"
            );
        }
    }

    #[test]
    fn capacity_balanced_leaves_load_imbalanced() {
        // Table II: capacity-balanced per-shard load varied up to 371%.
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        let p = plan(&spec, &prof, ShardingStrategy::CapacityBalanced(8)).unwrap();
        let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &prof)).collect();
        let max = pools.iter().cloned().fold(0.0, f64::max);
        let min = pools.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.5, "expected load imbalance, got {pools:?}");
    }

    #[test]
    fn load_balanced_leaves_capacity_imbalanced() {
        // Table II: load-balanced per-shard capacity varied up to ~50%.
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        let p = plan(&spec, &prof, ShardingStrategy::LoadBalanced(8)).unwrap();
        let caps: Vec<f64> = p
            .shards()
            .map(|s| p.shard_capacity_bytes(s, &spec))
            .collect();
        let max = caps.iter().cloned().fold(0.0, f64::max);
        let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.15, "expected capacity imbalance, got {caps:?}");
    }

    #[test]
    fn nsbp_isolates_nets() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for n in [2usize, 4, 8] {
            let p = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(n)).unwrap();
            assert_eq!(p.validate(&spec), Ok(()));
            assert!(p.nets_are_isolated(&spec), "n={n}");
        }
    }

    #[test]
    fn nsbp_two_shards_puts_each_net_on_its_own_shard() {
        // Table II NSBP-2: shard1 = user net (33.58 GiB), shard2 =
        // content net (160 GiB).
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        let p = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(2)).unwrap();
        let caps: Vec<f64> = p
            .shards()
            .map(|s| p.shard_capacity_bytes(s, &spec) / (1u64 << 30) as f64)
            .collect();
        let (small, large) = (caps[0].min(caps[1]), caps[0].max(caps[1]));
        assert!((small - 33.58).abs() < 1.5, "user shard {small}");
        assert!((large - 160.47).abs() < 3.0, "content shard {large}");
        // Pooling asymmetry: the small shard does ~94% of the work.
        let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &prof)).collect();
        let hot = pools.iter().cloned().fold(0.0, f64::max);
        assert!(hot / prof.total() > 0.9);
    }

    #[test]
    fn nsbp_rm3_row_shards_the_dominant_table() {
        // §V-A: "given four sparse shards, the largest table is
        // partitioned into three shards and the remaining tables grouped
        // together into one shard".
        let spec = rm::rm3();
        let prof = profile_for(&spec);
        let p4 = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(4)).unwrap();
        assert_eq!(p4.placement(TableId(0)).parts(), 3);
        let p8 = plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(8)).unwrap();
        assert_eq!(p8.placement(TableId(0)).parts(), 7);
        // Small tables all share one shard.
        let small_shards: std::collections::BTreeSet<_> = spec.tables[1..]
            .iter()
            .flat_map(|t| match &p8.placement(t.id).location {
                Location::Shards(s) => s.clone(),
                Location::Main => vec![],
            })
            .collect();
        assert_eq!(small_shards.len(), 1);
    }

    #[test]
    fn nsbp_needs_one_shard_per_net() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        assert!(matches!(
            plan(&spec, &prof, ShardingStrategy::NetSpecificBinPacking(1)),
            Err(PlanError::Infeasible(_))
        ));
    }

    #[test]
    fn every_sweep_config_plans_for_rm1_and_rm2() {
        for spec in [rm::rm1(), rm::rm2()] {
            let prof = profile_for(&spec);
            for strat in ShardingStrategy::full_sweep() {
                let p = plan(&spec, &prof, strat).unwrap();
                assert_eq!(p.validate(&spec), Ok(()), "{} {strat}", spec.name);
            }
        }
    }

    #[test]
    fn rm3_sweep_plans() {
        let spec = rm::rm3();
        let prof = profile_for(&spec);
        for strat in ShardingStrategy::rm3_sweep() {
            let p = plan(&spec, &prof, strat).unwrap();
            assert_eq!(p.validate(&spec), Ok(()), "{strat}");
        }
    }

    #[test]
    fn zero_shards_rejected() {
        let spec = rm::rm3();
        let prof = profile_for(&spec);
        assert_eq!(
            plan(&spec, &prof, ShardingStrategy::CapacityBalanced(0)),
            Err(PlanError::ZeroShards)
        );
    }

    #[test]
    fn more_shards_than_tables_rejected_for_balanced() {
        let spec = rm::rm3(); // 39 tables
        let prof = profile_for(&spec);
        assert!(matches!(
            plan(&spec, &prof, ShardingStrategy::CapacityBalanced(40)),
            Err(PlanError::TooManyShards { .. })
        ));
    }

    #[test]
    fn plans_are_deterministic() {
        let spec = rm::rm1();
        let prof = profile_for(&spec);
        for strat in ShardingStrategy::full_sweep() {
            let a = plan(&spec, &prof, strat).unwrap();
            let b = plan(&spec, &prof, strat).unwrap();
            assert_eq!(a, b, "{strat}");
        }
    }
}
