//! Automatic sharding search — the paper's proposed future work.
//!
//! §X: "Future work is needed to automate model sharding to target
//! data-center resource efficiency and per-model SLA and QPS
//! requirements." This module implements a first such planner for
//! ablation against the three manual strategies: a greedy placement
//! that, at a fixed shard count,
//!
//! 1. row-shards any table larger than the per-shard capacity limit,
//! 2. places remaining tables in descending pooling order onto the
//!    feasible shard with the least pooling load, preferring shards
//!    that already hold tables of the same net (reducing RPC count —
//!    the NSBP insight) when loads are close.
//!
//! It therefore interpolates between load-balancing (latency) and net
//! isolation (compute/replication efficiency).

use crate::plan::{Location, ShardId, ShardingPlan, TablePlacement};
use crate::planner::PlanError;
use crate::ShardingStrategy;
use dlrm_model::ModelSpec;
use dlrm_workload::PoolingProfile;

/// Tunables for the automatic planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoConfig {
    /// Number of sparse shards to produce.
    pub shards: usize,
    /// Per-shard capacity limit in bytes; tables above it are
    /// row-sharded, and placement never exceeds it (slack permitting).
    pub max_shard_bytes: f64,
    /// Relative load slack within which the planner prefers net
    /// affinity over strict load balance (0 = pure load balancing).
    pub net_affinity_slack: f64,
}

impl AutoConfig {
    /// A reasonable default for `spec`: capacity limit 1.25× the even
    /// split, 10% affinity slack.
    #[must_use]
    pub fn for_model(spec: &ModelSpec, shards: usize) -> Self {
        Self {
            shards,
            max_shard_bytes: spec.total_bytes() as f64 / shards.max(1) as f64 * 1.25,
            net_affinity_slack: 0.10,
        }
    }
}

/// Produces an automatic plan under `config`.
///
/// # Errors
///
/// [`PlanError::ZeroShards`] for zero shards; [`PlanError::Infeasible`]
/// when the capacity limit cannot accommodate the model on the given
/// shard count.
pub fn auto_plan(
    spec: &ModelSpec,
    profile: &PoolingProfile,
    config: &AutoConfig,
) -> Result<ShardingPlan, PlanError> {
    let n = config.shards;
    if n == 0 {
        return Err(PlanError::ZeroShards);
    }
    if (spec.total_bytes() as f64) > config.max_shard_bytes * n as f64 {
        return Err(PlanError::Infeasible(format!(
            "{} bytes exceed {n} shards × {} byte limit",
            spec.total_bytes(),
            config.max_shard_bytes
        )));
    }

    let mut placements: Vec<TablePlacement> = spec
        .tables
        .iter()
        .map(|t| TablePlacement {
            table: t.id,
            location: Location::Shards(Vec::new()),
        })
        .collect();
    let mut load = vec![0.0f64; n];
    let mut bytes = vec![0.0f64; n];
    let mut net_of_shard: Vec<Option<dlrm_model::NetId>> = vec![None; n];

    // Pass 1: row-shard oversized tables across the emptiest shards.
    let mut oversized: Vec<&dlrm_model::TableSpec> = spec
        .tables
        .iter()
        .filter(|t| t.bytes() as f64 > config.max_shard_bytes)
        .collect();
    oversized.sort_by_key(|t| std::cmp::Reverse(t.bytes()));
    for t in oversized {
        let parts = ((t.bytes() as f64) / config.max_shard_bytes).ceil() as usize;
        if parts > n {
            return Err(PlanError::Infeasible(format!(
                "table {} needs {parts} parts but only {n} shards exist",
                t.name
            )));
        }
        // Choose the `parts` shards with the least bytes.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| bytes[a].total_cmp(&bytes[b]).then(a.cmp(&b)));
        let chosen: Vec<ShardId> = order[..parts].iter().map(|&i| ShardId(i)).collect();
        for s in &chosen {
            bytes[s.0] += t.bytes() as f64 / parts as f64;
            load[s.0] += profile.of(t.id) / parts as f64;
            net_of_shard[s.0].get_or_insert(t.net);
        }
        placements[t.id.0].location = Location::Shards(chosen);
    }

    // Pass 2: greedy placement of whole tables, descending pooling.
    let mut rest: Vec<&dlrm_model::TableSpec> = spec
        .tables
        .iter()
        .filter(|t| t.bytes() as f64 <= config.max_shard_bytes)
        .collect();
    rest.sort_by(|a, b| {
        profile
            .of(b.id)
            .total_cmp(&profile.of(a.id))
            .then(b.bytes().cmp(&a.bytes()))
            .then(a.id.cmp(&b.id))
    });
    for t in rest {
        let tb = t.bytes() as f64;
        // Feasible shards by capacity; untouched shards are always
        // feasible.
        let feasible: Vec<usize> = (0..n)
            .filter(|&i| bytes[i] + tb <= config.max_shard_bytes)
            .collect();
        let candidates: &[usize] = if feasible.is_empty() {
            // Relax capacity rather than fail (mirrors the paper's
            // best-effort bin growth).
            &(0..n).collect::<Vec<_>>()
        } else {
            &feasible
        };
        let min_load = candidates
            .iter()
            .map(|&i| load[i])
            .fold(f64::INFINITY, f64::min);
        // Among near-minimal-load shards, prefer one already serving
        // this net.
        // Slack is relative to one shard's fair share of the load.
        let slack = config.net_affinity_slack * profile.total().max(1.0) / n as f64;
        let pick = candidates
            .iter()
            .copied()
            .filter(|&i| load[i] <= min_load + slack)
            .min_by(|&a, &b| {
                let aff = |i: usize| match net_of_shard[i] {
                    Some(netted) if netted == t.net => 0,
                    None => 1,
                    Some(_) => 2,
                };
                aff(a)
                    .cmp(&aff(b))
                    .then(load[a].total_cmp(&load[b]))
                    .then(a.cmp(&b))
            })
            .expect("candidates non-empty");
        load[pick] += profile.of(t.id);
        bytes[pick] += tb;
        net_of_shard[pick].get_or_insert(t.net);
        placements[t.id.0].location = Location::Shards(vec![ShardId(pick)]);
    }

    // Any shard left empty (possible when n is large relative to the
    // table count): steal the lightest table from the heaviest shard.
    for empty in 0..n {
        if bytes[empty] > 0.0 {
            continue;
        }
        let donor = (0..n)
            .max_by(|&a, &b| bytes[a].total_cmp(&bytes[b]))
            .expect("n > 0");
        let victim = placements
            .iter()
            .filter(|p| matches!(&p.location, Location::Shards(s) if s == &vec![ShardId(donor)]))
            .min_by(|a, b| {
                spec.table(a.table)
                    .bytes()
                    .cmp(&spec.table(b.table).bytes())
            })
            .map(|p| p.table);
        let Some(victim) = victim else {
            return Err(PlanError::Infeasible(format!(
                "cannot populate shard {empty}"
            )));
        };
        let vb = spec.table(victim).bytes() as f64;
        bytes[donor] -= vb;
        load[donor] -= profile.of(victim);
        bytes[empty] += vb;
        load[empty] += profile.of(victim);
        placements[victim.0].location = Location::Shards(vec![ShardId(empty)]);
    }

    Ok(ShardingPlan::new(
        ShardingStrategy::Auto(n),
        n,
        placements,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::rm;

    #[test]
    fn auto_plan_balances_load_within_capacity() {
        let spec = rm::rm1();
        let profile = PoolingProfile::from_spec(&spec);
        let config = AutoConfig::for_model(&spec, 8);
        let p = auto_plan(&spec, &profile, &config).unwrap();
        assert_eq!(p.validate(&spec), Ok(()));
        let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &profile)).collect();
        let max = pools.iter().cloned().fold(0.0, f64::max);
        let min = pools.iter().cloned().fold(f64::INFINITY, f64::min);
        // Far better balanced than capacity-balanced (371% spread), with
        // affinity slack it can be looser than pure load-balancing.
        assert!(max / min < 2.0, "pooling spread {pools:?}");
        for s in p.shards() {
            assert!(
                p.shard_capacity_bytes(s, &spec) <= config.max_shard_bytes * 1.15,
                "{s} overfull"
            );
        }
    }

    #[test]
    fn auto_plan_row_shards_rm3_dominant_table() {
        let spec = rm::rm3();
        let profile = PoolingProfile::from_spec(&spec);
        let config = AutoConfig::for_model(&spec, 8);
        let p = auto_plan(&spec, &profile, &config).unwrap();
        assert!(p.placement(dlrm_model::TableId(0)).is_row_sharded());
        assert_eq!(p.validate(&spec), Ok(()));
    }

    #[test]
    fn auto_plan_reduces_rpcs_versus_load_balanced() {
        // Net affinity should touch fewer (net, shard) pairs than pure
        // load balancing at the same shard count.
        let spec = rm::rm1();
        let profile = PoolingProfile::from_spec(&spec);
        let auto = auto_plan(&spec, &profile, &AutoConfig::for_model(&spec, 8)).unwrap();
        let lb = crate::plan(&spec, &profile, ShardingStrategy::LoadBalanced(8)).unwrap();
        let rpcs = |p: &ShardingPlan| -> usize {
            spec.nets
                .iter()
                .map(|n| p.shards_touched_by_net(n.id, &spec).len())
                .sum()
        };
        assert!(
            rpcs(&auto) <= rpcs(&lb),
            "auto {} vs lb {}",
            rpcs(&auto),
            rpcs(&lb)
        );
    }

    #[test]
    fn infeasible_capacity_is_reported() {
        let spec = rm::rm1();
        let profile = PoolingProfile::from_spec(&spec);
        let config = AutoConfig {
            shards: 2,
            max_shard_bytes: 1.0, // absurd
            net_affinity_slack: 0.1,
        };
        assert!(matches!(
            auto_plan(&spec, &profile, &config),
            Err(PlanError::Infeasible(_))
        ));
    }

    #[test]
    fn zero_shards_rejected() {
        let spec = rm::rm3();
        let profile = PoolingProfile::from_spec(&spec);
        let config = AutoConfig {
            shards: 0,
            max_shard_bytes: 1e12,
            net_affinity_slack: 0.1,
        };
        assert_eq!(
            auto_plan(&spec, &profile, &config),
            Err(PlanError::ZeroShards)
        );
    }
}
