//! The graph partitioner: rewrites a model for distributed inference.
//!
//! "A custom partitioning tool employs a user-supplied configuration to
//! group embedding tables and their operators, insert RPC operators,
//! generate new Caffe2 nets, and then serialize the model" (§III-C).
//! [`partition`] is that tool: it consumes a built [`Model`] and a
//! [`ShardingPlan`] and produces a [`DistributedModel`] whose main-shard
//! nets contain [`SparseRpc`] operators in place of the relocated
//! `SparseLengthsSum` operators, plus per-shard [`ShardService`]s.

use crate::cache::HotRowCache;
use crate::plan::{ShardId, ShardingPlan};
use crate::rpc::{RpcFetch, SparseRpc, SparseShardClient};
use crate::{InProcessClient, ShardService};
use dlrm_model::graph::{ExecutionObserver, GraphError, NetDef, Operator, Workspace};
use dlrm_model::ops::ElementwiseSum;
use dlrm_model::{Model, ModelSpec, NetId, TableId};
use dlrm_tensor::Matrix;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Errors from graph partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The plan does not match the model.
    PlanMismatch(String),
    /// An SLS operator referenced a table the spec does not know.
    UnknownTable {
        /// The operator.
        op: String,
        /// The unknown table name.
        table: String,
    },
    /// The rewritten nets failed graph validation (a rewrite bug: some
    /// operator's declared input is produced by nothing).
    InvalidGraph(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::PlanMismatch(m) => write!(f, "plan does not match model: {m}"),
            PartitionError::UnknownTable { op, table } => {
                write!(f, "operator {op} references unknown table {table}")
            }
            PartitionError::InvalidGraph(m) => write!(f, "partitioner produced {m}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A model partitioned for distributed inference: rewritten main-shard
/// nets plus the sparse-shard services they call.
#[derive(Debug)]
pub struct DistributedModel {
    /// The model's static description.
    pub spec: ModelSpec,
    /// Main-shard nets with RPC operators in place of remote SLS ops.
    pub nets: Vec<NetDef>,
    /// One service per sparse shard, indexed by [`ShardId`].
    pub shards: Vec<Arc<ShardService>>,
    /// The plan this model was partitioned under.
    pub plan: ShardingPlan,
    /// Name of the final prediction blob.
    pub output_blob: String,
    /// The main shard's hot-row cache, when the plan carries hot-row
    /// sets (see [`crate::plan_with_stats`]). Shared by every
    /// [`SparseRpc`] operator; its [`HotRowCache::totals`] accumulate
    /// across requests.
    pub cache: Option<Arc<HotRowCache>>,
}

impl DistributedModel {
    /// Runs all main-shard nets sequentially (RPC operators call their
    /// shards inline) and returns the final prediction.
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure.
    pub fn run(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<Matrix, GraphError> {
        for net in &self.nets {
            net.run(ws, observer)?;
        }
        ws.take_dense(&self.output_blob, "distributed-output")
    }

    /// Runs all main-shard nets under the overlap scheduler
    /// ([`NetDef::run_overlapped`]): every [`SparseRpc`] whose inputs
    /// are ready is issued before anything blocks, so all shard
    /// round-trips overlap with each other and with the bottom-MLP dense
    /// compute (§IV-A). Bit-exact with [`Self::run`].
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure; RPCs still in flight are
    /// abandoned.
    pub fn run_overlapped(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<Matrix, GraphError> {
        for net in &self.nets {
            net.run_overlapped(ws, observer)?;
        }
        ws.take_dense(&self.output_blob, "distributed-output")
    }

    /// Static consumer counts for [`Workspace::set_consumer_counts`]:
    /// reads per blob across the rewritten main-shard nets, plus one
    /// synthetic read of the output blob. See
    /// [`Model::consumer_counts`](dlrm_model::Model::consumer_counts).
    #[must_use]
    pub fn consumer_counts(&self) -> std::collections::HashMap<String, usize> {
        let mut counts = dlrm_model::consumer_counts_of(self.nets.iter());
        *counts.entry(self.output_blob.clone()).or_insert(0) += 1;
        counts
    }

    /// Applies one fault-tolerance [`RpcPolicy`] to every [`SparseRpc`]
    /// operator across all nets (via the [`Operator::as_any_mut`]
    /// downcast hook), and returns how many operators were configured.
    /// Call after partitioning, before serving.
    pub fn set_rpc_policy(&mut self, policy: crate::rpc::RpcPolicy) -> usize {
        let mut configured = 0;
        for net in &mut self.nets {
            for op in net.ops_mut() {
                let Some(any) = op.as_any_mut() else { continue };
                if let Some(rpc) = any.downcast_mut::<SparseRpc>() {
                    rpc.set_policy(policy);
                    configured += 1;
                }
            }
        }
        configured
    }

    /// Number of RPC operators across all nets — one RPC issued per
    /// operator per batch, the quantity compute overhead is proportional
    /// to (§VI-C1).
    #[must_use]
    pub fn rpc_ops_per_inference(&self) -> usize {
        self.nets
            .iter()
            .map(|n| {
                n.ops()
                    .iter()
                    .filter(|op| op.outputs().iter().any(|o| o.starts_with("pooled/")))
                    .filter(|op| op.as_sparse_lengths_sum().is_none())
                    .filter(|op| !op.name().contains("combine"))
                    .count()
            })
            .sum()
    }
}

/// Partitions `model` under `plan` with in-process shard clients — the
/// configuration used for correctness verification.
///
/// # Errors
///
/// See [`partition_with_clients`].
///
/// # Examples
///
/// ```
/// use dlrm_sharding::{partition, plan, ShardingStrategy};
/// use dlrm_workload::PoolingProfile;
///
/// let spec = dlrm_model::rm::rm3().scaled_to_bytes(4 << 20);
/// let profile = PoolingProfile::from_spec(&spec);
/// let p = plan(&spec, &profile, ShardingStrategy::OneShard)?;
/// let model = dlrm_model::build_model(&spec, 1).unwrap();
/// let dist = partition(model, &p).unwrap();
/// assert_eq!(dist.shards.len(), 1);
/// # Ok::<(), dlrm_sharding::PlanError>(())
/// ```
pub fn partition(model: Model, plan: &ShardingPlan) -> Result<DistributedModel, PartitionError> {
    let services: Vec<Arc<ShardService>> = plan
        .shards()
        .map(|s| Arc::new(ShardService::build(&model.tables, plan, s)))
        .collect();
    let clients: Vec<Arc<dyn SparseShardClient>> = services
        .iter()
        .map(|s| Arc::new(InProcessClient::new(Arc::clone(s))) as Arc<dyn SparseShardClient>)
        .collect();
    partition_with_clients(model, plan, services, clients)
}

/// Partitions `model` under `plan`, wiring the rewritten nets to the
/// provided shard clients (which must be ordered by [`ShardId`]).
///
/// # Errors
///
/// - [`PartitionError::PlanMismatch`] if the plan fails validation
///   against the model's spec or the client list is mis-sized.
/// - [`PartitionError::UnknownTable`] if an SLS operator references a
///   table absent from the spec.
pub fn partition_with_clients(
    model: Model,
    plan: &ShardingPlan,
    services: Vec<Arc<ShardService>>,
    clients: Vec<Arc<dyn SparseShardClient>>,
) -> Result<DistributedModel, PartitionError> {
    plan.validate(&model.spec)
        .map_err(PartitionError::PlanMismatch)?;
    if clients.len() != plan.num_shards() {
        return Err(PartitionError::PlanMismatch(format!(
            "{} clients for {} shards",
            clients.len(),
            plan.num_shards()
        )));
    }

    // Materialize the plan's hot-row sets while the full tables are
    // still at hand; every RPC operator below shares this cache.
    let cache = if plan.has_hot_rows() {
        Some(Arc::new(HotRowCache::build(&model.tables, plan)))
    } else {
        None
    };

    let spec = model.spec.clone();
    let output_blob = model.output_blob.clone();
    // Table lookup by name (builder names tables uniquely).
    let by_name: BTreeMap<&str, TableId> =
        spec.tables.iter().map(|t| (t.name.as_str(), t.id)).collect();

    let mut new_nets = Vec::with_capacity(model.nets.len());
    for (net_idx, net) in model.nets.into_iter().enumerate() {
        let net_id = NetId(net_idx);
        let net_name = net.name().to_string();
        let mut fetches_by_shard: BTreeMap<ShardId, Vec<RpcFetch>> = BTreeMap::new();
        // (table name, part blobs in part order, combined output blob)
        let mut combines: Vec<(String, Vec<String>, String)> = Vec::new();
        let mut rewritten: Vec<Box<dyn Operator>> = Vec::new();
        let mut insert_at: Option<usize> = None;

        for op in net.into_ops() {
            let Some(sls) = op.as_sparse_lengths_sum() else {
                rewritten.push(op);
                continue;
            };
            let table_id = *by_name.get(sls.table().name()).ok_or_else(|| {
                PartitionError::UnknownTable {
                    op: sls.name().to_string(),
                    table: sls.table().name().to_string(),
                }
            })?;
            let placement = plan.placement(table_id);
            let crate::plan::Location::Shards(shards) = &placement.location else {
                // Singular: keep the SLS op on the main shard.
                rewritten.push(op);
                continue;
            };
            insert_at.get_or_insert(rewritten.len());
            let parts = shards.len();
            let mut part_blobs = Vec::with_capacity(parts);
            for (part, &shard) in shards.iter().enumerate() {
                let output_blob = if parts == 1 {
                    sls.output_blob().to_string()
                } else {
                    format!("{}/part{part}", sls.output_blob())
                };
                part_blobs.push(output_blob.clone());
                fetches_by_shard.entry(shard).or_default().push(RpcFetch {
                    table: table_id,
                    input_blob: sls.input_blob().to_string(),
                    output_blob,
                    parts,
                    part,
                    dim: spec.table(table_id).dim as usize,
                });
            }
            if parts > 1 {
                combines.push((
                    spec.table(table_id).name.clone(),
                    part_blobs,
                    sls.output_blob().to_string(),
                ));
            }
            // The SLS op itself is dropped: its table now lives remotely.
        }

        if let Some(pos) = insert_at {
            let mut inserted: Vec<Box<dyn Operator>> = Vec::new();
            for (shard, fetches) in fetches_by_shard {
                let mut rpc = SparseRpc::new(
                    format!("{net_name}/rpc/{shard}"),
                    net_id,
                    Arc::clone(&clients[shard.0]),
                    fetches,
                );
                if let Some(cache) = &cache {
                    rpc.set_cache(Arc::clone(cache));
                }
                inserted.push(Box::new(rpc));
            }
            for (table_name, parts, output) in combines {
                inserted.push(Box::new(ElementwiseSum::new(
                    format!("{net_name}/combine/{table_name}"),
                    parts,
                    output,
                )));
            }
            rewritten.splice(pos..pos, inserted);
        }

        let mut new_net = NetDef::new(net_name);
        new_net.set_ops(rewritten);
        new_nets.push(new_net);
    }

    // The rewrite moved and replaced operators; re-validate the nets so
    // a partitioner bug surfaces here, not inside the overlap scheduler.
    let mut available = dlrm_model::graph::external_input_blobs(&spec);
    for net in &new_nets {
        net.validate(&mut available)
            .map_err(|e| PartitionError::InvalidGraph(e.to_string()))?;
    }
    if !available.contains(&output_blob) {
        return Err(PartitionError::InvalidGraph(format!(
            "output blob {output_blob} is produced by no operator"
        )));
    }

    Ok(DistributedModel {
        spec,
        nets: new_nets,
        shards: services,
        plan: plan.clone(),
        output_blob,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan as make_plan, ShardingStrategy};
    use dlrm_model::graph::NoopObserver;
    use dlrm_model::{build_model, rm};
    use dlrm_workload::{materialize_request, PoolingProfile, TraceDb};

    /// Runs singular and distributed execution on the same inputs and
    /// returns both outputs.
    fn run_both(
        spec: &dlrm_model::ModelSpec,
        strategy: ShardingStrategy,
    ) -> (Matrix, Matrix, DistributedModel) {
        let profile = PoolingProfile::from_spec(spec);
        let p = make_plan(spec, &profile, strategy).unwrap();
        let singular = build_model(spec, 42).unwrap();
        let distributed = partition(build_model(spec, 42).unwrap(), &p).unwrap();

        let db = TraceDb::generate(spec, 3, 5);
        let batches = materialize_request(spec, db.get(0), 8, 9);
        let mut ws_a = Workspace::new();
        batches[0].load_into(spec, &mut ws_a);
        let mut ws_b = ws_a.clone();

        let out_a = singular.run(&mut ws_a, &mut NoopObserver).unwrap();
        let out_b = distributed.run(&mut ws_b, &mut NoopObserver).unwrap();
        (out_a, out_b, distributed)
    }

    #[test]
    fn one_shard_matches_singular_bit_for_bit() {
        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        let (a, b, dist) = run_both(&spec, ShardingStrategy::OneShard);
        assert_eq!(a, b);
        assert_eq!(dist.shards.len(), 1);
    }

    #[test]
    fn balanced_strategies_match_singular_bit_for_bit() {
        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        for strategy in [
            ShardingStrategy::CapacityBalanced(4),
            ShardingStrategy::LoadBalanced(4),
            ShardingStrategy::NetSpecificBinPacking(4),
        ] {
            let (a, b, _) = run_both(&spec, strategy);
            // Whole-table placement preserves float summation order.
            assert_eq!(a, b, "{strategy}");
        }
    }

    #[test]
    fn row_sharded_rm3_matches_within_float_tolerance() {
        let spec = rm::rm3().scaled_to_bytes(4 << 20);
        let (a, b, dist) = run_both(&spec, ShardingStrategy::NetSpecificBinPacking(4));
        // Partial sums change float addition order; results must agree
        // to tolerance.
        assert!(
            a.approx_eq(&b, 1e-4),
            "max diff {}",
            a.max_abs_diff(&b)
        );
        assert!(dist.plan.placement(TableId(0)).is_row_sharded());
    }

    #[test]
    fn rpc_count_nsbp_is_one_per_shard() {
        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        let (_, _, dist) = run_both(&spec, ShardingStrategy::NetSpecificBinPacking(8));
        // NSBP: each shard holds one net's tables only → exactly one RPC
        // op per shard across both nets.
        assert_eq!(dist.rpc_ops_per_inference(), 8);
    }

    #[test]
    fn rpc_count_balanced_exceeds_shard_count() {
        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        let (_, _, dist) = run_both(&spec, ShardingStrategy::LoadBalanced(8));
        // Net-agnostic placement mixes nets on shards, so most shards are
        // called once per net (§III-B3's motivating inefficiency).
        assert!(
            dist.rpc_ops_per_inference() > 8,
            "got {}",
            dist.rpc_ops_per_inference()
        );
        assert!(dist.rpc_ops_per_inference() <= 16);
    }

    #[test]
    fn singular_plan_is_identity_transform() {
        let spec = rm::rm2().scaled_to_bytes(4 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        let p = make_plan(&spec, &profile, ShardingStrategy::Singular).unwrap();
        let dist = partition(build_model(&spec, 42).unwrap(), &p).unwrap();
        assert!(dist.shards.is_empty());
        assert_eq!(dist.rpc_ops_per_inference(), 0);
    }

    #[test]
    fn shard_capacity_sums_to_model_capacity() {
        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        let p = make_plan(&spec, &profile, ShardingStrategy::CapacityBalanced(4)).unwrap();
        let dist = partition(build_model(&spec, 42).unwrap(), &p).unwrap();
        let shard_total: usize = dist.shards.iter().map(|s| s.capacity_bytes()).sum();
        let model_total: usize = spec.tables.iter().map(|t| t.bytes() as usize).sum();
        assert_eq!(shard_total, model_total);
    }

    #[test]
    fn overlapped_matches_sequential_on_distributed_nets() {
        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        for strategy in [
            ShardingStrategy::OneShard,
            ShardingStrategy::CapacityBalanced(4),
            ShardingStrategy::NetSpecificBinPacking(4),
        ] {
            let p = make_plan(&spec, &profile, strategy).unwrap();
            let dist = partition(build_model(&spec, 42).unwrap(), &p).unwrap();
            let db = TraceDb::generate(&spec, 2, 5);
            for batch in materialize_request(&spec, db.get(1), 8, 9) {
                let mut ws_seq = Workspace::new();
                batch.load_into(&spec, &mut ws_seq);
                let mut ws_ovl = ws_seq.clone();
                let a = dist.run(&mut ws_seq, &mut NoopObserver).unwrap();
                let b = dist.run_overlapped(&mut ws_ovl, &mut NoopObserver).unwrap();
                assert_eq!(a, b, "{strategy}");
            }
        }
    }

    #[test]
    fn hot_row_aware_cache_matches_singular_bit_for_bit() {
        use crate::{plan_with_stats, HotRowConfig};
        use dlrm_workload::{materialize_request_with, IndexDist, RowStats};

        let spec = rm::rm1().scaled_to_bytes(4 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        let stats = RowStats::for_spec(&spec, 4_000, 1.1, 7);
        let p = plan_with_stats(
            &spec,
            &profile,
            ShardingStrategy::HotRowAware(4),
            &stats,
            &HotRowConfig::default(),
        )
        .unwrap();
        let singular = build_model(&spec, 42).unwrap();
        let dist = partition(build_model(&spec, 42).unwrap(), &p).unwrap();
        let cache = dist.cache.as_ref().expect("hot plan installs a cache");
        assert!(cache.resident_rows() > 0);

        // Zipf traffic matching the profiled skew, so the hot set is
        // actually exercised.
        let db = TraceDb::generate(&spec, 2, 5);
        for batch in materialize_request_with(&spec, db.get(0), 8, 9, IndexDist::Zipf(1.1)) {
            let mut ws_a = Workspace::new();
            batch.load_into(&spec, &mut ws_a);
            let mut ws_b = ws_a.clone();
            let mut ws_c = ws_a.clone();
            let a = singular.run(&mut ws_a, &mut NoopObserver).unwrap();
            let b = dist.run(&mut ws_b, &mut NoopObserver).unwrap();
            let c = dist.run_overlapped(&mut ws_c, &mut NoopObserver).unwrap();
            assert_eq!(a, b, "cache tier must be bit-exact with singular");
            assert_eq!(a, c, "overlapped cache tier must be bit-exact too");
        }
        let totals = cache.totals();
        assert!(totals.hits > 0, "skewed traffic must hit the hot set: {totals}");
        assert!(totals.local_rows > 0);
    }

    #[test]
    fn mismatched_client_count_rejected() {
        let spec = rm::rm3().scaled_to_bytes(2 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        let p = make_plan(&spec, &profile, ShardingStrategy::OneShard).unwrap();
        let model = build_model(&spec, 1).unwrap();
        let err = partition_with_clients(model, &p, vec![], vec![]).unwrap_err();
        assert!(matches!(err, PartitionError::PlanMismatch(_)));
    }
}
