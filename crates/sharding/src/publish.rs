//! Publishing sharding plans: serialize/deserialize placement
//! decisions.
//!
//! The production partitioning tool "employs a user-supplied
//! configuration to group embedding tables" (§III-C); this module is
//! that configuration's on-disk form — a plan can be computed once (or
//! hand-edited) and replayed against a republished model.

use crate::plan::{Location, ShardId, ShardingPlan, TablePlacement};
use crate::ShardingStrategy;
use dlrm_model::TableId;

/// Errors from parsing a published plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    /// 1-based line of the failure (0 = file-level problem).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePlanError {}

const HEADER: &str = "dlrm-plan v1";
/// v2 adds optional `hot <table> <row>...` records carrying the
/// hot-row placement layer; emitted only when the plan has one, so v1
/// consumers keep reading v1 documents unchanged.
const HEADER_V2: &str = "dlrm-plan v2";
/// v3 adds migration versioning: an `epoch <n>` record and per-shard
/// `gen <shard> <generation>` records, so a server can reject an
/// assignment carrying a stale-epoch plan. Emitted only when the plan
/// has been through a migration (non-zero epoch or generation), so v1
/// and v2 consumers keep reading pre-migration documents unchanged.
const HEADER_V3: &str = "dlrm-plan v3";

/// Serializes a plan: one `place` record per table, `main` or a
/// comma-separated shard list (order = part order for row-sharding).
/// Plans carrying hot-row sets serialize as format v2, appending one
/// `hot` record per table with a non-empty set (rows ascending).
///
/// # Examples
///
/// ```
/// use dlrm_sharding::{plan, publish, ShardingStrategy};
/// use dlrm_workload::PoolingProfile;
///
/// let spec = dlrm_model::rm::rm3();
/// let profile = PoolingProfile::from_spec(&spec);
/// let p = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(4))?;
/// let text = publish::plan_to_text(&p);
/// assert_eq!(publish::plan_from_text(&text).unwrap(), p);
/// # Ok::<(), dlrm_sharding::PlanError>(())
/// ```
#[must_use]
pub fn plan_to_text(plan: &ShardingPlan) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let versioned = plan.epoch() > 0 || plan.generations().iter().any(|&g| g > 0);
    let header = if versioned {
        HEADER_V3
    } else if plan.has_hot_rows() {
        HEADER_V2
    } else {
        HEADER
    };
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "strategy {}", plan.strategy().label());
    let _ = writeln!(out, "shards {}", plan.num_shards());
    if versioned {
        let _ = writeln!(out, "epoch {}", plan.epoch());
        for (s, &g) in plan.generations().iter().enumerate() {
            if g > 0 {
                let _ = writeln!(out, "gen {s} {g}");
            }
        }
    }
    for p in plan.placements() {
        match &p.location {
            Location::Main => {
                let _ = writeln!(out, "place {} main", p.table.0);
            }
            Location::Shards(shards) => {
                let list = shards
                    .iter()
                    .map(|s| s.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(out, "place {} {list}", p.table.0);
            }
        }
    }
    for p in plan.placements() {
        let rows = plan.hot_rows(p.table);
        if rows.is_empty() {
            continue;
        }
        let list = rows
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "hot {} {list}", p.table.0);
    }
    out
}

/// Parses a strategy label ("singular", "1-shard", "lb-4", …).
fn strategy_from_label(label: &str, line: usize) -> Result<ShardingStrategy, ParsePlanError> {
    let bad = |message: String| ParsePlanError { line, message };
    if label == "singular" {
        return Ok(ShardingStrategy::Singular);
    }
    if label == "1-shard" {
        return Ok(ShardingStrategy::OneShard);
    }
    let (kind, n) = label
        .rsplit_once('-')
        .ok_or_else(|| bad(format!("bad strategy label {label:?}")))?;
    let n: usize = n
        .parse()
        .map_err(|_| bad(format!("bad shard count in {label:?}")))?;
    match kind {
        "cb" => Ok(ShardingStrategy::CapacityBalanced(n)),
        "lb" => Ok(ShardingStrategy::LoadBalanced(n)),
        "nsbp" => Ok(ShardingStrategy::NetSpecificBinPacking(n)),
        "auto" => Ok(ShardingStrategy::Auto(n)),
        "hra" => Ok(ShardingStrategy::HotRowAware(n)),
        other => Err(bad(format!("unknown strategy family {other:?}"))),
    }
}

/// Parses the v1 or v2 plan format (v2 = v1 plus `hot` records).
///
/// # Errors
///
/// [`ParsePlanError`] with the offending line.
pub fn plan_from_text(text: &str) -> Result<ShardingPlan, ParsePlanError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParsePlanError {
        line: 0,
        message: "empty file".into(),
    })?;
    let version = match header.trim() {
        h if h == HEADER => 1,
        h if h == HEADER_V2 => 2,
        h if h == HEADER_V3 => 3,
        _ => {
            return Err(ParsePlanError {
                line: 1,
                message: format!(
                    "expected header {HEADER:?}, {HEADER_V2:?}, or {HEADER_V3:?}, got {header:?}"
                ),
            })
        }
    };
    let mut strategy = None;
    let mut num_shards = None;
    let mut placements: Vec<TablePlacement> = Vec::new();
    let mut hot: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
    let mut epoch: Option<u64> = None;
    let mut gens: std::collections::BTreeMap<usize, u64> = Default::default();
    for (idx, raw) in lines {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let kind = fields.next().expect("non-empty");
        let rest: Vec<&str> = fields.collect();
        let bad = |message: String| ParsePlanError { line, message };
        match kind {
            "strategy" => {
                strategy = Some(strategy_from_label(
                    rest.first().ok_or_else(|| bad("missing label".into()))?,
                    line,
                )?);
            }
            "shards" => {
                num_shards = Some(
                    rest.first()
                        .ok_or_else(|| bad("missing count".into()))?
                        .parse::<usize>()
                        .map_err(|_| bad("bad shard count".into()))?,
                );
            }
            "place" => {
                if rest.len() != 2 {
                    return Err(bad(format!("place needs 2 fields, got {}", rest.len())));
                }
                let table = TableId(
                    rest[0]
                        .parse()
                        .map_err(|_| bad(format!("bad table id {:?}", rest[0])))?,
                );
                if table.0 != placements.len() {
                    return Err(bad(format!(
                        "place records must be in table order; expected {}, got {}",
                        placements.len(),
                        table.0
                    )));
                }
                let location = if rest[1] == "main" {
                    Location::Main
                } else {
                    let shards = rest[1]
                        .split(',')
                        .map(|s| {
                            s.parse::<usize>()
                                .map(ShardId)
                                .map_err(|_| bad(format!("bad shard id {s:?}")))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Location::Shards(shards)
                };
                placements.push(TablePlacement { table, location });
            }
            "epoch" => {
                if version < 3 {
                    return Err(bad("epoch records need the v3 header".into()));
                }
                let value = rest
                    .first()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| bad("bad epoch record".into()))?;
                if epoch.replace(value).is_some() {
                    return Err(bad("duplicate epoch record".into()));
                }
            }
            "gen" => {
                if version < 3 {
                    return Err(bad("gen records need the v3 header".into()));
                }
                if rest.len() != 2 {
                    return Err(bad(format!("gen needs 2 fields, got {}", rest.len())));
                }
                let shard: usize = rest[0]
                    .parse()
                    .map_err(|_| bad(format!("bad shard id {:?}", rest[0])))?;
                let g: u64 = rest[1]
                    .parse()
                    .map_err(|_| bad(format!("bad generation {:?}", rest[1])))?;
                if gens.insert(shard, g).is_some() {
                    return Err(bad(format!("duplicate gen record for shard {shard}")));
                }
            }
            "hot" => {
                if version < 2 {
                    return Err(bad("hot records need the v2 header".into()));
                }
                if rest.len() < 2 {
                    return Err(bad("hot needs a table id and at least one row".into()));
                }
                let table: usize = rest[0]
                    .parse()
                    .map_err(|_| bad(format!("bad table id {:?}", rest[0])))?;
                let rows = rest[1..]
                    .iter()
                    .map(|r| {
                        r.parse::<u64>()
                            .map_err(|_| bad(format!("bad hot row {r:?}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if !rows.windows(2).all(|w| w[0] < w[1]) {
                    return Err(bad(format!(
                        "hot rows for table {table} must be strictly ascending"
                    )));
                }
                if hot.insert(table, rows).is_some() {
                    return Err(bad(format!("duplicate hot record for table {table}")));
                }
            }
            other => return Err(bad(format!("unknown record kind {other:?}"))),
        }
    }
    let strategy = strategy.ok_or(ParsePlanError {
        line: 0,
        message: "missing strategy".into(),
    })?;
    let num_shards = num_shards.ok_or(ParsePlanError {
        line: 0,
        message: "missing shards".into(),
    })?;
    // ShardingPlan::new enforces ordering/range invariants; catch its
    // panics as parse errors by pre-validating ranges here.
    for p in &placements {
        if let Location::Shards(shards) = &p.location {
            if shards.is_empty() {
                return Err(ParsePlanError {
                    line: 0,
                    message: format!("{} has an empty shard list", p.table),
                });
            }
            for s in shards {
                if s.0 >= num_shards {
                    return Err(ParsePlanError {
                        line: 0,
                        message: format!("{} references {s} out of {num_shards}", p.table),
                    });
                }
            }
            let unique: std::collections::BTreeSet<_> = shards.iter().collect();
            if unique.len() != shards.len() {
                return Err(ParsePlanError {
                    line: 0,
                    message: format!("{} lists a shard twice", p.table),
                });
            }
        }
    }
    if let Some((&table, _)) = hot.iter().next_back() {
        if table >= placements.len() {
            return Err(ParsePlanError {
                line: 0,
                message: format!("hot record for table {table} beyond the placements"),
            });
        }
    }
    let mut hot_rows = vec![Vec::new(); placements.len()];
    for (table, rows) in hot {
        hot_rows[table] = rows;
    }
    if let Some((&shard, _)) = gens.iter().next_back() {
        if shard >= num_shards {
            return Err(ParsePlanError {
                line: 0,
                message: format!("gen record for shard {shard} beyond the {num_shards} shards"),
            });
        }
    }
    let mut generations = vec![0u64; num_shards];
    for (shard, g) in gens {
        generations[shard] = g;
    }
    Ok(ShardingPlan::new(strategy, num_shards, placements)
        .with_hot_rows(hot_rows)
        .with_versioning(epoch.unwrap_or(0), generations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan as make_plan;
    use dlrm_model::rm;
    use dlrm_workload::PoolingProfile;

    #[test]
    fn round_trips_every_rm1_configuration() {
        let spec = rm::rm1();
        let profile = PoolingProfile::from_spec(&spec);
        for strategy in ShardingStrategy::full_sweep() {
            let p = make_plan(&spec, &profile, strategy).unwrap();
            let text = plan_to_text(&p);
            let back = plan_from_text(&text).unwrap();
            assert_eq!(back, p, "{strategy}");
        }
    }

    #[test]
    fn round_trips_row_sharded_rm3() {
        let spec = rm::rm3();
        let profile = PoolingProfile::from_spec(&spec);
        let p = make_plan(
            &spec,
            &profile,
            ShardingStrategy::NetSpecificBinPacking(8),
        )
        .unwrap();
        let back = plan_from_text(&plan_to_text(&p)).unwrap();
        assert_eq!(back, p);
        assert!(back.placement(TableId(0)).is_row_sharded());
    }

    #[test]
    fn strategy_labels_round_trip() {
        for s in ShardingStrategy::full_sweep() {
            assert_eq!(strategy_from_label(&s.label(), 1).unwrap(), s);
        }
        assert_eq!(
            strategy_from_label("auto-8", 1).unwrap(),
            ShardingStrategy::Auto(8)
        );
    }

    #[test]
    fn hot_row_plans_round_trip_as_v2() {
        use crate::{plan_with_stats, HotRowConfig};
        use dlrm_workload::RowStats;
        let spec = rm::rm1().scaled_to_bytes(32 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        let stats = RowStats::for_spec(&spec, 4_000, 1.2, 17);
        let p = plan_with_stats(
            &spec,
            &profile,
            ShardingStrategy::HotRowAware(2),
            &stats,
            &HotRowConfig::default(),
        )
        .unwrap();
        assert!(p.has_hot_rows());
        let text = plan_to_text(&p);
        assert!(text.starts_with("dlrm-plan v2\n"), "{text}");
        assert!(text.contains("strategy hra-2"), "{text}");
        assert!(text.contains("\nhot "), "{text}");
        let back = plan_from_text(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn plans_without_hot_rows_stay_v1() {
        let spec = rm::rm3();
        let profile = PoolingProfile::from_spec(&spec);
        let p = make_plan(&spec, &profile, ShardingStrategy::CapacityBalanced(2)).unwrap();
        assert!(plan_to_text(&p).starts_with("dlrm-plan v1\n"));
    }

    #[test]
    fn migrated_plans_round_trip_as_v3() {
        let spec = rm::rm1();
        let profile = PoolingProfile::from_spec(&spec);
        let old = make_plan(&spec, &profile, ShardingStrategy::CapacityBalanced(2)).unwrap();
        let new = make_plan(&spec, &profile, ShardingStrategy::LoadBalanced(2))
            .unwrap()
            .succeed(&old);
        assert_eq!(new.epoch(), 1);
        let text = plan_to_text(&new);
        assert!(text.starts_with("dlrm-plan v3\n"), "{text}");
        assert!(text.contains("\nepoch 1\n"), "{text}");
        let back = plan_from_text(&text).unwrap();
        assert_eq!(back, new);
        assert_eq!(back.epoch(), 1);
        assert_eq!(back.generations(), new.generations());
    }

    #[test]
    fn v3_carries_hot_rows_and_versioning_together() {
        use crate::{plan_with_stats, HotRowConfig};
        use dlrm_workload::RowStats;
        let spec = rm::rm1().scaled_to_bytes(32 << 20);
        let profile = PoolingProfile::from_spec(&spec);
        let old = make_plan(&spec, &profile, ShardingStrategy::CapacityBalanced(2)).unwrap();
        let stats = RowStats::for_spec(&spec, 4_000, 1.2, 17);
        let p = plan_with_stats(
            &spec,
            &profile,
            ShardingStrategy::HotRowAware(2),
            &stats,
            &HotRowConfig::default(),
        )
        .unwrap()
        .succeed(&old);
        assert!(p.has_hot_rows());
        let text = plan_to_text(&p);
        assert!(text.starts_with("dlrm-plan v3\n"), "{text}");
        assert!(text.contains("\nhot "), "{text}");
        assert_eq!(plan_from_text(&text).unwrap(), p);
    }

    #[test]
    fn epoch_and_gen_records_rejected_under_old_headers() {
        for header in ["dlrm-plan v1", "dlrm-plan v2"] {
            let text = format!("{header}\nstrategy 1-shard\nshards 1\nepoch 1\nplace 0 0\n");
            let err = plan_from_text(&text).unwrap_err();
            assert!(err.message.contains("v3"), "{err}");
            let text = format!("{header}\nstrategy 1-shard\nshards 1\ngen 0 1\nplace 0 0\n");
            let err = plan_from_text(&text).unwrap_err();
            assert!(err.message.contains("v3"), "{err}");
        }
    }

    #[test]
    fn gen_record_beyond_shards_rejected() {
        let text = "dlrm-plan v3\nstrategy 1-shard\nshards 1\nepoch 1\ngen 3 1\nplace 0 0\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("beyond"), "{err}");
    }

    #[test]
    fn hot_records_rejected_under_v1_header() {
        let text = "dlrm-plan v1\nstrategy 1-shard\nshards 1\nplace 0 0\nhot 0 1 2\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("v2"), "{err}");
    }

    #[test]
    fn unsorted_hot_rows_rejected() {
        let text = "dlrm-plan v2\nstrategy 1-shard\nshards 1\nplace 0 0\nhot 0 5 3\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("ascending"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_shard() {
        let text = "dlrm-plan v1\nstrategy 1-shard\nshards 1\nplace 0 3\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("out of"), "{err}");
    }

    #[test]
    fn rejects_out_of_order_places() {
        let text = "dlrm-plan v1\nstrategy 1-shard\nshards 1\nplace 1 0\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("table order"), "{err}");
    }
}
