//! Publishing sharding plans: serialize/deserialize placement
//! decisions.
//!
//! The production partitioning tool "employs a user-supplied
//! configuration to group embedding tables" (§III-C); this module is
//! that configuration's on-disk form — a plan can be computed once (or
//! hand-edited) and replayed against a republished model.

use crate::plan::{Location, ShardId, ShardingPlan, TablePlacement};
use crate::ShardingStrategy;
use dlrm_model::TableId;

/// Errors from parsing a published plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    /// 1-based line of the failure (0 = file-level problem).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePlanError {}

const HEADER: &str = "dlrm-plan v1";

/// Serializes a plan: one `place` record per table, `main` or a
/// comma-separated shard list (order = part order for row-sharding).
///
/// # Examples
///
/// ```
/// use dlrm_sharding::{plan, publish, ShardingStrategy};
/// use dlrm_workload::PoolingProfile;
///
/// let spec = dlrm_model::rm::rm3();
/// let profile = PoolingProfile::from_spec(&spec);
/// let p = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(4))?;
/// let text = publish::plan_to_text(&p);
/// assert_eq!(publish::plan_from_text(&text).unwrap(), p);
/// # Ok::<(), dlrm_sharding::PlanError>(())
/// ```
#[must_use]
pub fn plan_to_text(plan: &ShardingPlan) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "strategy {}", plan.strategy().label());
    let _ = writeln!(out, "shards {}", plan.num_shards());
    for p in plan.placements() {
        match &p.location {
            Location::Main => {
                let _ = writeln!(out, "place {} main", p.table.0);
            }
            Location::Shards(shards) => {
                let list = shards
                    .iter()
                    .map(|s| s.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(out, "place {} {list}", p.table.0);
            }
        }
    }
    out
}

/// Parses a strategy label ("singular", "1-shard", "lb-4", …).
fn strategy_from_label(label: &str, line: usize) -> Result<ShardingStrategy, ParsePlanError> {
    let bad = |message: String| ParsePlanError { line, message };
    if label == "singular" {
        return Ok(ShardingStrategy::Singular);
    }
    if label == "1-shard" {
        return Ok(ShardingStrategy::OneShard);
    }
    let (kind, n) = label
        .rsplit_once('-')
        .ok_or_else(|| bad(format!("bad strategy label {label:?}")))?;
    let n: usize = n
        .parse()
        .map_err(|_| bad(format!("bad shard count in {label:?}")))?;
    match kind {
        "cb" => Ok(ShardingStrategy::CapacityBalanced(n)),
        "lb" => Ok(ShardingStrategy::LoadBalanced(n)),
        "nsbp" => Ok(ShardingStrategy::NetSpecificBinPacking(n)),
        "auto" => Ok(ShardingStrategy::Auto(n)),
        other => Err(bad(format!("unknown strategy family {other:?}"))),
    }
}

/// Parses the v1 plan format.
///
/// # Errors
///
/// [`ParsePlanError`] with the offending line.
pub fn plan_from_text(text: &str) -> Result<ShardingPlan, ParsePlanError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParsePlanError {
        line: 0,
        message: "empty file".into(),
    })?;
    if header.trim() != HEADER {
        return Err(ParsePlanError {
            line: 1,
            message: format!("expected header {HEADER:?}, got {header:?}"),
        });
    }
    let mut strategy = None;
    let mut num_shards = None;
    let mut placements: Vec<TablePlacement> = Vec::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let kind = fields.next().expect("non-empty");
        let rest: Vec<&str> = fields.collect();
        let bad = |message: String| ParsePlanError { line, message };
        match kind {
            "strategy" => {
                strategy = Some(strategy_from_label(
                    rest.first().ok_or_else(|| bad("missing label".into()))?,
                    line,
                )?);
            }
            "shards" => {
                num_shards = Some(
                    rest.first()
                        .ok_or_else(|| bad("missing count".into()))?
                        .parse::<usize>()
                        .map_err(|_| bad("bad shard count".into()))?,
                );
            }
            "place" => {
                if rest.len() != 2 {
                    return Err(bad(format!("place needs 2 fields, got {}", rest.len())));
                }
                let table = TableId(
                    rest[0]
                        .parse()
                        .map_err(|_| bad(format!("bad table id {:?}", rest[0])))?,
                );
                if table.0 != placements.len() {
                    return Err(bad(format!(
                        "place records must be in table order; expected {}, got {}",
                        placements.len(),
                        table.0
                    )));
                }
                let location = if rest[1] == "main" {
                    Location::Main
                } else {
                    let shards = rest[1]
                        .split(',')
                        .map(|s| {
                            s.parse::<usize>()
                                .map(ShardId)
                                .map_err(|_| bad(format!("bad shard id {s:?}")))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Location::Shards(shards)
                };
                placements.push(TablePlacement { table, location });
            }
            other => return Err(bad(format!("unknown record kind {other:?}"))),
        }
    }
    let strategy = strategy.ok_or(ParsePlanError {
        line: 0,
        message: "missing strategy".into(),
    })?;
    let num_shards = num_shards.ok_or(ParsePlanError {
        line: 0,
        message: "missing shards".into(),
    })?;
    // ShardingPlan::new enforces ordering/range invariants; catch its
    // panics as parse errors by pre-validating ranges here.
    for p in &placements {
        if let Location::Shards(shards) = &p.location {
            if shards.is_empty() {
                return Err(ParsePlanError {
                    line: 0,
                    message: format!("{} has an empty shard list", p.table),
                });
            }
            for s in shards {
                if s.0 >= num_shards {
                    return Err(ParsePlanError {
                        line: 0,
                        message: format!("{} references {s} out of {num_shards}", p.table),
                    });
                }
            }
            let unique: std::collections::BTreeSet<_> = shards.iter().collect();
            if unique.len() != shards.len() {
                return Err(ParsePlanError {
                    line: 0,
                    message: format!("{} lists a shard twice", p.table),
                });
            }
        }
    }
    Ok(ShardingPlan::new(strategy, num_shards, placements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan as make_plan;
    use dlrm_model::rm;
    use dlrm_workload::PoolingProfile;

    #[test]
    fn round_trips_every_rm1_configuration() {
        let spec = rm::rm1();
        let profile = PoolingProfile::from_spec(&spec);
        for strategy in ShardingStrategy::full_sweep() {
            let p = make_plan(&spec, &profile, strategy).unwrap();
            let text = plan_to_text(&p);
            let back = plan_from_text(&text).unwrap();
            assert_eq!(back, p, "{strategy}");
        }
    }

    #[test]
    fn round_trips_row_sharded_rm3() {
        let spec = rm::rm3();
        let profile = PoolingProfile::from_spec(&spec);
        let p = make_plan(
            &spec,
            &profile,
            ShardingStrategy::NetSpecificBinPacking(8),
        )
        .unwrap();
        let back = plan_from_text(&plan_to_text(&p)).unwrap();
        assert_eq!(back, p);
        assert!(back.placement(TableId(0)).is_row_sharded());
    }

    #[test]
    fn strategy_labels_round_trip() {
        for s in ShardingStrategy::full_sweep() {
            assert_eq!(strategy_from_label(&s.label(), 1).unwrap(), s);
        }
        assert_eq!(
            strategy_from_label("auto-8", 1).unwrap(),
            ShardingStrategy::Auto(8)
        );
    }

    #[test]
    fn rejects_out_of_range_shard() {
        let text = "dlrm-plan v1\nstrategy 1-shard\nshards 1\nplace 0 3\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("out of"), "{err}");
    }

    #[test]
    fn rejects_out_of_order_places() {
        let text = "dlrm-plan v1\nstrategy 1-shard\nshards 1\nplace 1 0\n";
        let err = plan_from_text(text).unwrap_err();
        assert!(err.message.contains("table order"), "{err}");
    }
}
