//! The asynchronous RPC operator and its wire types.
//!
//! In the paper's system, partitioned subnets are "replaced by custom
//! remote-procedure-call (RPC) operators that call remote shards"
//! (§III-A1); each RPC carries the sparse feature ids destined for its
//! shard and receives the pooled embedding vectors back. This module
//! defines those request/response types, the client abstraction (so the
//! same operator runs against an in-process shard, a thread-backed
//! shard, or the simulator's cost model), and the [`SparseRpc`] graph
//! operator itself.

use crate::plan::ShardId;
use dlrm_model::graph::{
    AsyncOperator, Blob, GraphError, Operator, PendingOp, SparseInput, Workspace,
};
use dlrm_model::{NetId, OpGroup, TableId};
use dlrm_tensor::Matrix;
use std::sync::Arc;

/// The lookups destined for one table (or one row-partition of a table)
/// on one shard. Indices are already *local* to the shard: for a table
/// row-sharded `parts` ways, the caller keeps `idx % parts == part` and
/// sends `idx / parts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSlice {
    /// The (global) table this slice belongs to.
    pub table: TableId,
    /// Local row indices.
    pub indices: Vec<u64>,
    /// Per-batch-element index counts.
    pub lengths: Vec<u32>,
}

/// One RPC request to a sparse shard: all table slices of one net for
/// one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest {
    /// The net issuing the request.
    pub net: NetId,
    /// Per-table lookups, in table-id order.
    pub slices: Vec<TableSlice>,
}

impl ShardRequest {
    /// Total lookups across all slices (drives serialization cost).
    #[must_use]
    pub fn total_lookups(&self) -> usize {
        self.slices.iter().map(|s| s.indices.len()).sum()
    }

    /// Approximate request payload in bytes: 8 per index, 4 per length.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.slices
            .iter()
            .map(|s| s.indices.len() * 8 + s.lengths.len() * 4)
            .sum()
    }
}

/// The response: pooled embeddings per requested table, in request
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResponse {
    /// `(table, batch × dim pooled matrix)` pairs.
    pub pooled: Vec<(TableId, Matrix)>,
}

impl ShardResponse {
    /// Approximate response payload in bytes (4 per f32).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.pooled.iter().map(|(_, m)| m.len() * 4).sum()
    }
}

/// A connection to one sparse shard.
///
/// Implementations: [`crate::InProcessClient`] (direct call, used for
/// correctness verification) and the serving crate's thread-backed
/// client (real concurrency).
pub trait SparseShardClient: std::fmt::Debug + Send + Sync {
    /// The shard this client reaches.
    fn shard_id(&self) -> ShardId;

    /// Executes one request.
    ///
    /// # Errors
    ///
    /// A human-readable message when the shard rejects the request
    /// (unknown table, out-of-range index).
    fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, String>;

    /// Starts one request without waiting for the reply, returning a
    /// completion handle — the transport half of the asynchronous RPC
    /// operators (§IV-A). The default implementation executes
    /// synchronously and wraps the finished result, which is correct
    /// (though unoverlapped) for direct-call clients; real transports
    /// (the thread-backed pool) override it to send now and receive at
    /// [`RpcCompletion::wait`].
    ///
    /// # Errors
    ///
    /// A human-readable message when the request cannot be sent at all
    /// (transport down). Shard-side failures may instead surface from
    /// [`RpcCompletion::wait`].
    fn begin_execute(&self, request: &ShardRequest) -> Result<Box<dyn RpcCompletion>, String> {
        Ok(Box::new(ReadyResponse(self.execute(request))))
    }
}

/// A shard RPC that has been sent but whose response has not been
/// consumed yet. Dropping a completion abandons the call: the shard
/// still executes it, the reply is discarded.
pub trait RpcCompletion: Send {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// A human-readable message when the shard rejected the request or
    /// the transport died while the call was in flight.
    fn wait(self: Box<Self>) -> Result<ShardResponse, String>;
}

/// An [`RpcCompletion`] that already holds its result — what the default
/// synchronous [`SparseShardClient::begin_execute`] returns.
pub struct ReadyResponse(pub Result<ShardResponse, String>);

impl RpcCompletion for ReadyResponse {
    fn wait(self: Box<Self>) -> Result<ShardResponse, String> {
        self.0
    }
}

/// One table fetched by a [`SparseRpc`] operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcFetch {
    /// The table.
    pub table: TableId,
    /// Blob holding the table's sparse input on the main shard.
    pub input_blob: String,
    /// Blob to write the pooled (or partial-pooled) result to.
    pub output_blob: String,
    /// Total row-partitions of this table (1 = whole table here).
    pub parts: usize,
    /// Which partition this shard serves.
    pub part: usize,
}

/// The RPC operator inserted by the partitioner: gathers this shard's
/// table slices from the workspace, calls the shard, and writes the
/// pooled outputs back.
///
/// For row-sharded tables it performs the modulus routing of §III-A1:
/// only indices with `idx % parts == part` are sent, translated to local
/// rows `idx / parts`.
#[derive(Debug)]
pub struct SparseRpc {
    name: String,
    net: NetId,
    client: Arc<dyn SparseShardClient>,
    fetches: Vec<RpcFetch>,
}

impl SparseRpc {
    /// Creates an RPC operator.
    ///
    /// # Panics
    ///
    /// Panics if `fetches` is empty (an RPC to a shard serving nothing
    /// indicates a partitioner bug).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        net: NetId,
        client: Arc<dyn SparseShardClient>,
        fetches: Vec<RpcFetch>,
    ) -> Self {
        assert!(!fetches.is_empty(), "RPC op must fetch at least one table");
        Self {
            name: name.into(),
            net,
            client,
            fetches,
        }
    }

    /// The shard this operator calls.
    #[must_use]
    pub fn shard_id(&self) -> ShardId {
        self.client.shard_id()
    }

    /// The tables fetched.
    #[must_use]
    pub fn fetches(&self) -> &[RpcFetch] {
        &self.fetches
    }

    /// Builds the wire request from the workspace (exposed for tests and
    /// for the serving layer's cost accounting).
    ///
    /// # Errors
    ///
    /// Propagates missing/mistyped sparse input blobs.
    pub fn build_request(&self, ws: &Workspace) -> Result<ShardRequest, GraphError> {
        let mut slices = Vec::with_capacity(self.fetches.len());
        for f in &self.fetches {
            let sparse = ws.sparse(&f.input_blob, &self.name)?;
            slices.push(route_slice(f, sparse));
        }
        Ok(ShardRequest {
            net: self.net,
            slices,
        })
    }

    /// Issue half of the operator: builds the request from the
    /// workspace and sends it without waiting for the reply.
    ///
    /// # Errors
    ///
    /// Propagates missing/mistyped input blobs and send-time transport
    /// failures.
    pub fn begin(&self, ws: &Workspace) -> Result<PendingSparseRpc, GraphError> {
        let request = self.build_request(ws)?;
        let completion =
            self.client
                .begin_execute(&request)
                .map_err(|message| GraphError::OpFailed {
                    op: self.name.clone(),
                    message,
                })?;
        Ok(PendingSparseRpc {
            op: self.name.clone(),
            fetches: self.fetches.clone(),
            completion,
        })
    }
}

/// A [`SparseRpc`] whose request is in flight: the collect half waits
/// for the shard's reply, validates it against the fetch list, and
/// writes the pooled output blobs.
pub struct PendingSparseRpc {
    op: String,
    fetches: Vec<RpcFetch>,
    completion: Box<dyn RpcCompletion>,
}

impl PendingSparseRpc {
    /// Waits for the response and writes the pooled blobs.
    ///
    /// # Errors
    ///
    /// Propagates shard/transport failures and malformed responses
    /// (wrong table count or order).
    pub fn collect(self, ws: &mut Workspace) -> Result<(), GraphError> {
        let response = self
            .completion
            .wait()
            .map_err(|message| GraphError::OpFailed {
                op: self.op.clone(),
                message,
            })?;
        if response.pooled.len() != self.fetches.len() {
            return Err(GraphError::OpFailed {
                op: self.op.clone(),
                message: format!(
                    "shard returned {} tables, expected {}",
                    response.pooled.len(),
                    self.fetches.len()
                ),
            });
        }
        for (f, (table, pooled)) in self.fetches.iter().zip(response.pooled) {
            if table != f.table {
                return Err(GraphError::OpFailed {
                    op: self.op.clone(),
                    message: format!("shard answered {table}, expected {}", f.table),
                });
            }
            ws.put(f.output_blob.clone(), Blob::Dense(pooled));
        }
        Ok(())
    }
}

impl PendingOp for PendingSparseRpc {
    fn collect(self: Box<Self>, ws: &mut Workspace) -> Result<(), GraphError> {
        PendingSparseRpc::collect(*self, ws)
    }
}

impl AsyncOperator for SparseRpc {
    fn issue(&self, ws: &Workspace) -> Result<Box<dyn PendingOp>, GraphError> {
        Ok(Box::new(self.begin(ws)?))
    }
}

/// Applies modulus routing to one sparse input.
fn route_slice(fetch: &RpcFetch, sparse: &SparseInput) -> TableSlice {
    if fetch.parts == 1 {
        return TableSlice {
            table: fetch.table,
            indices: sparse.indices.clone(),
            lengths: sparse.lengths.clone(),
        };
    }
    let parts = fetch.parts as u64;
    let part = fetch.part as u64;
    let mut indices = Vec::new();
    let mut lengths = Vec::with_capacity(sparse.lengths.len());
    let mut cursor = 0usize;
    for &len in &sparse.lengths {
        let mut kept = 0u32;
        for &idx in &sparse.indices[cursor..cursor + len as usize] {
            if idx % parts == part {
                indices.push(idx / parts);
                kept += 1;
            }
        }
        lengths.push(kept);
        cursor += len as usize;
    }
    TableSlice {
        table: fetch.table,
        indices,
        lengths,
    }
}

impl Operator for SparseRpc {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::Sls
    }
    fn inputs(&self) -> Vec<String> {
        self.fetches.iter().map(|f| f.input_blob.clone()).collect()
    }
    fn outputs(&self) -> Vec<String> {
        self.fetches.iter().map(|f| f.output_blob.clone()).collect()
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        // Sequential form = issue immediately followed by collect.
        self.begin(ws)?.collect(ws)
    }
    fn as_async(&self) -> Option<&dyn AsyncOperator> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_whole_table_is_identity() {
        let f = RpcFetch {
            table: TableId(0),
            input_blob: "in".into(),
            output_blob: "out".into(),
            parts: 1,
            part: 0,
        };
        let s = SparseInput::new(vec![5, 9, 2], vec![2, 1]);
        let slice = route_slice(&f, &s);
        assert_eq!(slice.indices, vec![5, 9, 2]);
        assert_eq!(slice.lengths, vec![2, 1]);
    }

    #[test]
    fn route_modulus_filters_and_localizes() {
        let f = RpcFetch {
            table: TableId(0),
            input_blob: "in".into(),
            output_blob: "out".into(),
            parts: 2,
            part: 1,
        };
        // Element 0: indices {0,1,2}; element 1: {3,4}.
        let s = SparseInput::new(vec![0, 1, 2, 3, 4], vec![3, 2]);
        let slice = route_slice(&f, &s);
        // Odd indices go to part 1, local = idx/2.
        assert_eq!(slice.indices, vec![0, 1]); // global 1 → 0, global 3 → 1
        assert_eq!(slice.lengths, vec![1, 1]);
    }

    #[test]
    fn route_partition_is_a_partition() {
        // Every index lands on exactly one part, and locals are in range.
        let s = SparseInput::new((0..100).collect(), vec![50, 50]);
        let parts = 3;
        let mut total = 0;
        for part in 0..parts {
            let f = RpcFetch {
                table: TableId(0),
                input_blob: "in".into(),
                output_blob: "out".into(),
                parts,
                part,
            };
            let slice = route_slice(&f, &s);
            total += slice.indices.len();
            let max_local = (100 / parts as u64) + 1;
            assert!(slice.indices.iter().all(|&i| i <= max_local));
        }
        assert_eq!(total, 100);
    }

    /// A client that pools nothing: answers every slice with a 1×1 zero
    /// matrix for its table.
    #[derive(Debug)]
    struct ZeroClient;

    impl SparseShardClient for ZeroClient {
        fn shard_id(&self) -> ShardId {
            ShardId(0)
        }
        fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, String> {
            Ok(ShardResponse {
                pooled: request
                    .slices
                    .iter()
                    .map(|s| (s.table, Matrix::zeros(1, 1)))
                    .collect(),
            })
        }
    }

    #[test]
    fn default_begin_execute_defers_the_finished_result() {
        let req = ShardRequest {
            net: NetId(0),
            slices: vec![TableSlice {
                table: TableId(3),
                indices: vec![0],
                lengths: vec![1],
            }],
        };
        let completion = ZeroClient.begin_execute(&req).unwrap();
        let response = completion.wait().unwrap();
        assert_eq!(response.pooled.len(), 1);
        assert_eq!(response.pooled[0].0, TableId(3));
    }

    #[test]
    fn issue_collect_round_trip_writes_outputs() {
        let op = SparseRpc::new(
            "rpc",
            NetId(0),
            Arc::new(ZeroClient),
            vec![RpcFetch {
                table: TableId(0),
                input_blob: "in".into(),
                output_blob: "out".into(),
                parts: 1,
                part: 0,
            }],
        );
        let mut ws = Workspace::new();
        ws.put("in", Blob::Sparse(SparseInput::new(vec![1], vec![1])));
        let pending = op.begin(&ws).unwrap();
        pending.collect(&mut ws).unwrap();
        assert!(ws.dense("out", "t").is_ok());
        assert!(
            Operator::as_async(&op).is_some(),
            "SparseRpc must advertise its async form to the scheduler"
        );
    }

    #[test]
    fn payload_bytes_accounting() {
        let req = ShardRequest {
            net: NetId(0),
            slices: vec![TableSlice {
                table: TableId(0),
                indices: vec![1, 2, 3],
                lengths: vec![3],
            }],
        };
        assert_eq!(req.total_lookups(), 3);
        assert_eq!(req.payload_bytes(), 3 * 8 + 4);
    }
}
