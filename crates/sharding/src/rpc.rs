//! The asynchronous RPC operator and its wire types.
//!
//! In the paper's system, partitioned subnets are "replaced by custom
//! remote-procedure-call (RPC) operators that call remote shards"
//! (§III-A1); each RPC carries the sparse feature ids destined for its
//! shard and receives the pooled embedding vectors back. This module
//! defines those request/response types, the client abstraction (so the
//! same operator runs against an in-process shard, a thread-backed
//! shard, or the simulator's cost model), the typed [`RpcError`]
//! taxonomy, the per-RPC [`RpcPolicy`] (deadline, capped-backoff
//! retries, tail hedging, degraded fallback), and the [`SparseRpc`]
//! graph operator itself.

use crate::cache::HotRowCache;
use crate::plan::ShardId;
use dlrm_model::graph::{
    AsyncOperator, Blob, GraphError, Operator, PendingOp, RpcAttempt, RpcAttemptKind, RpcOutcome,
    SparseInput, Workspace,
};
use dlrm_model::{NetId, OpGroup, TableId};
use dlrm_tensor::Matrix;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a shard RPC failed — the typed taxonomy the whole transport
/// stack speaks (replacing stringly errors). Retry policy hangs off the
/// classification: [`RpcError::is_retryable`] is `true` for everything
/// except [`RpcError::ShardFault`], which is a deterministic
/// application-level rejection that would fail identically on any
/// replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The reply did not arrive within the attempt deadline.
    Timeout {
        /// The shard that was called.
        shard: ShardId,
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// The transport could not deliver the request or lost the reply
    /// (worker down, connection dropped, reply channel closed).
    Transport {
        /// The shard that was called.
        shard: ShardId,
        /// Human-readable transport detail.
        message: String,
    },
    /// The shard rejected the request (unknown table, out-of-range
    /// index): deterministic, *not* retryable.
    ShardFault {
        /// The shard that rejected the request.
        shard: ShardId,
        /// The rejection message.
        message: String,
    },
    /// The shard worker panicked while serving the request. The service
    /// is stateless (§III-A1), so a retry — on this or another replica —
    /// is safe.
    Poisoned {
        /// The shard whose worker panicked.
        shard: ShardId,
        /// The panic payload, stringified.
        message: String,
    },
}

impl RpcError {
    /// The shard the failing call addressed.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        match *self {
            RpcError::Timeout { shard, .. }
            | RpcError::Transport { shard, .. }
            | RpcError::ShardFault { shard, .. }
            | RpcError::Poisoned { shard, .. } => shard,
        }
    }

    /// Whether retrying (possibly on another replica) can succeed.
    /// Timeouts, transport losses and panics are environmental;
    /// shard faults are deterministic rejections.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        !matches!(self, RpcError::ShardFault { .. })
    }

    /// Stable short classification, used as the failure-by-cause key in
    /// serving reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RpcError::Timeout { .. } => "timeout",
            RpcError::Transport { .. } => "transport",
            RpcError::ShardFault { .. } => "shard-fault",
            RpcError::Poisoned { .. } => "poisoned",
        }
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout { shard, waited } => {
                write!(f, "timeout on {shard}: no reply within {waited:?}")
            }
            RpcError::Transport { shard, message } => {
                write!(f, "transport error on {shard}: {message}")
            }
            RpcError::ShardFault { shard, message } => {
                write!(f, "shard-fault on {shard}: {message}")
            }
            RpcError::Poisoned { shard, message } => {
                write!(f, "poisoned on {shard}: worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RpcError {}

/// The lookups destined for one table (or one row-partition of a table)
/// on one shard. Indices are already *local* to the shard: for a table
/// row-sharded `parts` ways, the caller keeps `idx % parts == part` and
/// sends `idx / parts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSlice {
    /// The (global) table this slice belongs to.
    pub table: TableId,
    /// Local row indices.
    pub indices: Vec<u64>,
    /// Per-batch-element index counts.
    pub lengths: Vec<u32>,
}

/// One RPC request to a sparse shard: all table slices of one net for
/// one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest {
    /// The net issuing the request.
    pub net: NetId,
    /// Per-table lookups, in table-id order.
    pub slices: Vec<TableSlice>,
}

impl ShardRequest {
    /// Total lookups across all slices (drives serialization cost).
    #[must_use]
    pub fn total_lookups(&self) -> usize {
        self.slices.iter().map(|s| s.indices.len()).sum()
    }

    /// Approximate request payload in bytes: 8 per index, 4 per length.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.slices
            .iter()
            .map(|s| s.indices.len() * 8 + s.lengths.len() * 4)
            .sum()
    }
}

/// The response: pooled embeddings per requested table, in request
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResponse {
    /// `(table, batch × dim pooled matrix)` pairs.
    pub pooled: Vec<(TableId, Matrix)>,
}

impl ShardResponse {
    /// Approximate response payload in bytes (4 per f32).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.pooled.iter().map(|(_, m)| m.len() * 4).sum()
    }
}

/// A connection to one sparse shard.
///
/// Implementations: [`crate::InProcessClient`] (direct call, used for
/// correctness verification) and the serving crate's thread-backed
/// client (real concurrency) and replicated client (failover across a
/// replica set).
pub trait SparseShardClient: std::fmt::Debug + Send + Sync {
    /// The shard this client reaches.
    fn shard_id(&self) -> ShardId;

    /// Executes one request.
    ///
    /// # Errors
    ///
    /// A typed [`RpcError`] when the shard rejects the request or the
    /// transport fails.
    fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, RpcError>;

    /// Starts one request without waiting for the reply, returning a
    /// completion handle — the transport half of the asynchronous RPC
    /// operators (§IV-A). The default implementation executes
    /// synchronously and wraps the finished result, which is correct
    /// (though unoverlapped) for direct-call clients; real transports
    /// (the thread-backed pool) override it to send now and receive at
    /// [`RpcCompletion::wait`].
    ///
    /// # Errors
    ///
    /// A typed [`RpcError`] when the request cannot be sent at all
    /// (transport down). Shard-side failures may instead surface from
    /// [`RpcCompletion::wait`].
    fn begin_execute(&self, request: &ShardRequest) -> Result<Box<dyn RpcCompletion>, RpcError> {
        Ok(Box::new(ReadyResponse(self.execute(request))))
    }
}

/// What a bounded wait on an [`RpcCompletion`] produced: either the
/// settled call, or the still-pending completion handed back so the
/// caller can keep waiting (or race it against a hedge).
pub enum WaitOutcome {
    /// The call settled (reply or error).
    Ready(Result<ShardResponse, RpcError>),
    /// The deadline passed first; the completion is returned untouched.
    Pending(Box<dyn RpcCompletion>),
}

/// A shard RPC that has been sent but whose response has not been
/// consumed yet. Dropping a completion abandons the call: the shard
/// still executes it, the reply is discarded.
pub trait RpcCompletion: Send {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// A typed [`RpcError`] when the shard rejected the request or the
    /// transport died while the call was in flight.
    fn wait(self: Box<Self>) -> Result<ShardResponse, RpcError>;

    /// Blocks until the response arrives or `deadline` passes,
    /// whichever happens first. The default implementation ignores the
    /// deadline and waits — correct for completions that already hold
    /// their result; real transports override it.
    fn wait_deadline(self: Box<Self>, _deadline: Instant) -> WaitOutcome {
        WaitOutcome::Ready(self.wait())
    }

    /// Notifies the transport that the caller is giving up on this call
    /// because its deadline passed (as opposed to dropping a losing
    /// hedge whose replica is healthy). Replica-aware transports use
    /// this to debit the replica's health. Default: plain drop.
    fn abandon_timed_out(self: Box<Self>) {}
}

/// An [`RpcCompletion`] that already holds its result — what the default
/// synchronous [`SparseShardClient::begin_execute`] returns.
pub struct ReadyResponse(pub Result<ShardResponse, RpcError>);

impl RpcCompletion for ReadyResponse {
    fn wait(self: Box<Self>) -> Result<ShardResponse, RpcError> {
        self.0
    }
}

/// Per-RPC fault-tolerance policy: attempt deadline, retry budget with
/// capped exponential backoff, straggler hedging, and degraded
/// fallback. The default is the pre-fault-tolerance behavior: one
/// attempt, no deadline, fail hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcPolicy {
    /// Per-attempt reply deadline (`None` = wait forever).
    pub attempt_timeout: Option<Duration>,
    /// Total transmission budget (primary + retries + hedges), ≥ 1.
    pub max_attempts: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Issue a duplicate attempt if the primary has not settled within
    /// this delay (first reply wins). `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// When every attempt is exhausted on a retryable error, substitute
    /// zero embeddings for this RPC's outputs and mark the result
    /// degraded instead of failing the request.
    pub degraded_fallback: bool,
}

impl Default for RpcPolicy {
    fn default() -> Self {
        Self {
            attempt_timeout: None,
            max_attempts: 1,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(20),
            hedge_after: None,
            degraded_fallback: false,
        }
    }
}

impl RpcPolicy {
    /// A production-shaped policy: 3 attempts under a 1s per-attempt
    /// deadline with capped backoff and degraded fallback, no hedging.
    #[must_use]
    pub fn resilient() -> Self {
        Self {
            attempt_timeout: Some(Duration::from_secs(1)),
            max_attempts: 3,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(20),
            hedge_after: None,
            degraded_fallback: true,
        }
    }

    /// Derives the hedge delay from an observed p99 round-trip (the
    /// paper's tail-at-scale recipe: duplicate only the straggler tail).
    /// Clamped below by 100µs so a cold/zero estimate cannot hedge
    /// every call.
    #[must_use]
    pub fn with_hedge_from_p99_ms(mut self, p99_ms: f64) -> Self {
        let us = (p99_ms * 1e3).max(100.0);
        self.hedge_after = Some(Duration::from_micros(us as u64));
        self
    }

    /// Backoff before retry number `retry` (1-based): base × 2^(retry−1),
    /// capped.
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(16);
        let raw = self.backoff_base.saturating_mul(1u32 << exp);
        raw.min(self.backoff_cap)
    }
}

/// One table fetched by a [`SparseRpc`] operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcFetch {
    /// The table.
    pub table: TableId,
    /// Blob holding the table's sparse input on the main shard.
    pub input_blob: String,
    /// Blob to write the pooled (or partial-pooled) result to.
    pub output_blob: String,
    /// Total row-partitions of this table (1 = whole table here).
    pub parts: usize,
    /// Which partition this shard serves.
    pub part: usize,
    /// Embedding dimension of the table — the width of the pooled
    /// output, needed to shape the zero-fallback matrix when every
    /// replica is down.
    pub dim: usize,
}

/// The RPC operator inserted by the partitioner: gathers this shard's
/// table slices from the workspace, calls the shard, and writes the
/// pooled outputs back.
///
/// For row-sharded tables it performs the modulus routing of §III-A1:
/// only indices with `idx % parts == part` are sent, translated to local
/// rows `idx / parts`.
///
/// With a hot-row cache attached ([`SparseRpc::set_cache`]), each bag
/// whose routed indices are *all* cache-resident is pooled locally and
/// dropped from the wire request; bags with any cold row go to the
/// shard whole, so per-bag float summation order — and therefore every
/// output bit — is unchanged. An operator whose bags are all local
/// skips the network entirely.
#[derive(Debug)]
pub struct SparseRpc {
    name: String,
    net: NetId,
    client: Arc<dyn SparseShardClient>,
    fetches: Vec<RpcFetch>,
    policy: RpcPolicy,
    cache: Option<Arc<HotRowCache>>,
}

impl SparseRpc {
    /// Creates an RPC operator with the default (fail-hard) policy.
    ///
    /// # Panics
    ///
    /// Panics if `fetches` is empty (an RPC to a shard serving nothing
    /// indicates a partitioner bug).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        net: NetId,
        client: Arc<dyn SparseShardClient>,
        fetches: Vec<RpcFetch>,
    ) -> Self {
        assert!(!fetches.is_empty(), "RPC op must fetch at least one table");
        Self {
            name: name.into(),
            net,
            client,
            fetches,
            policy: RpcPolicy::default(),
            cache: None,
        }
    }

    /// Replaces the fault-tolerance policy.
    pub fn set_policy(&mut self, policy: RpcPolicy) {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.policy = policy;
    }

    /// Attaches the main shard's hot-row cache: fully-resident bags are
    /// pooled locally instead of going over the wire.
    pub fn set_cache(&mut self, cache: Arc<HotRowCache>) {
        self.cache = Some(cache);
    }

    /// The active fault-tolerance policy.
    #[must_use]
    pub fn policy(&self) -> &RpcPolicy {
        &self.policy
    }

    /// The shard this operator calls.
    #[must_use]
    pub fn shard_id(&self) -> ShardId {
        self.client.shard_id()
    }

    /// The tables fetched.
    #[must_use]
    pub fn fetches(&self) -> &[RpcFetch] {
        &self.fetches
    }

    /// Builds the wire request from the workspace (exposed for tests and
    /// for the serving layer's cost accounting).
    ///
    /// # Errors
    ///
    /// Propagates missing/mistyped sparse input blobs.
    pub fn build_request(&self, ws: &Workspace) -> Result<ShardRequest, GraphError> {
        let mut slices = Vec::with_capacity(self.fetches.len());
        for f in &self.fetches {
            let sparse = ws.sparse(&f.input_blob, &self.name)?;
            slices.push(route_slice(f, sparse));
        }
        Ok(ShardRequest {
            net: self.net,
            slices,
        })
    }

    /// Splits the operator's bags against the attached cache: pools
    /// fully-resident bags locally and builds the compacted wire
    /// request holding only the remote remainder. Returns `None` for
    /// the split when no cache is attached or no fetched table has a
    /// hot set — the request is then the unsplit [`Self::build_request`]
    /// and every byte of behavior matches the cacheless operator.
    fn build_request_and_split(
        &self,
        ws: &Workspace,
    ) -> Result<(ShardRequest, Option<LocalSplit>), GraphError> {
        let Some(cache) = &self.cache else {
            return Ok((self.build_request(ws)?, None));
        };
        if !self.fetches.iter().any(|f| cache.table(f.table).is_some()) {
            return Ok((self.build_request(ws)?, None));
        }
        let mut split = LocalSplit {
            outs: Vec::with_capacity(self.fetches.len()),
            remote_fetches: Vec::new(),
            remote_bags: Vec::new(),
            hits: 0,
            misses: 0,
            local_rows: 0,
        };
        let mut slices = Vec::new();
        for (fi, f) in self.fetches.iter().enumerate() {
            let sparse = ws.sparse(&f.input_blob, &self.name)?;
            let bags = route_bags_global(f, sparse);
            let mut out = Matrix::zeros(bags.len(), f.dim);
            let mut remote: Vec<usize> = Vec::new();
            match cache.table(f.table) {
                Some(tc) => {
                    for (b, bag) in bags.iter().enumerate() {
                        if tc.covers(bag) {
                            // Empty routed bags are vacuously local but
                            // say nothing about the cache — skip counts.
                            if !bag.is_empty() {
                                split.hits += 1;
                                split.local_rows += bag.len() as u64;
                            }
                            tc.pool_into(bag, out.row_mut(b));
                        } else {
                            split.misses += 1;
                            remote.push(b);
                        }
                    }
                }
                None => remote.extend(0..bags.len()),
            }
            split.outs.push(out);
            if remote.is_empty() {
                continue;
            }
            let mut indices = Vec::new();
            let mut lengths = Vec::with_capacity(remote.len());
            for &b in &remote {
                let bag = &bags[b];
                lengths.push(u32::try_from(bag.len()).expect("bag length fits u32"));
                if f.parts == 1 {
                    indices.extend_from_slice(bag);
                } else {
                    indices.extend(bag.iter().map(|&idx| idx / f.parts as u64));
                }
            }
            slices.push(TableSlice {
                table: f.table,
                indices,
                lengths,
            });
            split.remote_fetches.push(fi);
            split.remote_bags.push(remote);
        }
        cache.record(split.hits, split.misses, split.local_rows);
        Ok((
            ShardRequest {
                net: self.net,
                slices,
            },
            Some(split),
        ))
    }

    /// Issue half of the operator: builds the request from the
    /// workspace and sends it without waiting for the reply.
    ///
    /// When the send itself fails with a retryable error and the policy
    /// has attempts or a degraded fallback left, the failure is
    /// *deferred* to the collect half (which owns the retry loop)
    /// instead of failing the whole run at issue time.
    ///
    /// # Errors
    ///
    /// Propagates missing/mistyped input blobs, and send-time transport
    /// failures the policy cannot absorb.
    pub fn begin(&self, ws: &Workspace) -> Result<PendingSparseRpc, GraphError> {
        let (request, split) = self.build_request_and_split(ws)?;
        if request.slices.is_empty() {
            // Every bag was pooled from the cache: nothing to send, the
            // collect half just writes the locally-pooled outputs.
            return Ok(PendingSparseRpc {
                op: self.name.clone(),
                fetches: self.fetches.clone(),
                client: Arc::clone(&self.client),
                request,
                policy: self.policy,
                attempt: None,
                first_error: None,
                split,
            });
        }
        let (attempt, first_error) = match self.client.begin_execute(&request) {
            Ok(completion) => (
                Some(InFlightAttempt {
                    completion,
                    issued_at: Instant::now(),
                    kind: RpcAttemptKind::Primary,
                }),
                None,
            ),
            Err(e) => {
                let absorbable =
                    e.is_retryable() && (self.policy.max_attempts > 1 || self.policy.degraded_fallback);
                if !absorbable {
                    return Err(GraphError::OpFailed {
                        op: self.name.clone(),
                        message: e.to_string(),
                    });
                }
                (None, Some(e))
            }
        };
        Ok(PendingSparseRpc {
            op: self.name.clone(),
            fetches: self.fetches.clone(),
            client: Arc::clone(&self.client),
            request,
            policy: self.policy,
            attempt,
            first_error,
            split,
        })
    }
}

/// The hot/cold bag split of one issued operator: per-fetch output
/// matrices pre-filled with the locally-pooled bags, plus the mapping
/// from compacted wire-response rows back to output rows.
struct LocalSplit {
    /// One `total_bags × dim` output per fetch; local bags already
    /// pooled, remote bags zero until the reply (or left zero when
    /// degraded).
    outs: Vec<Matrix>,
    /// Indices into `fetches` that still need the wire (≥ 1 cold bag),
    /// in fetch order — parallel to the request's slices.
    remote_fetches: Vec<usize>,
    /// For each remote fetch, the output-row index of every bag that
    /// went remote, in wire order.
    remote_bags: Vec<Vec<usize>>,
    /// Bags pooled entirely locally (non-empty ones).
    hits: u64,
    /// Bags with at least one cold row.
    misses: u64,
    /// Row lookups served from the cache.
    local_rows: u64,
}

/// One in-flight transmission tracked by the collect half.
struct InFlightAttempt {
    completion: Box<dyn RpcCompletion>,
    issued_at: Instant,
    kind: RpcAttemptKind,
}

/// A [`SparseRpc`] whose request is in flight: the collect half waits
/// for a reply under the operator's [`RpcPolicy`] — enforcing the
/// per-attempt deadline, retrying with capped backoff, hedging the
/// straggler tail, and falling back to zero embeddings when every
/// attempt is exhausted — then validates the reply against the fetch
/// list and writes the pooled output blobs.
pub struct PendingSparseRpc {
    op: String,
    fetches: Vec<RpcFetch>,
    client: Arc<dyn SparseShardClient>,
    request: ShardRequest,
    policy: RpcPolicy,
    /// The primary attempt, when the send succeeded. `None` together
    /// with no `first_error` means the op was fully served from the
    /// hot-row cache and nothing was sent.
    attempt: Option<InFlightAttempt>,
    /// The send-time error when it did not (collect retries from here).
    first_error: Option<RpcError>,
    /// The hot/cold bag split when a cache absorbed part of the op.
    split: Option<LocalSplit>,
}

/// How long each bounded poll lasts when two attempts are being raced
/// (the scheduler alternates between them at this granularity).
const RACE_POLL_SLICE: Duration = Duration::from_micros(200);

impl PendingSparseRpc {
    /// Waits for a winning response under the policy and writes the
    /// pooled blobs (real or zero-fallback).
    ///
    /// # Errors
    ///
    /// Propagates shard/transport failures the policy cannot absorb and
    /// malformed responses (wrong table count or order).
    pub fn collect(mut self, ws: &mut Workspace) -> Result<RpcOutcome, GraphError> {
        let mut outcome = RpcOutcome::default();
        if let Some(split) = &self.split {
            outcome.cache_hits = split.hits;
            outcome.cache_misses = split.misses;
            outcome.cache_local_rows = split.local_rows;
        }
        // Fully cache-served op: nothing was sent, write the locally
        // pooled outputs and settle without any attempt.
        if self.attempt.is_none() && self.first_error.is_none() {
            let split = self.split.take().expect("sendless op implies a split");
            for (f, out) in self.fetches.iter().zip(split.outs) {
                ws.put(f.output_blob.clone(), Blob::Dense(out));
            }
            return Ok(outcome);
        }
        let mut in_flight: Vec<InFlightAttempt> = Vec::with_capacity(2);
        // Transmissions used so far (primary counts even if its send
        // failed — the wire was tried).
        let mut attempts_used: u32 = 1;
        let mut last_error: Option<RpcError> = match self.first_error.take() {
            Some(e) => {
                outcome.attempts.push(RpcAttempt {
                    kind: RpcAttemptKind::Primary,
                    issued_at: Instant::now(),
                    settled_at: Instant::now(),
                    winner: false,
                    error: Some(e.to_string()),
                });
                Some(e)
            }
            None => {
                in_flight.push(self.attempt.take().expect("attempt or error"));
                None
            }
        };

        loop {
            // Re-transmit (retry) after a failure when budget remains.
            if in_flight.is_empty() {
                let Some(err) = last_error.take() else {
                    unreachable!("no attempt in flight and no error recorded")
                };
                if !err.is_retryable() || attempts_used >= self.policy.max_attempts {
                    return self.settle_exhausted(ws, outcome, err);
                }
                let retry_no = outcome.retries + 1;
                let backoff = self.policy.backoff(retry_no);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempts_used += 1;
                outcome.retries += 1;
                match self.client.begin_execute(&self.request) {
                    Ok(completion) => in_flight.push(InFlightAttempt {
                        completion,
                        issued_at: Instant::now(),
                        kind: RpcAttemptKind::Retry,
                    }),
                    Err(e) => {
                        outcome.attempts.push(RpcAttempt {
                            kind: RpcAttemptKind::Retry,
                            issued_at: Instant::now(),
                            settled_at: Instant::now(),
                            winner: false,
                            error: Some(e.to_string()),
                        });
                        last_error = Some(e);
                        continue;
                    }
                }
            }

            // The current attempt's deadline (the oldest in-flight
            // transmission anchors the window).
            let anchor = in_flight[0].issued_at;
            let attempt_deadline = self.policy.attempt_timeout.and_then(|t| anchor.checked_add(t));
            // When does the hedge fire? Only one duplicate at a time,
            // and only if transmission budget remains.
            let hedge_at = match self.policy.hedge_after {
                Some(d) if in_flight.len() == 1 && attempts_used < self.policy.max_attempts => {
                    anchor.checked_add(d)
                }
                _ => None,
            };

            // Wait for the next event: a settled attempt, the hedge
            // timer, or the attempt deadline.
            match Self::race(&mut in_flight, attempt_deadline, hedge_at) {
                RaceResult::Settled {
                    kind,
                    issued_at,
                    result: Ok(response),
                } => {
                    let now = Instant::now();
                    outcome.attempts.push(RpcAttempt {
                        kind,
                        issued_at,
                        settled_at: now,
                        winner: true,
                        error: None,
                    });
                    // Losing hedges are abandoned (their replicas are
                    // healthy — the reply just lost the race).
                    for loser in in_flight.drain(..) {
                        outcome.attempts.push(RpcAttempt {
                            kind: loser.kind,
                            issued_at: loser.issued_at,
                            settled_at: now,
                            winner: false,
                            error: None,
                        });
                    }
                    self.write_response(ws, response)?;
                    return Ok(outcome);
                }
                RaceResult::Settled {
                    kind,
                    issued_at,
                    result: Err(e),
                } => {
                    outcome.attempts.push(RpcAttempt {
                        kind,
                        issued_at,
                        settled_at: Instant::now(),
                        winner: false,
                        error: Some(e.to_string()),
                    });
                    if !e.is_retryable() {
                        // Deterministic rejection: abandon everything
                        // and fail now.
                        return self.settle_exhausted(ws, outcome, e);
                    }
                    if in_flight.is_empty() {
                        last_error = Some(e);
                    }
                    // Else: the other transmission may still win; loop
                    // and keep waiting on it.
                }
                RaceResult::HedgeDue => {
                    attempts_used += 1;
                    outcome.hedges += 1;
                    match self.client.begin_execute(&self.request) {
                        Ok(completion) => in_flight.push(InFlightAttempt {
                            completion,
                            issued_at: Instant::now(),
                            kind: RpcAttemptKind::Hedge,
                        }),
                        Err(e) => {
                            outcome.attempts.push(RpcAttempt {
                                kind: RpcAttemptKind::Hedge,
                                issued_at: Instant::now(),
                                settled_at: Instant::now(),
                                winner: false,
                                error: Some(e.to_string()),
                            });
                        }
                    }
                }
                RaceResult::DeadlinePassed => {
                    // Every in-flight transmission of this attempt window
                    // timed out together.
                    let now = Instant::now();
                    let waited = now.saturating_duration_since(anchor);
                    let err = RpcError::Timeout {
                        shard: self.client.shard_id(),
                        waited,
                    };
                    for attempt in in_flight.drain(..) {
                        outcome.attempts.push(RpcAttempt {
                            kind: attempt.kind,
                            issued_at: attempt.issued_at,
                            settled_at: now,
                            winner: false,
                            error: Some(err.to_string()),
                        });
                        attempt.completion.abandon_timed_out();
                    }
                    last_error = Some(err);
                }
            }
        }
    }

    /// Waits until one in-flight attempt settles, the hedge timer
    /// fires, or the attempt deadline passes — whichever is first. A
    /// settled attempt is removed from `in_flight`; any remaining
    /// entries are still pending.
    fn race(
        in_flight: &mut Vec<InFlightAttempt>,
        attempt_deadline: Option<Instant>,
        hedge_at: Option<Instant>,
    ) -> RaceResult {
        loop {
            let now = Instant::now();
            if let Some(d) = attempt_deadline {
                if now >= d {
                    return RaceResult::DeadlinePassed;
                }
            }
            if let Some(h) = hedge_at {
                if now >= h {
                    return RaceResult::HedgeDue;
                }
            }
            // One transmission and no timers: block until it settles.
            if in_flight.len() == 1 && attempt_deadline.is_none() && hedge_at.is_none() {
                let attempt = in_flight.remove(0);
                return RaceResult::Settled {
                    kind: attempt.kind,
                    issued_at: attempt.issued_at,
                    result: attempt.completion.wait(),
                };
            }
            // Bounded wait: straight to the next timer when there is
            // only one transmission, otherwise a short slice so the
            // racing transmissions are polled alternately.
            let mut until = if in_flight.len() == 1 {
                Instant::now() + Duration::from_secs(3600)
            } else {
                now + RACE_POLL_SLICE
            };
            if let Some(d) = attempt_deadline {
                until = until.min(d);
            }
            if let Some(h) = hedge_at {
                until = until.min(h);
            }
            for index in 0..in_flight.len() {
                let attempt = in_flight.remove(index);
                let kind = attempt.kind;
                let issued_at = attempt.issued_at;
                match attempt.completion.wait_deadline(until) {
                    WaitOutcome::Ready(result) => {
                        return RaceResult::Settled {
                            kind,
                            issued_at,
                            result,
                        };
                    }
                    WaitOutcome::Pending(completion) => {
                        in_flight.insert(
                            index,
                            InFlightAttempt {
                                completion,
                                issued_at,
                                kind,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Terminal path: the budget is spent (or the error is not
    /// retryable). Either substitute the degraded zero-embedding
    /// fallback or surface the typed error as an operator failure.
    fn settle_exhausted(
        &mut self,
        ws: &mut Workspace,
        mut outcome: RpcOutcome,
        err: RpcError,
    ) -> Result<RpcOutcome, GraphError> {
        if self.policy.degraded_fallback && err.is_retryable() {
            if let Some(split) = self.split.take() {
                // Cache-served bags keep their real values; only the
                // remote positions stay zero.
                for (f, out) in self.fetches.iter().zip(split.outs) {
                    ws.put(f.output_blob.clone(), Blob::Dense(out));
                }
            } else {
                for (f, slice) in self.fetches.iter().zip(&self.request.slices) {
                    let rows = slice.lengths.len();
                    ws.put(f.output_blob.clone(), Blob::Dense(Matrix::zeros(rows, f.dim)));
                }
            }
            outcome.degraded = true;
            outcome.error_kind = Some(err.kind().to_string());
            return Ok(outcome);
        }
        Err(GraphError::OpFailed {
            op: self.op.clone(),
            message: err.to_string(),
        })
    }

    /// Validates the winning response and writes the pooled blobs.
    ///
    /// With a hot/cold split in play the response is *compacted*: one
    /// entry per remote fetch, one row per remote bag. Those rows are
    /// scattered back into the pre-pooled output matrices; without a
    /// split the response maps 1:1 onto the fetch list as before.
    fn write_response(&mut self, ws: &mut Workspace, response: ShardResponse) -> Result<(), GraphError> {
        if let Some(split) = self.split.take() {
            if response.pooled.len() != split.remote_fetches.len() {
                return Err(GraphError::OpFailed {
                    op: self.op.clone(),
                    message: format!(
                        "shard returned {} tables, expected {} remote",
                        response.pooled.len(),
                        split.remote_fetches.len()
                    ),
                });
            }
            let mut outs = split.outs;
            for (k, (table, pooled)) in response.pooled.into_iter().enumerate() {
                let fi = split.remote_fetches[k];
                let f = &self.fetches[fi];
                if table != f.table {
                    return Err(GraphError::OpFailed {
                        op: self.op.clone(),
                        message: format!("shard answered {table}, expected {}", f.table),
                    });
                }
                let bags = &split.remote_bags[k];
                if pooled.rows() != bags.len() || pooled.cols() != f.dim {
                    return Err(GraphError::OpFailed {
                        op: self.op.clone(),
                        message: format!(
                            "shard returned {}x{} for {table}, expected {}x{}",
                            pooled.rows(),
                            pooled.cols(),
                            bags.len(),
                            f.dim
                        ),
                    });
                }
                for (j, &b) in bags.iter().enumerate() {
                    outs[fi].row_mut(b).copy_from_slice(pooled.row(j));
                }
            }
            for (f, out) in self.fetches.iter().zip(outs) {
                ws.put(f.output_blob.clone(), Blob::Dense(out));
            }
            return Ok(());
        }
        if response.pooled.len() != self.fetches.len() {
            return Err(GraphError::OpFailed {
                op: self.op.clone(),
                message: format!(
                    "shard returned {} tables, expected {}",
                    response.pooled.len(),
                    self.fetches.len()
                ),
            });
        }
        for (f, (table, pooled)) in self.fetches.iter().zip(response.pooled) {
            if table != f.table {
                return Err(GraphError::OpFailed {
                    op: self.op.clone(),
                    message: format!("shard answered {table}, expected {}", f.table),
                });
            }
            ws.put(f.output_blob.clone(), Blob::Dense(pooled));
        }
        Ok(())
    }
}

/// What ended one bounded wait in the collect loop.
enum RaceResult {
    /// One in-flight transmission settled (and was removed from the
    /// in-flight set).
    Settled {
        kind: RpcAttemptKind,
        issued_at: Instant,
        result: Result<ShardResponse, RpcError>,
    },
    /// The hedge timer fired before anything settled.
    HedgeDue,
    /// The per-attempt deadline passed before anything settled.
    DeadlinePassed,
}

impl PendingOp for PendingSparseRpc {
    fn collect(self: Box<Self>, ws: &mut Workspace) -> Result<Option<RpcOutcome>, GraphError> {
        PendingSparseRpc::collect(*self, ws).map(Some)
    }
}

impl AsyncOperator for SparseRpc {
    fn issue(&self, ws: &Workspace) -> Result<Box<dyn PendingOp>, GraphError> {
        Ok(Box::new(self.begin(ws)?))
    }
}

/// Applies modulus routing to one sparse input.
fn route_slice(fetch: &RpcFetch, sparse: &SparseInput) -> TableSlice {
    if fetch.parts == 1 {
        return TableSlice {
            table: fetch.table,
            indices: sparse.indices.clone(),
            lengths: sparse.lengths.clone(),
        };
    }
    let parts = fetch.parts as u64;
    let part = fetch.part as u64;
    let mut indices = Vec::new();
    let mut lengths = Vec::with_capacity(sparse.lengths.len());
    let mut cursor = 0usize;
    for &len in &sparse.lengths {
        let mut kept = 0u32;
        for &idx in &sparse.indices[cursor..cursor + len as usize] {
            if idx % parts == part {
                indices.push(idx / parts);
                kept += 1;
            }
        }
        lengths.push(kept);
        cursor += len as usize;
    }
    TableSlice {
        table: fetch.table,
        indices,
        lengths,
    }
}

/// Modulus routing that keeps bag structure and *global* row ids: for
/// each batch element, the global indices belonging to this fetch's
/// part, in input order. The cache split needs global ids (the cache
/// is keyed by them) and per-bag boundaries (local serving is
/// all-or-nothing per bag).
fn route_bags_global(fetch: &RpcFetch, sparse: &SparseInput) -> Vec<Vec<u64>> {
    let parts = fetch.parts as u64;
    let part = fetch.part as u64;
    let mut bags = Vec::with_capacity(sparse.lengths.len());
    let mut cursor = 0usize;
    for &len in &sparse.lengths {
        let slice = &sparse.indices[cursor..cursor + len as usize];
        let bag = if fetch.parts == 1 {
            slice.to_vec()
        } else {
            slice.iter().copied().filter(|&i| i % parts == part).collect()
        };
        bags.push(bag);
        cursor += len as usize;
    }
    bags
}

impl Operator for SparseRpc {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::Sls
    }
    fn inputs(&self) -> Vec<String> {
        self.fetches.iter().map(|f| f.input_blob.clone()).collect()
    }
    fn outputs(&self) -> Vec<String> {
        self.fetches.iter().map(|f| f.output_blob.clone()).collect()
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        // Sequential form = issue immediately followed by collect.
        self.begin(ws)?.collect(ws).map(|_| ())
    }
    fn as_async(&self) -> Option<&dyn AsyncOperator> {
        Some(self)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fetch() -> RpcFetch {
        RpcFetch {
            table: TableId(0),
            input_blob: "in".into(),
            output_blob: "out".into(),
            parts: 1,
            part: 0,
            dim: 1,
        }
    }

    #[test]
    fn route_whole_table_is_identity() {
        let f = fetch();
        let s = SparseInput::new(vec![5, 9, 2], vec![2, 1]);
        let slice = route_slice(&f, &s);
        assert_eq!(slice.indices, vec![5, 9, 2]);
        assert_eq!(slice.lengths, vec![2, 1]);
    }

    #[test]
    fn route_modulus_filters_and_localizes() {
        let f = RpcFetch {
            parts: 2,
            part: 1,
            ..fetch()
        };
        // Element 0: indices {0,1,2}; element 1: {3,4}.
        let s = SparseInput::new(vec![0, 1, 2, 3, 4], vec![3, 2]);
        let slice = route_slice(&f, &s);
        // Odd indices go to part 1, local = idx/2.
        assert_eq!(slice.indices, vec![0, 1]); // global 1 → 0, global 3 → 1
        assert_eq!(slice.lengths, vec![1, 1]);
    }

    #[test]
    fn route_partition_is_a_partition() {
        // Every index lands on exactly one part, and locals are in range.
        let s = SparseInput::new((0..100).collect(), vec![50, 50]);
        let parts = 3;
        let mut total = 0;
        for part in 0..parts {
            let f = RpcFetch {
                parts,
                part,
                ..fetch()
            };
            let slice = route_slice(&f, &s);
            total += slice.indices.len();
            let max_local = (100 / parts as u64) + 1;
            assert!(slice.indices.iter().all(|&i| i <= max_local));
        }
        assert_eq!(total, 100);
    }

    /// A client that pools nothing: answers every slice with a 1×1 zero
    /// matrix for its table.
    #[derive(Debug)]
    struct ZeroClient;

    impl SparseShardClient for ZeroClient {
        fn shard_id(&self) -> ShardId {
            ShardId(0)
        }
        fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, RpcError> {
            Ok(ShardResponse {
                pooled: request
                    .slices
                    .iter()
                    .map(|s| (s.table, Matrix::zeros(1, 1)))
                    .collect(),
            })
        }
    }

    /// A client that fails with `error` the first `failures` calls, then
    /// answers like [`ZeroClient`].
    #[derive(Debug)]
    struct FlakyClient {
        failures: AtomicU32,
        error: RpcError,
    }

    impl FlakyClient {
        fn failing(failures: u32, error: RpcError) -> Self {
            Self {
                failures: AtomicU32::new(failures),
                error,
            }
        }
    }

    impl SparseShardClient for FlakyClient {
        fn shard_id(&self) -> ShardId {
            ShardId(0)
        }
        fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, RpcError> {
            let left = self.failures.load(Ordering::SeqCst);
            if left > 0 {
                self.failures.store(left - 1, Ordering::SeqCst);
                return Err(self.error.clone());
            }
            ZeroClient.execute(request)
        }
    }

    fn transient() -> RpcError {
        RpcError::Transport {
            shard: ShardId(0),
            message: "injected transient".into(),
        }
    }

    fn rpc_with(client: Arc<dyn SparseShardClient>, policy: RpcPolicy) -> SparseRpc {
        let mut op = SparseRpc::new("rpc", NetId(0), client, vec![fetch()]);
        op.set_policy(policy);
        op
    }

    fn ws_with_input() -> Workspace {
        let mut ws = Workspace::new();
        ws.put("in", Blob::Sparse(SparseInput::new(vec![1], vec![1])));
        ws
    }

    #[test]
    fn error_taxonomy_classification() {
        let t = RpcError::Timeout {
            shard: ShardId(2),
            waited: Duration::from_millis(5),
        };
        assert!(t.is_retryable());
        assert_eq!(t.kind(), "timeout");
        assert_eq!(t.shard(), ShardId(2));
        assert!(t.to_string().contains("timeout"));
        let f = RpcError::ShardFault {
            shard: ShardId(1),
            message: "t9 not hosted".into(),
        };
        assert!(!f.is_retryable());
        assert_eq!(f.kind(), "shard-fault");
        assert!(f.to_string().contains("not hosted"));
        assert!(RpcError::Poisoned {
            shard: ShardId(0),
            message: "boom".into()
        }
        .is_retryable());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RpcPolicy {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(3),
            ..RpcPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(3)); // capped (4 → 3)
        assert_eq!(p.backoff(9), Duration::from_millis(3));
    }

    #[test]
    fn default_begin_execute_defers_the_finished_result() {
        let req = ShardRequest {
            net: NetId(0),
            slices: vec![TableSlice {
                table: TableId(3),
                indices: vec![0],
                lengths: vec![1],
            }],
        };
        let completion = ZeroClient.begin_execute(&req).unwrap();
        let response = completion.wait().unwrap();
        assert_eq!(response.pooled.len(), 1);
        assert_eq!(response.pooled[0].0, TableId(3));
    }

    #[test]
    fn issue_collect_round_trip_writes_outputs() {
        let op = SparseRpc::new("rpc", NetId(0), Arc::new(ZeroClient), vec![fetch()]);
        let mut ws = ws_with_input();
        let pending = op.begin(&ws).unwrap();
        let outcome = pending.collect(&mut ws).unwrap();
        assert!(ws.dense("out", "t").is_ok());
        assert_eq!(outcome.retries, 0);
        assert!(!outcome.degraded);
        assert_eq!(outcome.attempts.len(), 1);
        assert!(outcome.attempts[0].winner);
        assert!(
            Operator::as_async(&op).is_some(),
            "SparseRpc must advertise its async form to the scheduler"
        );
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        let client = Arc::new(FlakyClient::failing(2, transient()));
        let op = rpc_with(
            client,
            RpcPolicy {
                max_attempts: 3,
                backoff_base: Duration::ZERO,
                ..RpcPolicy::default()
            },
        );
        let mut ws = ws_with_input();
        let outcome = op.begin(&ws).unwrap().collect(&mut ws).unwrap();
        assert_eq!(outcome.retries, 2);
        assert!(!outcome.degraded);
        assert!(ws.dense("out", "t").is_ok());
        assert!(outcome.attempts.last().unwrap().winner);
    }

    #[test]
    fn budget_exhaustion_fails_hard_without_fallback() {
        let client = Arc::new(FlakyClient::failing(5, transient()));
        let op = rpc_with(
            client,
            RpcPolicy {
                max_attempts: 2,
                backoff_base: Duration::ZERO,
                ..RpcPolicy::default()
            },
        );
        let mut ws = ws_with_input();
        let err = op.begin(&ws).unwrap().collect(&mut ws).unwrap_err();
        assert!(err.to_string().contains("transport"), "{err}");
    }

    #[test]
    fn budget_exhaustion_degrades_with_fallback() {
        let client = Arc::new(FlakyClient::failing(5, transient()));
        let op = rpc_with(
            client,
            RpcPolicy {
                max_attempts: 2,
                backoff_base: Duration::ZERO,
                degraded_fallback: true,
                ..RpcPolicy::default()
            },
        );
        let mut ws = ws_with_input();
        let outcome = op.begin(&ws).unwrap().collect(&mut ws).unwrap();
        assert!(outcome.degraded);
        assert_eq!(outcome.error_kind.as_deref(), Some("transport"));
        assert_eq!(outcome.retries, 1);
        // The fallback is a zero matrix with one row per batch element
        // and the table's dim.
        let out = ws.dense("out", "t").unwrap();
        assert_eq!((out.rows(), out.cols()), (1, 1));
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn shard_fault_is_not_retried_and_not_degraded() {
        let calls = Arc::new(FlakyClient::failing(
            9,
            RpcError::ShardFault {
                shard: ShardId(0),
                message: "t0 not hosted".into(),
            },
        ));
        let op = rpc_with(
            Arc::clone(&calls) as Arc<dyn SparseShardClient>,
            RpcPolicy {
                max_attempts: 3,
                degraded_fallback: true,
                backoff_base: Duration::ZERO,
                ..RpcPolicy::default()
            },
        );
        let mut ws = ws_with_input();
        let err = op.begin(&ws).unwrap().collect(&mut ws).unwrap_err();
        assert!(err.to_string().contains("not hosted"), "{err}");
        // Exactly one call went out: deterministic rejections burn no
        // retry budget.
        assert_eq!(calls.failures.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn send_failure_is_deferred_and_retried() {
        // begin_execute itself fails (default impl wraps execute).
        let client = Arc::new(FlakyClient::failing(1, transient()));
        let op = rpc_with(
            client,
            RpcPolicy {
                max_attempts: 2,
                backoff_base: Duration::ZERO,
                ..RpcPolicy::default()
            },
        );
        let mut ws = ws_with_input();
        // ReadyResponse defers the error to collect, so this exercises
        // the settled-error retry path.
        let outcome = op.begin(&ws).unwrap().collect(&mut ws).unwrap();
        assert_eq!(outcome.retries, 1);
        assert!(ws.dense("out", "t").is_ok());
    }

    use crate::plan::{Location, ShardingPlan, TablePlacement};
    use crate::ShardingStrategy;
    use dlrm_model::EmbeddingTable;

    fn test_table(rows: usize, dim: usize) -> EmbeddingTable {
        let data: Vec<f32> = (0..rows * dim).map(|i| 0.5 + i as f32).collect();
        EmbeddingTable::from_weights("t", Matrix::from_vec(rows, dim, data))
    }

    fn cache_for(table: &EmbeddingTable, hot: Vec<u64>) -> Arc<HotRowCache> {
        let plan = ShardingPlan::new(
            ShardingStrategy::OneShard,
            1,
            vec![TablePlacement {
                table: TableId(0),
                location: Location::Shards(vec![crate::ShardId(0)]),
            }],
        )
        .with_hot_rows(vec![hot]);
        let tables = vec![Arc::new(table.clone())];
        Arc::new(HotRowCache::build(&tables, &plan))
    }

    /// A client that really pools against a table and counts calls and
    /// lookups, so tests can assert what crossed the "wire".
    #[derive(Debug)]
    struct PoolingClient {
        table: EmbeddingTable,
        calls: AtomicU32,
        lookups: AtomicU32,
    }

    impl PoolingClient {
        fn new(table: EmbeddingTable) -> Self {
            Self {
                table,
                calls: AtomicU32::new(0),
                lookups: AtomicU32::new(0),
            }
        }
    }

    impl SparseShardClient for PoolingClient {
        fn shard_id(&self) -> ShardId {
            ShardId(0)
        }
        fn execute(&self, request: &ShardRequest) -> Result<ShardResponse, RpcError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.lookups
                .fetch_add(request.total_lookups() as u32, Ordering::SeqCst);
            Ok(ShardResponse {
                pooled: request
                    .slices
                    .iter()
                    .map(|s| (s.table, self.table.sparse_lengths_sum(&s.indices, &s.lengths)))
                    .collect(),
            })
        }
    }

    fn dim2_fetch() -> RpcFetch {
        RpcFetch {
            dim: 2,
            ..fetch()
        }
    }

    #[test]
    fn cache_split_pools_hot_bags_locally_and_is_bit_exact() {
        // Bags: [1,2] (all hot), [1,5] (5 is cold), [] (empty).
        let input = SparseInput::new(vec![1, 2, 1, 5], vec![2, 2, 0]);
        let table = test_table(8, 2);
        let mut ws = Workspace::new();
        ws.put("in", Blob::Sparse(input));

        // Pure path: no cache attached.
        let pure_client = Arc::new(PoolingClient::new(table.clone()));
        let mut pure = SparseRpc::new("rpc", NetId(0), pure_client, vec![dim2_fetch()]);
        pure.fetches[0].output_blob = "out_pure".into();
        pure.begin(&ws).unwrap().collect(&mut ws).unwrap();

        // Cached path.
        let client = Arc::new(PoolingClient::new(table.clone()));
        let cache = cache_for(&table, vec![1, 2]);
        let mut op = SparseRpc::new("rpc", NetId(0), Arc::clone(&client) as _, vec![dim2_fetch()]);
        op.set_cache(Arc::clone(&cache));
        let outcome = op.begin(&ws).unwrap().collect(&mut ws).unwrap();

        let cached = ws.dense("out", "t").unwrap().clone();
        let expect = ws.dense("out_pure", "t").unwrap();
        assert_eq!(&cached, expect, "cache tier must be bit-exact");
        // Only the cold bag crossed the wire.
        assert_eq!(client.calls.load(Ordering::SeqCst), 1);
        assert_eq!(client.lookups.load(Ordering::SeqCst), 2);
        assert_eq!(outcome.cache_hits, 1);
        assert_eq!(outcome.cache_misses, 1);
        assert_eq!(outcome.cache_local_rows, 2);
        let totals = cache.totals();
        assert_eq!((totals.hits, totals.misses, totals.local_rows), (1, 1, 2));
    }

    #[test]
    fn fully_cached_op_skips_the_network_entirely() {
        /// A client whose execute must never be reached.
        #[derive(Debug)]
        struct NoWire;
        impl SparseShardClient for NoWire {
            fn shard_id(&self) -> ShardId {
                ShardId(0)
            }
            fn execute(&self, _request: &ShardRequest) -> Result<ShardResponse, RpcError> {
                panic!("fully-cached op must not touch the transport")
            }
        }
        let table = test_table(8, 2);
        let mut ws = Workspace::new();
        ws.put("in", Blob::Sparse(SparseInput::new(vec![1, 2, 2], vec![1, 2])));
        let mut op = SparseRpc::new("rpc", NetId(0), Arc::new(NoWire), vec![dim2_fetch()]);
        op.set_cache(cache_for(&table, vec![1, 2]));
        let outcome = op.begin(&ws).unwrap().collect(&mut ws).unwrap();
        assert!(outcome.attempts.is_empty(), "nothing should have been sent");
        assert_eq!(outcome.cache_hits, 2);
        assert_eq!(outcome.cache_local_rows, 3);
        let out = ws.dense("out", "t").unwrap();
        let expect = table.sparse_lengths_sum(&[1, 2, 2], &[1, 2]);
        assert_eq!(out, &expect);
    }

    #[test]
    fn degraded_fallback_keeps_cache_served_bags_real() {
        let table = test_table(8, 2);
        let mut ws = Workspace::new();
        // Bag 0 fully hot, bag 1 cold.
        ws.put("in", Blob::Sparse(SparseInput::new(vec![1, 2, 5], vec![2, 1])));
        let client = Arc::new(FlakyClient::failing(9, transient()));
        let mut op = SparseRpc::new("rpc", NetId(0), client, vec![dim2_fetch()]);
        op.set_cache(cache_for(&table, vec![1, 2]));
        op.set_policy(RpcPolicy {
            max_attempts: 2,
            backoff_base: Duration::ZERO,
            degraded_fallback: true,
            ..RpcPolicy::default()
        });
        let outcome = op.begin(&ws).unwrap().collect(&mut ws).unwrap();
        assert!(outcome.degraded);
        assert_eq!(outcome.cache_hits, 1);
        assert_eq!(outcome.cache_misses, 1);
        let out = ws.dense("out", "t").unwrap();
        let expect = table.sparse_lengths_sum(&[1, 2], &[2]);
        assert_eq!(out.row(0), expect.row(0), "cached bag keeps real values");
        assert_eq!(out.row(1), &[0.0, 0.0][..], "remote bag degrades to zero");
    }

    #[test]
    fn uncached_tables_under_a_split_still_match_the_pure_wire_shape() {
        // Two fetches, only table 0 has a hot set; table 1's slice must
        // come out identical to the cacheless routing.
        let table = test_table(8, 2);
        let mut ws = Workspace::new();
        ws.put("in0", Blob::Sparse(SparseInput::new(vec![1, 2], vec![2])));
        ws.put("in1", Blob::Sparse(SparseInput::new(vec![4, 6, 3], vec![2, 1])));
        let fetches = vec![
            RpcFetch {
                table: TableId(0),
                input_blob: "in0".into(),
                output_blob: "out0".into(),
                parts: 1,
                part: 0,
                dim: 2,
            },
            RpcFetch {
                table: TableId(1),
                input_blob: "in1".into(),
                output_blob: "out1".into(),
                parts: 1,
                part: 0,
                dim: 2,
            },
        ];
        let client = Arc::new(PoolingClient::new(table.clone()));
        let mut op = SparseRpc::new("rpc", NetId(0), client, fetches);
        // Cache keyed to table 0 only (the plan has one table; attach a
        // cache whose table 1 entry is absent).
        op.set_cache(cache_for(&table, vec![1, 2]));
        let (request, split) = op.build_request_and_split(&ws).unwrap();
        let split = split.expect("table 0 has a hot set");
        assert_eq!(split.remote_fetches, vec![1]);
        assert_eq!(request.slices.len(), 1);
        let pure = op.build_request(&ws).unwrap();
        assert_eq!(request.slices[0], pure.slices[1], "uncached slice unchanged");
        // Uncached-table bags are not counted as misses.
        assert_eq!((split.hits, split.misses), (1, 0));
    }

    #[test]
    fn policy_injection_via_downcast() {
        let mut op: Box<dyn Operator> =
            Box::new(SparseRpc::new("rpc", NetId(0), Arc::new(ZeroClient), vec![fetch()]));
        let any = op.as_any_mut().expect("SparseRpc downcasts");
        let rpc = any.downcast_mut::<SparseRpc>().unwrap();
        rpc.set_policy(RpcPolicy::resilient());
        assert_eq!(rpc.policy().max_attempts, 3);
    }

    #[test]
    fn payload_bytes_accounting() {
        let req = ShardRequest {
            net: NetId(0),
            slices: vec![TableSlice {
                table: TableId(0),
                indices: vec![1, 2, 3],
                lengths: vec![3],
            }],
        };
        assert_eq!(req.total_lookups(), 3);
        assert_eq!(req.payload_bytes(), 3 * 8 + 4);
    }
}
