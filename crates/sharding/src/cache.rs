//! Hot-row cache tier: main-shard-resident copies of the hottest
//! embedding rows.
//!
//! RecShard-style placement (see [`crate::plan_with_stats`]) marks a
//! small, access-CDF-chosen set of rows per table as *hot*. This module
//! materializes those rows into a read-only cache living on the main
//! shard, so the RPC layer ([`crate::rpc::SparseRpc`]) can pool a bag
//! entirely locally whenever every one of its rows is resident —
//! cutting the rows shipped over the wire without changing a single
//! output bit. Bags are strictly all-or-nothing: a bag with even one
//! cold row goes to its shard whole, because splitting a bag would
//! change float summation order.
//!
//! The cache holds *copies*: shards still host their full tables, so
//! retries, hedges, failover, and degraded fallback behave exactly as
//! without a cache — except that fully-local bags can never be lost to
//! a shard outage.

use crate::plan::ShardingPlan;
use dlrm_model::{EmbeddingTable, TableId};
use dlrm_tensor::simd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache-tier counters: how much lookup traffic the hot-row cache
/// absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Bags pooled entirely from the cache (no wire traffic).
    pub hits: u64,
    /// Bags with at least one cold row (went to a shard whole).
    pub misses: u64,
    /// Row lookups served from the cache (the rows kept off the wire).
    pub local_rows: u64,
}

impl CacheTotals {
    /// Whether nothing was counted.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &CacheTotals) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.local_rows += other.local_rows;
    }

    /// Fraction of counted bags served entirely from the cache (0.0
    /// when nothing was counted).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

impl std::fmt::Display for CacheTotals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {} misses {} ({:.4} hit rate), {} local rows",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.local_rows
        )
    }
}

/// One table's resident hot rows: sorted global row ids plus their
/// weights, bit-copied from the source table.
#[derive(Debug)]
pub(crate) struct TableCache {
    /// Resident global row ids, strictly ascending.
    rows: Vec<u64>,
    dim: usize,
    /// Row weights in `rows` order, `dim` floats per row.
    data: Vec<f32>,
}

impl TableCache {
    /// The resident slot of `row`, if cached.
    fn slot(&self, row: u64) -> Option<usize> {
        self.rows.binary_search(&row).ok()
    }

    /// Whether every index of `bag` is resident.
    pub(crate) fn covers(&self, bag: &[u64]) -> bool {
        bag.iter().all(|&r| self.slot(r).is_some())
    }

    /// Pools `bag` (global row ids) into `out` by summing resident rows
    /// in index order — the same sequential accumulation the shard-side
    /// SLS kernel uses per bag, so the result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if a row is not resident or `out` is not `dim` wide.
    pub(crate) fn pool_into(&self, bag: &[u64], out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "cache pool output width");
        let level = simd::effective_level(simd::KernelDispatch::detect().level());
        for &row in bag {
            let slot = self.slot(row).expect("pooled row must be resident");
            simd::add_assign(level, out, &self.data[slot * self.dim..(slot + 1) * self.dim]);
        }
    }
}

/// The main shard's read-only hot-row cache, built from a plan's
/// hot-row sets against the full embedding tables.
#[derive(Debug)]
pub struct HotRowCache {
    /// Per-table residency, indexed by table id (`None` = no hot set).
    tables: Vec<Option<TableCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
    local_rows: AtomicU64,
}

impl HotRowCache {
    /// Materializes the plan's hot-row sets from `tables` (indexed by
    /// table id, as built by the model builder).
    ///
    /// # Panics
    ///
    /// Panics if the plan and tables disagree in count or a hot row is
    /// out of range.
    #[must_use]
    pub fn build(tables: &[Arc<EmbeddingTable>], plan: &ShardingPlan) -> Self {
        assert_eq!(
            tables.len(),
            plan.placements().len(),
            "plan and tables must cover the same model"
        );
        let tables = tables
            .iter()
            .enumerate()
            .map(|(ti, table)| {
                let rows = plan.hot_rows(TableId(ti));
                if rows.is_empty() {
                    return None;
                }
                let dim = table.dim();
                let mut data = Vec::with_capacity(rows.len() * dim);
                for &r in rows {
                    let r = usize::try_from(r).expect("row exceeds usize");
                    assert!(
                        r < table.rows(),
                        "hot row {r} out of range for table {ti} ({} rows)",
                        table.rows()
                    );
                    data.extend_from_slice(table.row(r));
                }
                Some(TableCache {
                    rows: rows.to_vec(),
                    dim,
                    data,
                })
            })
            .collect();
        Self {
            tables,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            local_rows: AtomicU64::new(0),
        }
    }

    /// The residency of one table, if it has a hot set.
    pub(crate) fn table(&self, table: TableId) -> Option<&TableCache> {
        self.tables.get(table.0).and_then(Option::as_ref)
    }

    /// Whether `row` of `table` is resident.
    #[must_use]
    pub fn covers(&self, table: TableId, row: u64) -> bool {
        self.table(table).is_some_and(|t| t.slot(row).is_some())
    }

    /// Total resident rows across all tables.
    #[must_use]
    pub fn resident_rows(&self) -> usize {
        self.tables
            .iter()
            .flatten()
            .map(|t| t.rows.len())
            .sum()
    }

    /// Total resident bytes (f32 weights only).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.tables
            .iter()
            .flatten()
            .map(|t| t.data.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Records one RPC op's split: `hits` fully-local bags, `misses`
    /// bags that went remote, `local_rows` row lookups kept off the
    /// wire.
    pub(crate) fn record(&self, hits: u64, misses: u64, local_rows: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.local_rows.fetch_add(local_rows, Ordering::Relaxed);
    }

    /// Counters accumulated since construction.
    #[must_use]
    pub fn totals(&self) -> CacheTotals {
        CacheTotals {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            local_rows: self.local_rows.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Location, ShardId, TablePlacement};
    use crate::ShardingStrategy;
    use dlrm_tensor::Matrix;

    fn table(rows: usize, dim: usize, salt: f32) -> Arc<EmbeddingTable> {
        let data: Vec<f32> = (0..rows * dim).map(|i| salt + i as f32).collect();
        Arc::new(EmbeddingTable::from_weights(
            "t",
            Matrix::from_vec(rows, dim, data),
        ))
    }

    fn one_table_plan(hot: Vec<u64>) -> ShardingPlan {
        ShardingPlan::new(
            ShardingStrategy::OneShard,
            1,
            vec![TablePlacement {
                table: TableId(0),
                location: Location::Shards(vec![ShardId(0)]),
            }],
        )
        .with_hot_rows(vec![hot])
    }

    #[test]
    fn cached_pooling_matches_the_table_kernel_bit_for_bit() {
        let t = table(10, 4, 0.25);
        let cache = HotRowCache::build(std::slice::from_ref(&t), &one_table_plan(vec![1, 3, 7]));
        let tc = cache.table(TableId(0)).unwrap();
        assert!(tc.covers(&[3, 1, 7, 1]));
        assert!(!tc.covers(&[3, 2]));
        let mut out = vec![0.0f32; 4];
        tc.pool_into(&[3, 1, 7, 1], &mut out);
        let expect = t.sparse_lengths_sum(&[3, 1, 7, 1], &[4]);
        assert_eq!(out.as_slice(), expect.row(0));
    }

    #[test]
    fn residency_and_counters() {
        let t = table(6, 2, 0.0);
        let cache = HotRowCache::build(std::slice::from_ref(&t), &one_table_plan(vec![0, 5]));
        assert!(cache.covers(TableId(0), 5));
        assert!(!cache.covers(TableId(0), 4));
        assert_eq!(cache.resident_rows(), 2);
        assert_eq!(cache.resident_bytes(), 2 * 2 * 4);
        assert!(cache.totals().is_zero());
        cache.record(3, 1, 9);
        cache.record(1, 0, 2);
        let totals = cache.totals();
        assert_eq!(totals.hits, 4);
        assert_eq!(totals.misses, 1);
        assert_eq!(totals.local_rows, 11);
        assert!((totals.hit_rate() - 0.8).abs() < 1e-12);
        let text = totals.to_string();
        assert!(text.contains("hits 4") && text.contains("11 local rows"), "{text}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_rejects_out_of_range_hot_rows() {
        let t = table(4, 2, 0.0);
        let _ = HotRowCache::build(std::slice::from_ref(&t), &one_table_plan(vec![9]));
    }
}
