//! Property-style tests: every strategy must produce structurally valid
//! plans for arbitrary (well-formed) models, and plan invariants must
//! hold regardless of model shape. Cases are generated deterministically
//! from [`SimRng`] streams (the in-tree replacement for proptest), so
//! every run exercises the identical case set.

use dlrm_model::{ModelSpec, NetId, NetSpec, TableId, TableSpec};
use dlrm_sharding::{plan, Location, ShardingStrategy};
use dlrm_sim::SimRng;
use dlrm_workload::PoolingProfile;

const CASES: usize = 64;

/// Generates a well-formed ModelSpec with 1–2 nets and 2–40 tables of
/// varied size/pooling, retrying until every net owns a table (mirrors
/// the old proptest `prop_filter`).
fn arb_spec(rng: &mut SimRng) -> ModelSpec {
    loop {
        let n_nets = 1 + rng.next_index(2);
        let n_tables = 2 + rng.next_index(38);
        let dims = [16u32, 32, 64, 128];
        let tables: Vec<TableSpec> = (0..n_tables)
            .map(|i| TableSpec {
                id: TableId(i),
                name: format!("t{i}"),
                rows: (1 + rng.next_u64_below(199_999)).max(8),
                dim: dims[rng.next_index(dims.len())],
                net: NetId(i % n_nets),
                pooling_factor: rng.next_range(0.0, 500.0),
            })
            .collect();
        let nets: Vec<NetSpec> = (0..n_nets)
            .map(|i| NetSpec {
                id: NetId(i),
                name: format!("net{i}"),
                bottom_mlp: vec![32, 16],
                top_mlp: vec![32, 1],
                takes_prev_output: i > 0,
            })
            .collect();
        let spec = ModelSpec {
            name: "prop".into(),
            dense_features: 16,
            tables,
            nets,
            default_batch_size: 8,
            mean_items_per_request: 16.0,
        };
        let every_net_covered = spec
            .nets
            .iter()
            .all(|n| spec.tables_of_net(n.id).count() > 0);
        if every_net_covered {
            return spec;
        }
    }
}

fn strategies(n_tables: usize, n_nets: usize) -> Vec<ShardingStrategy> {
    let mut out = vec![ShardingStrategy::Singular, ShardingStrategy::OneShard];
    for n in [2usize, 4] {
        if n <= n_tables {
            out.push(ShardingStrategy::CapacityBalanced(n));
            out.push(ShardingStrategy::LoadBalanced(n));
            out.push(ShardingStrategy::Auto(n));
        }
        if n >= n_nets {
            out.push(ShardingStrategy::NetSpecificBinPacking(n));
        }
    }
    out
}

/// Every feasible plan validates, covers each table exactly once, and
/// conserves capacity and pooling across shards.
#[test]
fn plans_conserve_capacity_and_pooling() {
    let mut rng = SimRng::seed_from(0x5_4A4D).fork(1);
    for case in 0..CASES {
        let spec = arb_spec(&mut rng);
        assert_eq!(spec.validate(), Ok(()), "case {case}");
        let profile = PoolingProfile::from_spec(&spec);
        for strategy in strategies(spec.tables.len(), spec.nets.len()) {
            let Ok(p) = plan(&spec, &profile, strategy) else {
                continue;
            };
            assert_eq!(p.validate(&spec), Ok(()), "case {case}: {strategy}");
            if !strategy.is_distributed() {
                continue;
            }
            // Capacity conservation across shards.
            let shard_total: f64 = p
                .shards()
                .map(|s| p.shard_capacity_bytes(s, &spec))
                .sum();
            let spec_total = spec.total_bytes() as f64;
            assert!(
                (shard_total - spec_total).abs() / spec_total < 1e-9,
                "case {case}: {strategy}: {shard_total} vs {spec_total}"
            );
            // Pooling conservation.
            let shard_pool: f64 = p.shards().map(|s| p.shard_pooling(s, &profile)).sum();
            assert!(
                (shard_pool - profile.total()).abs() < 1e-6 * profile.total().max(1.0),
                "case {case}: {strategy}"
            );
            // Each table's shards are distinct and in range.
            for placement in p.placements() {
                if let Location::Shards(shards) = &placement.location {
                    let unique: std::collections::BTreeSet<_> = shards.iter().collect();
                    assert_eq!(unique.len(), shards.len(), "case {case}: {strategy}");
                }
            }
        }
    }
}

/// NSBP never mixes nets on a shard, for any model shape.
#[test]
fn nsbp_always_isolates_nets() {
    let mut rng = SimRng::seed_from(0x5_4A4D).fork(2);
    for case in 0..CASES {
        let spec = arb_spec(&mut rng);
        let profile = PoolingProfile::from_spec(&spec);
        for n in [2usize, 4, 8] {
            if n < spec.nets.len() {
                continue;
            }
            if let Ok(p) = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(n)) {
                assert!(p.nets_are_isolated(&spec), "case {case}: n={n}");
            }
        }
    }
}

/// Load-balanced placement is greedy list scheduling on pooling, so its
/// max shard load obeys Graham's list-scheduling bound:
/// `makespan ≤ total/m + (1 − 1/m) × max_item` — an exact theorem,
/// unlike the often-quoted 4/3 factor which is relative to the
/// (uncomputable here) optimum.
#[test]
fn lb_respects_grahams_list_scheduling_bound() {
    let mut rng = SimRng::seed_from(0x5_4A4D).fork(3);
    for case in 0..CASES {
        let spec = arb_spec(&mut rng);
        let profile = PoolingProfile::from_spec(&spec);
        for n in [2usize, 4] {
            if n > spec.tables.len() {
                continue;
            }
            let lb = plan(&spec, &profile, ShardingStrategy::LoadBalanced(n)).unwrap();
            let max_load = lb
                .shards()
                .map(|s| lb.shard_pooling(s, &profile))
                .fold(0.0f64, f64::max);
            let hottest = spec
                .tables
                .iter()
                .map(|t| profile.of(t.id))
                .fold(0.0f64, f64::max);
            let bound = profile.total() / n as f64 + (1.0 - 1.0 / n as f64) * hottest;
            assert!(
                max_load <= bound + 1e-9,
                "case {case}: max {max_load} vs list-scheduling bound {bound}"
            );
        }
    }
}

/// Row-sharded placements distribute capacity equally across parts.
#[test]
fn row_shard_parts_split_capacity() {
    let mut rng = SimRng::seed_from(0x5_4A4D).fork(4);
    for case in 0..CASES {
        let spec = arb_spec(&mut rng);
        let profile = PoolingProfile::from_spec(&spec);
        for n in [4usize, 8] {
            if n < spec.nets.len() {
                continue;
            }
            let Ok(p) = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(n))
            else {
                continue;
            };
            for placement in p.placements() {
                if placement.is_row_sharded() {
                    let t = spec.table(placement.table);
                    let Location::Shards(shards) = &placement.location else {
                        unreachable!()
                    };
                    for &s in shards {
                        let contribution = t.bytes() as f64 / shards.len() as f64;
                        assert!(
                            p.shard_capacity_bytes(s, &spec) >= contribution - 1e-9,
                            "case {case}: n={n}"
                        );
                    }
                }
            }
        }
    }
}
