//! Property-based tests: every strategy must produce structurally valid
//! plans for arbitrary (well-formed) models, and plan invariants must
//! hold regardless of model shape.

use dlrm_model::{ModelSpec, NetId, NetSpec, TableId, TableSpec};
use dlrm_sharding::{plan, Location, ShardingStrategy};
use dlrm_workload::PoolingProfile;
use proptest::prelude::*;

/// Strategy generating a well-formed ModelSpec with 1–2 nets and
/// 2–40 tables of varied size/pooling.
fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    (
        1usize..=2,                                  // nets
        prop::collection::vec((1u64..200_000, 0usize..4, 0.0f64..500.0), 2..40),
    )
        .prop_map(|(n_nets, raw_tables)| {
            let dims = [16u32, 32, 64, 128];
            let tables: Vec<TableSpec> = raw_tables
                .into_iter()
                .enumerate()
                .map(|(i, (rows, dim_idx, pooling))| TableSpec {
                    id: TableId(i),
                    name: format!("t{i}"),
                    rows: rows.max(8),
                    dim: dims[dim_idx],
                    net: NetId(i % n_nets),
                    pooling_factor: pooling,
                })
                .collect();
            let nets = (0..n_nets)
                .map(|i| NetSpec {
                    id: NetId(i),
                    name: format!("net{i}"),
                    bottom_mlp: vec![32, 16],
                    top_mlp: vec![32, 1],
                    takes_prev_output: i > 0,
                })
                .collect();
            ModelSpec {
                name: "prop".into(),
                dense_features: 16,
                tables,
                nets,
                default_batch_size: 8,
                mean_items_per_request: 16.0,
            }
        })
        .prop_filter("every net needs a table", |spec| {
            spec.nets
                .iter()
                .all(|n| spec.tables_of_net(n.id).count() > 0)
        })
}

fn strategies(n_tables: usize, n_nets: usize) -> Vec<ShardingStrategy> {
    let mut out = vec![ShardingStrategy::Singular, ShardingStrategy::OneShard];
    for n in [2usize, 4] {
        if n <= n_tables {
            out.push(ShardingStrategy::CapacityBalanced(n));
            out.push(ShardingStrategy::LoadBalanced(n));
            out.push(ShardingStrategy::Auto(n));
        }
        if n >= n_nets {
            out.push(ShardingStrategy::NetSpecificBinPacking(n));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every feasible plan validates, covers each table exactly once,
    /// and conserves capacity and pooling across shards.
    #[test]
    fn plans_conserve_capacity_and_pooling(spec in arb_spec()) {
        prop_assert_eq!(spec.validate(), Ok(()));
        let profile = PoolingProfile::from_spec(&spec);
        for strategy in strategies(spec.tables.len(), spec.nets.len()) {
            let Ok(p) = plan(&spec, &profile, strategy) else { continue };
            prop_assert_eq!(p.validate(&spec), Ok(()), "{}", strategy);
            if !strategy.is_distributed() {
                continue;
            }
            // Capacity conservation across shards.
            let shard_total: f64 = p
                .shards()
                .map(|s| p.shard_capacity_bytes(s, &spec))
                .sum();
            let spec_total = spec.total_bytes() as f64;
            prop_assert!(
                (shard_total - spec_total).abs() / spec_total < 1e-9,
                "{strategy}: {shard_total} vs {spec_total}"
            );
            // Pooling conservation.
            let shard_pool: f64 = p.shards().map(|s| p.shard_pooling(s, &profile)).sum();
            prop_assert!((shard_pool - profile.total()).abs() < 1e-6 * profile.total().max(1.0));
            // Each table's shards are distinct and in range.
            for placement in p.placements() {
                if let Location::Shards(shards) = &placement.location {
                    let unique: std::collections::BTreeSet<_> = shards.iter().collect();
                    prop_assert_eq!(unique.len(), shards.len());
                }
            }
        }
    }

    /// NSBP never mixes nets on a shard, for any model shape.
    #[test]
    fn nsbp_always_isolates_nets(spec in arb_spec()) {
        let profile = PoolingProfile::from_spec(&spec);
        for n in [2usize, 4, 8] {
            if n < spec.nets.len() {
                continue;
            }
            if let Ok(p) = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(n)) {
                prop_assert!(p.nets_are_isolated(&spec), "n={n}");
            }
        }
    }

    /// Load-balanced placement is greedy list scheduling on pooling, so
    /// its max shard load obeys Graham's list-scheduling bound:
    /// `makespan ≤ total/m + (1 − 1/m) × max_item` — an exact theorem,
    /// unlike the often-quoted 4/3 factor which is relative to the
    /// (uncomputable here) optimum.
    #[test]
    fn lb_respects_grahams_list_scheduling_bound(spec in arb_spec()) {
        let profile = PoolingProfile::from_spec(&spec);
        for n in [2usize, 4] {
            if n > spec.tables.len() {
                continue;
            }
            let lb = plan(&spec, &profile, ShardingStrategy::LoadBalanced(n)).unwrap();
            let max_load = lb
                .shards()
                .map(|s| lb.shard_pooling(s, &profile))
                .fold(0.0f64, f64::max);
            let hottest = spec
                .tables
                .iter()
                .map(|t| profile.of(t.id))
                .fold(0.0f64, f64::max);
            let bound =
                profile.total() / n as f64 + (1.0 - 1.0 / n as f64) * hottest;
            prop_assert!(
                max_load <= bound + 1e-9,
                "max {max_load} vs list-scheduling bound {bound}"
            );
        }
    }

    /// Row-sharded placements distribute capacity equally across parts.
    #[test]
    fn row_shard_parts_split_capacity(spec in arb_spec()) {
        let profile = PoolingProfile::from_spec(&spec);
        for n in [4usize, 8] {
            if n < spec.nets.len() {
                continue;
            }
            let Ok(p) = plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(n)) else {
                continue;
            };
            for placement in p.placements() {
                if placement.is_row_sharded() {
                    let t = spec.table(placement.table);
                    let Location::Shards(shards) = &placement.location else { unreachable!() };
                    for &s in shards {
                        let contribution = t.bytes() as f64 / shards.len() as f64;
                        prop_assert!(
                            p.shard_capacity_bytes(s, &spec) >= contribution - 1e-9
                        );
                    }
                }
            }
        }
    }
}
