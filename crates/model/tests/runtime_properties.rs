//! End-to-end properties of the intra-op runtime at the model level:
//! predictions are bit-exact for any worker count (DESIGN §3.3's
//! determinism contract), consumer-count moves never change results,
//! and steady-state requests stop allocating f32 backing stores once
//! the shared buffer pool is warm.

use dlrm_model::builder::blobs;
use dlrm_model::graph::{NoopObserver, SparseInput};
use dlrm_model::{
    build_model, Blob, EmbeddingTable, Model, ModelSpec, NetId, NetSpec, Pool, RuntimeCtx,
    TableId, TableSpec, Workspace,
};
use dlrm_runtime::KernelDispatch;
use dlrm_sim::SimRng;
use dlrm_tensor::Matrix;
use std::collections::HashMap;
use std::sync::Arc;

/// A compact single-net spec whose FC layers and SLS bags are large
/// enough (at `batch` items) to clear the kernels' parallel-grain
/// thresholds, so multi-worker pools genuinely fork.
fn spec(n_tables: usize) -> ModelSpec {
    let tables: Vec<TableSpec> = (0..n_tables)
        .map(|i| TableSpec {
            id: TableId(i),
            name: format!("tbl_{i}"),
            rows: 200,
            dim: 16,
            net: NetId(0),
            pooling_factor: 10.0,
        })
        .collect();
    let s = ModelSpec {
        name: "runtime-prop".into(),
        dense_features: 64,
        tables,
        nets: vec![NetSpec {
            id: NetId(0),
            name: "main".into(),
            bottom_mlp: vec![128, 64],
            top_mlp: vec![128, 64, 1],
            takes_prev_output: false,
        }],
        default_batch_size: 256,
        mean_items_per_request: 256.0,
    };
    s.validate().expect("spec is well-formed");
    s
}

/// Deterministic request inputs: a dense feature matrix plus one
/// sparse bag set per table (8–15 lookups per item, so a 256-item
/// batch crosses the SLS parallel threshold of 2048 lookups).
fn inputs(rng: &mut SimRng, spec: &ModelSpec, batch: usize) -> (Matrix, Vec<SparseInput>) {
    let dense_data: Vec<f32> = (0..batch * spec.dense_features)
        .map(|_| rng.next_range(-1.0, 1.0) as f32)
        .collect();
    let dense = Matrix::from_vec(batch, spec.dense_features, dense_data);
    let sparse = spec
        .tables
        .iter()
        .map(|t| {
            let lengths: Vec<u32> = (0..batch).map(|_| 8 + rng.next_index(8) as u32).collect();
            let total: usize = lengths.iter().map(|&l| l as usize).sum();
            let indices: Vec<u64> = (0..total).map(|_| rng.next_u64_below(t.rows)).collect();
            SparseInput { indices, lengths }
        })
        .collect();
    (dense, sparse)
}

fn load(ws: &mut Workspace, spec: &ModelSpec, dense: &Matrix, sparse: &[SparseInput]) {
    ws.put(blobs::DENSE_INPUT, Blob::Dense(dense.clone()));
    for (t, s) in spec.tables.iter().zip(sparse) {
        ws.put(blobs::sparse_input(t), Blob::Sparse(s.clone()));
    }
}

/// One request on a given context, overlapped executor.
fn run_once(
    model: &Model,
    ctx: &RuntimeCtx,
    counts: Option<&Arc<HashMap<String, usize>>>,
    dense: &Matrix,
    sparse: &[SparseInput],
) -> Matrix {
    let mut ws = Workspace::with_ctx(ctx.clone());
    if let Some(c) = counts {
        ws.set_consumer_counts(Arc::clone(c));
    }
    load(&mut ws, &model.spec, dense, sparse);
    let pred = model.run_overlapped(&mut ws, &mut NoopObserver).expect("run");
    ws.recycle_all();
    pred
}

#[test]
fn predictions_bit_exact_across_worker_counts() {
    let spec = spec(6);
    let model = build_model(&spec, 17).expect("build");
    let mut rng = SimRng::seed_from(0x52_55_4E).fork(1);
    let (dense, sparse) = inputs(&mut rng, &spec, 256);

    // Oracle: the plain sequential executor, no runtime context at all.
    let mut ws = Workspace::new();
    load(&mut ws, &spec, &dense, &sparse);
    let oracle = model.run(&mut ws, &mut NoopObserver).expect("oracle run");
    assert_eq!(oracle.rows(), 256);

    for workers in [1, 2, 4, 8] {
        let ctx = RuntimeCtx::new(Pool::new(workers));
        let pred = run_once(&model, &ctx, None, &dense, &sparse);
        assert_eq!(pred, oracle, "{workers} workers vs sequential oracle");
    }
}

/// The SparseLengthsSum row-accumulate is element-wise, so the AVX2
/// tier must be bitwise-equal to the scalar kernel — across ragged
/// embedding dims (not multiples of 8), empty bags, and every worker
/// count. Skips on hosts without AVX2.
#[test]
fn sls_avx2_matches_scalar_bitwise_with_empty_bags_and_ragged_dims() {
    let Some(avx2) = KernelDispatch::forced_avx2() else {
        return;
    };
    let mut rng = SimRng::seed_from(0x52_55_4E).fork(4);
    for dim in [1u32, 3, 8, 13, 16, 27, 64] {
        let table = EmbeddingTable::seeded("simd-sls", 500, dim, 7 + u64::from(dim));
        // 300 bags averaging ~10 lookups clears the 2048-lookup parallel
        // threshold; every 5th bag is empty (absent-feature semantics).
        let lengths: Vec<u32> = (0..300)
            .map(|b| if b % 5 == 0 { 0 } else { 8 + rng.next_index(8) as u32 })
            .collect();
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        let indices: Vec<u64> = (0..total).map(|_| rng.next_u64_below(500)).collect();
        let oracle = table.sparse_lengths_sum_par(
            &indices,
            &lengths,
            &Pool::with_dispatch(1, KernelDispatch::scalar()),
        );
        for workers in [1, 2, 4, 8] {
            let got =
                table.sparse_lengths_sum_par(&indices, &lengths, &Pool::with_dispatch(workers, avx2));
            assert_eq!(got, oracle, "dim {dim} at {workers} workers");
        }
    }
}

/// Whole-model predictions under forced-AVX2 dispatch are bitwise
/// identical to forced-scalar dispatch: every kernel tier the graph
/// touches (GEMM, transb GEMM, SLS) is exact by construction.
#[test]
fn predictions_bit_exact_across_dispatch_tiers() {
    let Some(avx2) = KernelDispatch::forced_avx2() else {
        return;
    };
    let spec = spec(4);
    let model = build_model(&spec, 41).expect("build");
    let mut rng = SimRng::seed_from(0x52_55_4E).fork(5);
    let (dense, sparse) = inputs(&mut rng, &spec, 128);
    let scalar_ctx = RuntimeCtx::new(Pool::with_dispatch(2, KernelDispatch::scalar()));
    let simd_ctx = RuntimeCtx::new(Pool::with_dispatch(2, avx2));
    let scalar_pred = run_once(&model, &scalar_ctx, None, &dense, &sparse);
    let simd_pred = run_once(&model, &simd_ctx, None, &dense, &sparse);
    assert_eq!(simd_pred, scalar_pred);
}

#[test]
fn consumer_count_moves_do_not_change_predictions() {
    let spec = spec(4);
    let model = build_model(&spec, 23).expect("build");
    let counts = Arc::new(model.consumer_counts());
    let mut rng = SimRng::seed_from(0x52_55_4E).fork(2);
    for case in 0..4 {
        let (dense, sparse) = inputs(&mut rng, &spec, 32);
        let ctx = RuntimeCtx::sequential();
        let cloned = run_once(&model, &ctx, None, &dense, &sparse);
        let moved = run_once(&model, &ctx, Some(&counts), &dense, &sparse);
        assert_eq!(moved, cloned, "case {case}");
    }
}

#[test]
fn steady_state_requests_allocate_no_fresh_stores() {
    let spec = spec(4);
    let model = build_model(&spec, 31).expect("build");
    let counts = Arc::new(model.consumer_counts());
    let ctx = RuntimeCtx::sequential();
    let mut rng = SimRng::seed_from(0x52_55_4E).fork(3);
    let (dense, sparse) = inputs(&mut rng, &spec, 64);

    let serve = || {
        let pred = run_once(&model, &ctx, Some(&counts), &dense, &sparse);
        // The caller is done with the prediction: hand its store back,
        // as the serving workers do.
        ctx.buffers.release(pred.into_vec());
    };

    // Warm the pool: the first requests populate it with every dense
    // store the graph needs.
    for _ in 0..3 {
        serve();
    }
    let fresh_after_warmup = ctx.buffers.fresh_allocs();
    let reuses_after_warmup = ctx.buffers.reuses();

    for _ in 0..5 {
        serve();
    }
    assert_eq!(
        ctx.buffers.fresh_allocs(),
        fresh_after_warmup,
        "steady-state requests must not allocate fresh f32 stores"
    );
    assert!(
        ctx.buffers.reuses() > reuses_after_warmup,
        "steady-state requests must be served from the buffer pool"
    );
}
