//! Property-style round-trip tests for the model publishing format,
//! driven by deterministic [`SimRng`] case generation (the workspace's
//! in-tree replacement for proptest: same invariants, fixed seeds, so
//! every CI run exercises the identical case set).

use dlrm_model::publish::{spec_from_text, spec_to_text};
use dlrm_model::{ModelSpec, NetId, NetSpec, TableId, TableSpec};
use dlrm_sim::SimRng;

const CASES: usize = 128;

/// Generates an arbitrary-but-valid-shaped spec from one RNG stream
/// (mirrors the old proptest `arb_spec` strategy).
fn arb_spec(rng: &mut SimRng) -> ModelSpec {
    let n_nets = 1 + rng.next_index(3);
    let n_tables = 1 + rng.next_index(29);
    let tables: Vec<TableSpec> = (0..n_tables)
        .map(|i| TableSpec {
            id: TableId(i),
            name: format!("tbl_{i}"),
            rows: 1 + rng.next_u64_below(999_999),
            dim: 1 + rng.next_index(255) as u32,
            net: NetId(i % n_nets),
            pooling_factor: rng.next_range(0.0, 1e6),
        })
        .collect();
    let nets = (0..n_nets)
        .map(|i| NetSpec {
            id: NetId(i),
            name: format!("net_{i}"),
            bottom_mlp: vec![64, 32],
            top_mlp: vec![64, 1],
            takes_prev_output: i > 0,
        })
        .collect();
    ModelSpec {
        name: "prop-model".into(),
        dense_features: 1 + rng.next_index(511),
        tables,
        nets,
        default_batch_size: 1 + rng.next_index(255),
        mean_items_per_request: rng.next_range(0.5, 5000.0),
    }
}

#[test]
fn publish_round_trips_exactly() {
    let mut rng = SimRng::seed_from(0x90_B115).fork(1);
    for case in 0..CASES {
        let spec = arb_spec(&mut rng);
        if spec.validate().is_err() {
            continue;
        }
        let text = spec_to_text(&spec);
        let back = spec_from_text(&text).expect("parse back");
        assert_eq!(back, spec, "case {case}");
    }
}

#[test]
fn publish_is_stable_under_reserialization() {
    let mut rng = SimRng::seed_from(0x90_B115).fork(2);
    for case in 0..CASES {
        let spec = arb_spec(&mut rng);
        if spec.validate().is_err() {
            continue;
        }
        let once = spec_to_text(&spec);
        let twice = spec_to_text(&spec_from_text(&once).unwrap());
        assert_eq!(once, twice, "case {case}");
    }
}

/// Arbitrary garbage never panics the parser — it errors.
#[test]
fn parser_is_total() {
    let mut rng = SimRng::seed_from(0x90_B115).fork(3);
    for _ in 0..CASES {
        let len = rng.next_index(200);
        let garbage: String = (0..len)
            .map(|_| {
                // Printable-ish ASCII plus the format's separators and a
                // few multi-byte characters.
                const ALPHABET: &[char] =
                    &['a', 'Z', '0', '9', ' ', '\t', '\n', '=', ':', ',', '.', '-', '§', '⊕'];
                ALPHABET[rng.next_index(ALPHABET.len())]
            })
            .collect();
        let _ = spec_from_text(&garbage);
        let with_header = format!("dlrm-model v1\n{garbage}");
        let _ = spec_from_text(&with_header);
    }
}

/// Mutating single lines of a valid document never panics the parser.
#[test]
fn parser_survives_line_corruption() {
    let mut rng = SimRng::seed_from(0x90_B115).fork(4);
    let spec = arb_spec(&mut rng);
    let text = spec_to_text(&spec);
    let lines: Vec<&str> = text.lines().collect();
    for drop_line in 0..lines.len() {
        let corrupted: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_line)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = spec_from_text(&corrupted);
    }
}
