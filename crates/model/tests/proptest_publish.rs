//! Property-based round-trip tests for the model publishing format.

use dlrm_model::publish::{spec_from_text, spec_to_text};
use dlrm_model::{ModelSpec, NetId, NetSpec, TableId, TableSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    (
        1usize..=3,
        prop::collection::vec(
            (1u64..1_000_000, 1u32..256, 0.0f64..1e6),
            1..30,
        ),
        1usize..512,
        1usize..256,
        0.5f64..5000.0,
    )
        .prop_map(|(n_nets, raw, dense, batch, mean_items)| {
            let tables: Vec<TableSpec> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (rows, dim, pooling))| TableSpec {
                    id: TableId(i),
                    name: format!("tbl_{i}"),
                    rows,
                    dim,
                    net: NetId(i % n_nets),
                    pooling_factor: pooling,
                })
                .collect();
            let nets = (0..n_nets)
                .map(|i| NetSpec {
                    id: NetId(i),
                    name: format!("net_{i}"),
                    bottom_mlp: vec![64, 32],
                    top_mlp: vec![64, 1],
                    takes_prev_output: i > 0,
                })
                .collect();
            ModelSpec {
                name: "prop-model".into(),
                dense_features: dense,
                tables,
                nets,
                default_batch_size: batch,
                mean_items_per_request: mean_items,
            }
        })
}

proptest! {
    #[test]
    fn publish_round_trips_exactly(spec in arb_spec()) {
        prop_assume!(spec.validate().is_ok());
        let text = spec_to_text(&spec);
        let back = spec_from_text(&text).expect("parse back");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn publish_is_stable_under_reserialization(spec in arb_spec()) {
        prop_assume!(spec.validate().is_ok());
        let once = spec_to_text(&spec);
        let twice = spec_to_text(&spec_from_text(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// Arbitrary garbage never panics the parser — it errors.
    #[test]
    fn parser_is_total(garbage in "\\PC{0,200}") {
        let _ = spec_from_text(&garbage);
        let with_header = format!("dlrm-model v1\n{garbage}");
        let _ = spec_from_text(&with_header);
    }
}
