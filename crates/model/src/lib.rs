//! Executable DLRM-like recommendation models and their specifications.
//!
//! This crate is the reproduction's substitute for the paper's Caffe2
//! models. It provides two representations of a deep recommendation
//! model:
//!
//! 1. **Specification** ([`ModelSpec`]): the aggregate attributes that the
//!    entire characterization depends on — embedding-table inventory
//!    (row counts, vector dimensions, per-table expected pooling factor,
//!    net membership), dense-layer architecture, and batching defaults.
//!    The published models RM1, RM2 and RM3 are regenerated from their
//!    printed statistics by [`rm::rm1`], [`rm::rm2`] and [`rm::rm3`].
//!
//! 2. **Executable graph** ([`graph::NetDef`] executed over a
//!    [`graph::Workspace`]): a Caffe2-style operator list over named
//!    blobs, with real `f32` kernels ([`ops`]) including the
//!    `SparseLengthsSum` family. The sharding partitioner (crate
//!    `dlrm-sharding`) rewrites these graphs, replacing sparse operators
//!    with RPC operators exactly as §III of the paper describes.
//!
//! Embedding tables at paper scale (138–200 GB) are **virtual**: the spec
//! carries their logical shape for the simulator, and
//! [`ModelSpec::scaled_to_bytes`] produces a proportionally downsized spec
//! that can be materialized in memory — mirroring the paper's own
//! down-scaling of oversized tables to fit a single 256 GB server (§V-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod embedding;
pub mod footprint;
pub mod graph;
pub mod growth;
pub mod ops;
pub mod publish;
pub mod rm;
pub mod spec;

pub use builder::{build_model, build_model_with_options, InteractionKind};
pub use dlrm_runtime::{Pool, RuntimeCtx};
pub use embedding::EmbeddingTable;
pub use footprint::Footprint;
pub use graph::{consumer_counts_of, Blob, Model, NetDef, Workspace};
pub use spec::{ModelSpec, NetId, NetSpec, OpGroup, TableId, TableSpec};

/// Bytes per single-precision float; all paper models are served
/// uncompressed in FP32 (§V-A).
pub const F32_BYTES: u64 = 4;

/// One gibibyte, the capacity unit used throughout the paper's tables.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
