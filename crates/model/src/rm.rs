//! Generators for the study's three production-representative models.
//!
//! The paper publishes each model's aggregate attributes (§V-A, Fig. 5,
//! Table II); these generators synthesize table inventories matching
//! them:
//!
//! | | RM1 | RM2 | RM3 |
//! |---|---|---|---|
//! | tables | 257 | 133 | 39 |
//! | total size | 194.05 GiB (200 GB) | 138 GB | 200 GB |
//! | largest table | 3.6 GB | 6.7 GB | 178.8 GB |
//! | nets | 2 | 2 | 1 |
//! | size distribution | long tail | long tail | one dominant table |
//! | sparse-op compute share | 9.7% | 9.6% | 3.1% |
//!
//! RM1's per-net split comes from Table II's 2-shard NSBP row: net 1
//! (user) holds 72 tables / 33.58 GiB / pooling ≈ 126 653, net 2
//! (content) holds 185 tables / 160.47 GiB / pooling ≈ 8 011 — net 2
//! consumes 4.75× the memory but does 6.3% of the compute (§VII-C).
//! RM3's capacity is dominated by a single table with pooling factor 1
//! (§V-A), so sharding it only row-partitions that one table.

use crate::spec::{ModelSpec, NetId, NetSpec, TableId, TableSpec};
use crate::GIB;
use dlrm_sim::SimRng;

/// Parameters for synthesizing one net's table inventory.
struct NetTables {
    net: NetId,
    prefix: &'static str,
    count: usize,
    total_bytes: f64,
    /// Forced size of the largest table (bytes); the rest follow a
    /// long-tailed distribution normalized to the remaining budget.
    max_bytes: f64,
    pooling_sum: f64,
    /// Lognormal sigma for the size distribution (bigger = heavier tail).
    size_sigma: f64,
    /// Pareto alpha for pooling-factor skew (smaller = hotter heads).
    pooling_alpha: f64,
}

/// Scales `raw` so it sums to `budget` with no element above `cap`,
/// redistributing clamped mass (water-filling).
fn waterfill(raw: &[f64], budget: f64, cap: f64) -> Vec<f64> {
    let n = raw.len();
    let mut clamped = vec![false; n];
    let mut out = vec![0.0f64; n];
    loop {
        let free_budget = budget - cap * clamped.iter().filter(|&&c| c).count() as f64;
        let free_raw: f64 = raw
            .iter()
            .zip(&clamped)
            .filter(|(_, &c)| !c)
            .map(|(r, _)| *r)
            .sum();
        let scale = if free_raw > 0.0 { free_budget / free_raw } else { 0.0 };
        let mut newly = false;
        for i in 0..n {
            if clamped[i] {
                out[i] = cap;
            } else {
                let s = raw[i] * scale;
                if s > cap {
                    clamped[i] = true;
                    newly = true;
                } else {
                    out[i] = s;
                }
            }
        }
        if !newly {
            return out;
        }
    }
}

fn synth_tables(rng: &mut SimRng, params: &NetTables, next_id: &mut usize) -> Vec<TableSpec> {
    assert!(params.count >= 1);
    let dims = [32u32, 64, 64, 128];

    // Long-tailed raw sizes for the non-max tables, water-filled to the
    // remaining byte budget: tables that would exceed the designated
    // maximum are clamped and the freed budget redistributed, so the net
    // total matches the published capacity exactly.
    let n_rest = params.count - 1;
    let raw: Vec<f64> = (0..n_rest)
        .map(|_| (params.size_sigma * rng.next_standard_normal()).exp())
        .collect();
    let rest_budget = (params.total_bytes - params.max_bytes).max(0.0);
    let sizes_rest = waterfill(&raw, rest_budget, params.max_bytes * 0.95);

    // Pooling factors: Pareto-skewed, water-filled to the published sum
    // with no single table above 10% of the net's total — the paper's
    // load-balanced shards are near-perfectly equal (Table II), which is
    // only possible when no table's pooling exceeds a shard's share.
    let raw_pooling: Vec<f64> = (0..params.count)
        .map(|_| (1.0 - rng.next_f64()).powf(-1.0 / params.pooling_alpha))
        .collect();
    let pooling = waterfill(&raw_pooling, params.pooling_sum, params.pooling_sum * 0.10);

    let mut sizes = vec![params.max_bytes];
    sizes.extend(sizes_rest);

    sizes
        .into_iter()
        .zip(pooling)
        .enumerate()
        .map(|(i, (bytes, pf))| {
            let dim = dims[i % dims.len()];
            let rows = ((bytes / f64::from(dim) / 4.0).round() as u64).max(8);
            let id = TableId(*next_id);
            *next_id += 1;
            TableSpec {
                id,
                name: format!("{}_{i}", params.prefix),
                rows,
                dim,
                net: params.net,
                pooling_factor: pf,
            }
        })
        .collect()
}

fn two_net_mlps() -> Vec<NetSpec> {
    vec![
        NetSpec {
            id: NetId(0),
            name: "user".into(),
            bottom_mlp: vec![512, 256, 64],
            top_mlp: vec![512, 256, 32],
            takes_prev_output: false,
        },
        NetSpec {
            id: NetId(1),
            name: "content".into(),
            bottom_mlp: vec![512, 256, 64],
            top_mlp: vec![512, 256, 1],
            takes_prev_output: true,
        },
    ]
}

/// RM1: the most compute-intensive model. 257 tables, 194.05 GiB, long
/// tail of table sizes, two sequential nets with the user net doing ~94%
/// of pooling work in 17% of the capacity.
///
/// # Examples
///
/// ```
/// let rm1 = dlrm_model::rm::rm1();
/// assert_eq!(rm1.tables.len(), 257);
/// assert_eq!(rm1.nets.len(), 2);
/// ```
#[must_use]
pub fn rm1() -> ModelSpec {
    let mut rng = SimRng::seed_from(0x0052_4D31); // "RM1"
    let mut next_id = 0;
    let mut tables = synth_tables(
        &mut rng,
        &NetTables {
            net: NetId(0),
            prefix: "user",
            count: 72,
            total_bytes: 33.58 * GIB,
            max_bytes: 1.9 * GIB,
            pooling_sum: 126_652.7,
            size_sigma: 1.1,
            pooling_alpha: 1.1,
        },
        &mut next_id,
    );
    tables.extend(synth_tables(
        &mut rng,
        &NetTables {
            net: NetId(1),
            prefix: "content",
            count: 185,
            total_bytes: 160.47 * GIB,
            max_bytes: 3.6 * GIB * 0.931, // largest model-wide table ≈ 3.6 GB
            pooling_sum: 8_010.7,
            size_sigma: 1.2,
            pooling_alpha: 1.3,
        },
        &mut next_id,
    ));
    // Table ids were assigned net-0-first; re-sort not needed (already
    // dense and ordered).
    let spec = ModelSpec {
        name: "RM1".into(),
        dense_features: 256,
        tables,
        nets: two_net_mlps(),
        default_batch_size: 64,
        mean_items_per_request: 450.0,
    };
    debug_assert_eq!(spec.validate(), Ok(()));
    spec
}

/// RM2: architecturally similar to RM1 (two nets, long-tailed tables)
/// with fewer tables (133), 138 GB total, largest table 6.7 GB, and
/// smaller requests.
#[must_use]
pub fn rm2() -> ModelSpec {
    let mut rng = SimRng::seed_from(0x0052_4D32);
    let mut next_id = 0;
    let total = 138.0 * 1e9; // 138 GB in bytes
    let user_share = 0.175; // mirror RM1's capacity split
    let mut tables = synth_tables(
        &mut rng,
        &NetTables {
            net: NetId(0),
            prefix: "user",
            count: 38,
            total_bytes: total * user_share,
            max_bytes: 2.4 * GIB,
            pooling_sum: 50_000.0,
            size_sigma: 1.1,
            pooling_alpha: 1.1,
        },
        &mut next_id,
    );
    tables.extend(synth_tables(
        &mut rng,
        &NetTables {
            net: NetId(1),
            prefix: "content",
            count: 95,
            total_bytes: total * (1.0 - user_share),
            max_bytes: 6.7 * 1e9,
            pooling_sum: 4_000.0,
            size_sigma: 1.2,
            pooling_alpha: 1.3,
        },
        &mut next_id,
    ));
    let spec = ModelSpec {
        name: "RM2".into(),
        dense_features: 256,
        tables,
        nets: two_net_mlps(),
        default_batch_size: 64,
        mean_items_per_request: 205.0,
    };
    debug_assert_eq!(spec.validate(), Ok(()));
    spec
}

/// RM3: 39 tables, 200 GB, single net, dominated by one 178.8 GB table
/// with pooling factor 1 — the architecture for which sharding cannot
/// parallelize work (§VI-E).
#[must_use]
pub fn rm3() -> ModelSpec {
    let mut rng = SimRng::seed_from(0x0052_4D33);
    let mut next_id = 0;

    // The dominant table first (id 0): 178.8 GB, dim 64, pooling 1.
    let dominant_bytes = 178.8 * 1e9;
    let dim = 64u32;
    let dominant = TableSpec {
        id: TableId(next_id),
        name: "dominant_0".into(),
        rows: (dominant_bytes / f64::from(dim) / 4.0).round() as u64,
        dim,
        net: NetId(0),
        pooling_factor: 1.0,
    };
    next_id += 1;

    let mut tables = vec![dominant];
    tables.extend(synth_tables(
        &mut rng,
        &NetTables {
            net: NetId(0),
            prefix: "small",
            count: 38,
            total_bytes: 200.0 * 1e9 - dominant_bytes,
            max_bytes: 2.4 * 1e9,
            pooling_sum: 800.0,
            size_sigma: 0.9,
            pooling_alpha: 1.5,
        },
        &mut next_id,
    ));

    let spec = ModelSpec {
        name: "RM3".into(),
        dense_features: 128,
        tables,
        nets: vec![NetSpec {
            id: NetId(0),
            name: "main".into(),
            bottom_mlp: vec![256, 64],
            top_mlp: vec![256, 64, 1],
            takes_prev_output: false,
        }],
        default_batch_size: 128,
        mean_items_per_request: 40.0,
    };
    debug_assert_eq!(spec.validate(), Ok(()));
    spec
}

/// All three study models, in publication order.
#[must_use]
pub fn all() -> Vec<ModelSpec> {
    vec![rm1(), rm2(), rm3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm1_matches_published_aggregates() {
        let m = rm1();
        assert_eq!(m.tables.len(), 257);
        assert!((m.total_gib() - 194.05).abs() < 2.0, "total {}", m.total_gib());
        // Largest table ≈ 3.6 GB (paper reports GB, we track GiB).
        let max_gb = m.tables.iter().map(|t| t.bytes() as f64 / 1e9).fold(0.0, f64::max);
        assert!((max_gb - 3.6).abs() < 0.4, "max {max_gb} GB");
        // Per-net structure.
        assert_eq!(m.tables_of_net(NetId(0)).count(), 72);
        assert_eq!(m.tables_of_net(NetId(1)).count(), 185);
        let user_pool: f64 = m.tables_of_net(NetId(0)).map(|t| t.pooling_factor).sum();
        let content_pool: f64 = m.tables_of_net(NetId(1)).map(|t| t.pooling_factor).sum();
        assert!((user_pool - 126_652.7).abs() < 1.0);
        assert!((content_pool - 8_010.7).abs() < 1.0);
        // §VII-C: content net has ~4.75× the capacity, ~6.3% of the work.
        let user_gib: f64 = m.tables_of_net(NetId(0)).map(|t| t.gib()).sum();
        let content_gib: f64 = m.tables_of_net(NetId(1)).map(|t| t.gib()).sum();
        assert!((content_gib / user_gib - 4.75).abs() < 0.25);
        assert!((content_pool / user_pool - 0.063).abs() < 0.01);
    }

    #[test]
    fn rm2_matches_published_aggregates() {
        let m = rm2();
        assert_eq!(m.tables.len(), 133);
        let total_gb = m.total_bytes() as f64 / 1e9;
        assert!((total_gb - 138.0 / 1e9 * 1e9).abs() < 139.0 * 0.03, "total {total_gb} GB");
        let max_gb = m.tables.iter().map(|t| t.bytes() as f64 / 1e9).fold(0.0, f64::max);
        assert!((max_gb - 6.7).abs() < 0.5, "max {max_gb} GB");
        assert_eq!(m.nets.len(), 2);
    }

    #[test]
    fn rm3_matches_published_aggregates() {
        let m = rm3();
        assert_eq!(m.tables.len(), 39);
        let total_gb = m.total_bytes() as f64 / 1e9;
        assert!((total_gb - 200.0).abs() < 4.0, "total {total_gb} GB");
        let dominant = &m.tables[0];
        assert!((dominant.bytes() as f64 / 1e9 - 178.8).abs() < 0.5);
        assert_eq!(dominant.pooling_factor, 1.0);
        assert_eq!(m.nets.len(), 1);
        // Dominant table >99.9% of nothing... it is ~89% of capacity and
        // sparse ops are >99.9% of model capacity overall — check
        // dominance instead.
        assert!(dominant.bytes() as f64 / m.total_bytes() as f64 > 0.85);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(rm1(), rm1());
        assert_eq!(rm2(), rm2());
        assert_eq!(rm3(), rm3());
    }

    #[test]
    fn long_tail_shape_rm1_vs_rm3() {
        // RM1: largest table is a small fraction of total (long tail);
        // RM3: largest table dominates.
        let rm1 = rm1();
        let rm3 = rm3();
        let frac = |m: &ModelSpec| {
            m.tables.iter().map(|t| t.bytes()).max().unwrap() as f64 / m.total_bytes() as f64
        };
        assert!(frac(&rm1) < 0.05, "rm1 max fraction {}", frac(&rm1));
        assert!(frac(&rm3) > 0.85, "rm3 max fraction {}", frac(&rm3));
    }

    #[test]
    fn all_specs_validate() {
        for m in all() {
            assert_eq!(m.validate(), Ok(()), "{}", m.name);
        }
    }

    #[test]
    fn scaled_copies_remain_valid_and_proportional() {
        for m in all() {
            let scaled = m.scaled_to_bytes(32 << 20);
            assert_eq!(scaled.validate(), Ok(()));
            assert!(scaled.total_bytes() <= (33 << 20));
            assert_eq!(scaled.tables.len(), m.tables.len());
        }
    }
}
