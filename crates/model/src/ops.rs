//! Concrete graph operators: the DLRM operator vocabulary.

use crate::graph::{Blob, GraphError, Operator, Workspace};
use crate::spec::OpGroup;
use crate::EmbeddingTable;
use dlrm_sim::SimRng;
use dlrm_tensor::{concat_cols_into, matmul_transb_into, relu_inplace, sigmoid_inplace, Matrix};
use std::sync::Arc;

/// Fully-connected layer: `Y = X · Wᵀ + b`.
///
/// Weights are stored one output neuron per row (`out × in`), matching
/// Caffe2's `FC` operator layout.
#[derive(Debug)]
pub struct FullyConnected {
    name: String,
    input: String,
    output: String,
    weights: Matrix,
    bias: Vec<f32>,
}

impl FullyConnected {
    /// Creates an FC layer with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.rows()`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
        weights: Matrix,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(
            bias.len(),
            weights.rows(),
            "bias length must equal output width"
        );
        Self {
            name: name.into(),
            input: input.into(),
            output: output.into(),
            weights,
            bias,
        }
    }

    /// Creates an FC layer with reproducible random parameters scaled by
    /// `1/sqrt(in_dim)` (keeps activations bounded through deep stacks).
    #[must_use]
    pub fn seeded(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let scale = 1.0 / (in_dim.max(1) as f32).sqrt();
        let data: Vec<f32> = (0..in_dim * out_dim)
            .map(|_| (rng.next_f32() - 0.5) * 2.0 * scale)
            .collect();
        let bias: Vec<f32> = (0..out_dim)
            .map(|_| (rng.next_f32() - 0.5) * 0.1)
            .collect();
        Self::new(
            name,
            input,
            output,
            Matrix::from_vec(out_dim, in_dim, data),
            bias,
        )
    }

    /// Output width (number of neurons).
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }
}

impl Operator for FullyConnected {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::Fc
    }
    fn inputs(&self) -> Vec<String> {
        vec![self.input.clone()]
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let x = ws.dense(&self.input, &self.name)?;
        if x.cols() != self.weights.cols() {
            return Err(GraphError::OpFailed {
                op: self.name.clone(),
                message: format!(
                    "input width {} != weight width {}",
                    x.cols(),
                    self.weights.cols()
                ),
            });
        }
        let mut y = ws.alloc_dense(x.rows(), self.weights.rows());
        matmul_transb_into(x, &self.weights, &mut y, ws.pool());
        y.add_row_bias(&self.bias);
        ws.put(self.output.clone(), Blob::Dense(y));
        Ok(())
    }
}

/// Element-wise ReLU.
#[derive(Debug)]
pub struct Relu {
    name: String,
    input: String,
    output: String,
}

impl Relu {
    /// Creates a ReLU operator.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            input: input.into(),
            output: output.into(),
        }
    }
}

impl Operator for Relu {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::Activation
    }
    fn inputs(&self) -> Vec<String> {
        vec![self.input.clone()]
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let mut m = ws.take_dense(&self.input, &self.name)?;
        relu_inplace(&mut m);
        ws.put(self.output.clone(), Blob::Dense(m));
        Ok(())
    }
}

/// Element-wise logistic sigmoid (the final ranking probability).
#[derive(Debug)]
pub struct Sigmoid {
    name: String,
    input: String,
    output: String,
}

impl Sigmoid {
    /// Creates a sigmoid operator.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            input: input.into(),
            output: output.into(),
        }
    }
}

impl Operator for Sigmoid {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::Activation
    }
    fn inputs(&self) -> Vec<String> {
        vec![self.input.clone()]
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let mut m = ws.take_dense(&self.input, &self.name)?;
        sigmoid_inplace(&mut m);
        ws.put(self.output.clone(), Blob::Dense(m));
        Ok(())
    }
}

/// Feature-interaction assembly: concatenates dense blobs column-wise
/// (pooled embeddings + bottom-MLP output [+ previous net's output]).
#[derive(Debug)]
pub struct Concat {
    name: String,
    inputs: Vec<String>,
    output: String,
}

impl Concat {
    /// Creates a concat operator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
    ) -> Self {
        assert!(!inputs.is_empty(), "concat needs at least one input");
        Self {
            name: name.into(),
            inputs,
            output: output.into(),
        }
    }
}

impl Operator for Concat {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::TensorTransform
    }
    fn inputs(&self) -> Vec<String> {
        self.inputs.clone()
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let mut parts = Vec::with_capacity(self.inputs.len());
        for i in &self.inputs {
            parts.push(ws.dense(i, &self.name)?);
        }
        let rows = parts[0].rows();
        if parts.iter().any(|p| p.rows() != rows) {
            return Err(GraphError::OpFailed {
                op: self.name.clone(),
                message: "concat inputs disagree on batch size".into(),
            });
        }
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = ws.alloc_dense(rows, total_cols);
        concat_cols_into(&parts, &mut out);
        drop(parts);
        ws.put(self.output.clone(), Blob::Dense(out));
        Ok(())
    }
}

/// The SparseLengthsSum operator: reads a sparse input blob, pools rows
/// of its embedding table, writes a dense `batch × dim` blob.
///
/// These are the operators the partitioner relocates to sparse shards;
/// they account for >97% of model capacity but only ~3–10% of operator
/// compute (Fig. 4).
#[derive(Debug)]
pub struct SparseLengthsSum {
    name: String,
    table: Arc<EmbeddingTable>,
    input: String,
    output: String,
}

impl SparseLengthsSum {
    /// Creates an SLS operator over `table`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        table: Arc<EmbeddingTable>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            table,
            input: input.into(),
            output: output.into(),
        }
    }

    /// The table this operator pools from.
    #[must_use]
    pub fn table(&self) -> &Arc<EmbeddingTable> {
        &self.table
    }

    /// Input sparse-blob name.
    #[must_use]
    pub fn input_blob(&self) -> &str {
        &self.input
    }

    /// Output dense-blob name.
    #[must_use]
    pub fn output_blob(&self) -> &str {
        &self.output
    }
}

impl Operator for SparseLengthsSum {
    fn as_sparse_lengths_sum(&self) -> Option<&SparseLengthsSum> {
        Some(self)
    }

    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::Sls
    }
    fn inputs(&self) -> Vec<String> {
        vec![self.input.clone()]
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let s = ws.sparse(&self.input, &self.name)?;
        let max = s.indices.iter().copied().max().unwrap_or(0);
        if !s.indices.is_empty() && max as usize >= self.table.rows() {
            return Err(GraphError::OpFailed {
                op: self.name.clone(),
                message: format!(
                    "index {max} out of range for {} rows",
                    self.table.rows()
                ),
            });
        }
        let mut out = ws.alloc_dense(s.lengths.len(), self.table.dim());
        self.table
            .sparse_lengths_sum_into(&s.indices, &s.lengths, &mut out, ws.pool());
        ws.put(self.output.clone(), Blob::Dense(out));
        Ok(())
    }
}

/// DLRM's dot-product feature interaction: given the bottom-MLP output
/// and the pooled embeddings — all `batch × d` with one shared `d` —
/// emits the bottom output concatenated with every pairwise dot product
/// `zᵢ · zⱼ (i < j)`, per batch element.
///
/// The paper's models use the traditional architecture of Fig. 2a (the
/// builder's default concat interaction); this operator is provided for
/// the open-source DLRM's interaction so interaction choice can be
/// ablated. The sharding partitioner is interaction-agnostic.
#[derive(Debug)]
pub struct DotInteraction {
    name: String,
    inputs: Vec<String>,
    output: String,
}

impl DotInteraction {
    /// Creates a dot-interaction operator; `inputs[0]` is the bottom-MLP
    /// output, the rest are pooled embeddings.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given (no pairs to interact).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
    ) -> Self {
        assert!(inputs.len() >= 2, "dot interaction needs at least two inputs");
        Self {
            name: name.into(),
            inputs,
            output: output.into(),
        }
    }

    /// Output feature width for `n` inputs of dimension `d`.
    #[must_use]
    pub fn output_width(n: usize, d: usize) -> usize {
        d + n * (n - 1) / 2
    }
}

impl Operator for DotInteraction {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::TensorTransform
    }
    fn inputs(&self) -> Vec<String> {
        self.inputs.clone()
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let mut parts = Vec::with_capacity(self.inputs.len());
        for i in &self.inputs {
            parts.push(ws.dense(i, &self.name)?);
        }
        let batch = parts[0].rows();
        let d = parts[0].cols();
        for (k, p) in parts.iter().enumerate() {
            if p.rows() != batch || p.cols() != d {
                return Err(GraphError::OpFailed {
                    op: self.name.clone(),
                    message: format!(
                        "input {k} is {}x{}, expected {batch}x{d} (dot interaction \
                         requires a uniform embedding dimension)",
                        p.rows(),
                        p.cols()
                    ),
                });
            }
        }
        let n = parts.len();
        let width = Self::output_width(n, d);
        let mut out = ws.alloc_dense(batch, width);
        for b in 0..batch {
            let row = out.row_mut(b);
            row[..d].copy_from_slice(&parts[0].row(b)[..d]);
            let mut col = d;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dot: f32 = parts[i]
                        .row(b)
                        .iter()
                        .zip(parts[j].row(b))
                        .map(|(a, c)| a * c)
                        .sum();
                    row[col] = dot;
                    col += 1;
                }
            }
        }
        ws.put(self.output.clone(), Blob::Dense(out));
        Ok(())
    }
}

/// Element-wise sum of N same-shaped dense blobs.
///
/// Used by the partitioner to recombine the partial pools of a
/// row-sharded table: sum pooling is additive, so summing each shard's
/// partial `SparseLengthsSum` output reproduces the whole-table result.
#[derive(Debug)]
pub struct ElementwiseSum {
    name: String,
    inputs: Vec<String>,
    output: String,
}

impl ElementwiseSum {
    /// Creates an element-wise sum operator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
    ) -> Self {
        assert!(!inputs.is_empty(), "sum needs at least one input");
        Self {
            name: name.into(),
            inputs,
            output: output.into(),
        }
    }
}

impl Operator for ElementwiseSum {
    fn name(&self) -> &str {
        &self.name
    }
    fn group(&self) -> OpGroup {
        OpGroup::TensorTransform
    }
    fn inputs(&self) -> Vec<String> {
        self.inputs.clone()
    }
    fn outputs(&self) -> Vec<String> {
        vec![self.output.clone()]
    }
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
        let mut acc = ws.take_dense(&self.inputs[0], &self.name)?;
        for i in &self.inputs[1..] {
            let next = ws.dense(i, &self.name)?;
            if (next.rows(), next.cols()) != (acc.rows(), acc.cols()) {
                return Err(GraphError::OpFailed {
                    op: self.name.clone(),
                    message: format!(
                        "sum input {i} is {}x{}, expected {}x{}",
                        next.rows(),
                        next.cols(),
                        acc.rows(),
                        acc.cols()
                    ),
                });
            }
            acc.add_assign(next);
        }
        ws.put(self.output.clone(), Blob::Dense(acc));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NoopObserver, SparseInput};

    #[test]
    fn fc_computes_affine_map() {
        let fc = FullyConnected::new(
            "fc",
            "x",
            "y",
            Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]),
            vec![0.5, -0.5],
        );
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::from_rows(&[&[3.0, 4.0]])));
        fc.run(&mut ws).unwrap();
        let y = ws.dense("y", "t").unwrap();
        assert_eq!(y.row(0), &[7.5, 5.5]);
    }

    #[test]
    fn fc_reports_shape_mismatch() {
        let fc = FullyConnected::seeded("fc", "x", "y", 4, 2, 1);
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 3)));
        assert!(matches!(
            fc.run(&mut ws),
            Err(GraphError::OpFailed { .. })
        ));
    }

    #[test]
    fn seeded_fc_is_reproducible() {
        let a = FullyConnected::seeded("fc", "x", "y", 3, 2, 9);
        let b = FullyConnected::seeded("fc", "x", "y", 3, 2, 9);
        let mut wa = Workspace::new();
        wa.put("x", Blob::Dense(Matrix::from_rows(&[&[1.0, 2.0, 3.0]])));
        let mut wb = wa.clone();
        a.run(&mut wa).unwrap();
        b.run(&mut wb).unwrap();
        assert_eq!(wa.dense("y", "t").unwrap(), wb.dense("y", "t").unwrap());
    }

    #[test]
    fn relu_then_sigmoid_pipeline() {
        let mut net = crate::graph::NetDef::new("n");
        net.push(Box::new(Relu::new("r", "x", "rx")));
        net.push(Box::new(Sigmoid::new("s", "rx", "sx")));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::from_rows(&[&[-1.0, 0.0]])));
        net.run(&mut ws, &mut NoopObserver).unwrap();
        let out = ws.dense("sx", "t").unwrap();
        assert_eq!(out.row(0), &[0.5, 0.5]);
    }

    #[test]
    fn concat_assembles_interaction_input() {
        let op = Concat::new("c", vec!["a".into(), "b".into()], "out");
        let mut ws = Workspace::new();
        ws.put("a", Blob::Dense(Matrix::from_rows(&[&[1.0]])));
        ws.put("b", Blob::Dense(Matrix::from_rows(&[&[2.0, 3.0]])));
        op.run(&mut ws).unwrap();
        assert_eq!(ws.dense("out", "t").unwrap().row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_rejects_batch_mismatch() {
        let op = Concat::new("c", vec!["a".into(), "b".into()], "out");
        let mut ws = Workspace::new();
        ws.put("a", Blob::Dense(Matrix::zeros(1, 1)));
        ws.put("b", Blob::Dense(Matrix::zeros(2, 1)));
        assert!(matches!(
            op.run(&mut ws),
            Err(GraphError::OpFailed { .. })
        ));
    }

    #[test]
    fn sls_op_pools_through_workspace() {
        let table = Arc::new(EmbeddingTable::from_weights(
            "t",
            Matrix::from_rows(&[&[1.0, 2.0], &[10.0, 20.0]]),
        ));
        let op = SparseLengthsSum::new("sls", table, "in", "out");
        let mut ws = Workspace::new();
        ws.put("in", Blob::Sparse(SparseInput::new(vec![0, 1], vec![2])));
        op.run(&mut ws).unwrap();
        assert_eq!(ws.dense("out", "t").unwrap().row(0), &[11.0, 22.0]);
    }

    #[test]
    fn dot_interaction_hand_computed() {
        let op = DotInteraction::new("dot", vec!["z0".into(), "z1".into(), "z2".into()], "out");
        let mut ws = Workspace::new();
        ws.put("z0", Blob::Dense(Matrix::from_rows(&[&[1.0, 2.0]])));
        ws.put("z1", Blob::Dense(Matrix::from_rows(&[&[3.0, 4.0]])));
        ws.put("z2", Blob::Dense(Matrix::from_rows(&[&[5.0, 6.0]])));
        op.run(&mut ws).unwrap();
        let out = ws.dense("out", "t").unwrap();
        // [z0 | z0·z1, z0·z2, z1·z2] = [1, 2 | 11, 17, 39]
        assert_eq!(out.row(0), &[1.0, 2.0, 11.0, 17.0, 39.0]);
        assert_eq!(out.cols(), DotInteraction::output_width(3, 2));
    }

    #[test]
    fn dot_interaction_rejects_mixed_dims() {
        let op = DotInteraction::new("dot", vec!["a".into(), "b".into()], "out");
        let mut ws = Workspace::new();
        ws.put("a", Blob::Dense(Matrix::zeros(1, 2)));
        ws.put("b", Blob::Dense(Matrix::zeros(1, 3)));
        assert!(matches!(op.run(&mut ws), Err(GraphError::OpFailed { .. })));
    }

    #[test]
    fn elementwise_sum_adds_blobs() {
        let op = ElementwiseSum::new("sum", vec!["a".into(), "b".into()], "out");
        let mut ws = Workspace::new();
        ws.put("a", Blob::Dense(Matrix::from_rows(&[&[1.0, 2.0]])));
        ws.put("b", Blob::Dense(Matrix::from_rows(&[&[10.0, 20.0]])));
        op.run(&mut ws).unwrap();
        assert_eq!(ws.dense("out", "t").unwrap().row(0), &[11.0, 22.0]);
    }

    #[test]
    fn elementwise_sum_rejects_shape_mismatch() {
        let op = ElementwiseSum::new("sum", vec!["a".into(), "b".into()], "out");
        let mut ws = Workspace::new();
        ws.put("a", Blob::Dense(Matrix::zeros(1, 2)));
        ws.put("b", Blob::Dense(Matrix::zeros(2, 2)));
        assert!(matches!(op.run(&mut ws), Err(GraphError::OpFailed { .. })));
    }

    #[test]
    fn sls_downcast_hook() {
        let table = Arc::new(EmbeddingTable::from_weights(
            "t",
            Matrix::from_rows(&[&[1.0]]),
        ));
        let sls = SparseLengthsSum::new("sls", table, "in", "out");
        assert!(sls.as_sparse_lengths_sum().is_some());
        let relu = Relu::new("r", "a", "b");
        assert!(relu.as_sparse_lengths_sum().is_none());
    }

    #[test]
    fn sls_op_reports_out_of_range() {
        let table = Arc::new(EmbeddingTable::from_weights(
            "t",
            Matrix::from_rows(&[&[1.0]]),
        ));
        let op = SparseLengthsSum::new("sls", table, "in", "out");
        let mut ws = Workspace::new();
        ws.put("in", Blob::Sparse(SparseInput::new(vec![9], vec![1])));
        assert!(matches!(
            op.run(&mut ws),
            Err(GraphError::OpFailed { .. })
        ));
    }
}
