//! Builds an executable [`Model`] from a [`ModelSpec`].

use crate::graph::{Model, NetDef};
use crate::ops::{Concat, DotInteraction, FullyConnected, Relu, Sigmoid, SparseLengthsSum};
use crate::spec::ModelSpec;
use crate::EmbeddingTable;
use std::sync::Arc;

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The spec failed [`ModelSpec::validate`].
    InvalidSpec(String),
    /// Materializing the tables would exceed the memory guard.
    TooLarge {
        /// Bytes the spec's tables would occupy.
        bytes: u64,
        /// The configured guard.
        limit: u64,
    },
    /// The constructed graph failed [`Model::validate`]: some operator
    /// declared an input no earlier operator produces and no external
    /// load provides.
    InvalidGraph(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidSpec(msg) => write!(f, "invalid model spec: {msg}"),
            BuildError::TooLarge { bytes, limit } => write!(
                f,
                "materializing {bytes} bytes exceeds the {limit}-byte guard; \
                 call ModelSpec::scaled_to_bytes first"
            ),
            BuildError::InvalidGraph(msg) => write!(f, "builder produced {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Default materialization guard: 2 GiB. Paper-scale specs (≈200 GB)
/// must be scaled down before building, exactly as the paper scaled its
/// models to fit one server (§V-A).
pub const DEFAULT_MATERIALIZE_LIMIT: u64 = 2 * 1024 * 1024 * 1024;

/// How a net joins its pooled embeddings with the dense path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InteractionKind {
    /// Column-wise concatenation (Fig. 2a's traditional architecture —
    /// the paper's models, and this builder's default).
    #[default]
    Concat,
    /// The open-source DLRM's pairwise dot-product interaction; requires
    /// a uniform embedding dimension equal to the bottom-MLP output
    /// width (and the previous net's output width for chained nets).
    Dot,
}

/// Blob-name helpers shared by the builder and the partitioner.
pub mod blobs {
    use crate::spec::{NetId, TableSpec};

    /// The dense-feature input blob.
    pub const DENSE_INPUT: &str = "dense";

    /// The sparse input blob feeding `table`'s SLS operator.
    #[must_use]
    pub fn sparse_input(table: &TableSpec) -> String {
        format!("sparse/{}", table.name)
    }

    /// The pooled (dense) output blob of `table`'s SLS operator.
    #[must_use]
    pub fn pooled(table: &TableSpec) -> String {
        format!("pooled/{}", table.name)
    }

    /// The final output blob of `net`.
    #[must_use]
    pub fn net_output(net: NetId) -> String {
        format!("{net}/out")
    }
}

/// Builds an executable model with materialized, seeded parameters.
///
/// Equivalent to [`build_model_with_limit`] with
/// [`DEFAULT_MATERIALIZE_LIMIT`].
///
/// # Errors
///
/// See [`build_model_with_limit`].
///
/// # Examples
///
/// ```
/// use dlrm_model::{build_model, rm};
///
/// let spec = rm::rm1().scaled_to_bytes(8 << 20); // 8 MiB toy copy
/// let model = build_model(&spec, 42)?;
/// assert_eq!(model.nets.len(), 2);
/// # Ok::<(), dlrm_model::builder::BuildError>(())
/// ```
pub fn build_model(spec: &ModelSpec, seed: u64) -> Result<Model, BuildError> {
    build_model_with_limit(spec, seed, DEFAULT_MATERIALIZE_LIMIT)
}

/// Builds an executable model, refusing to materialize more than
/// `limit` bytes of embedding weights.
///
/// The graph layout per net follows Fig. 2a: bottom MLP over the dense
/// features, one `SparseLengthsSum` per table, a `Concat` feature
/// interaction joining the pooled embeddings with the bottom-MLP output
/// (and the previous net's output for dependent nets), then the top MLP.
/// The last net ends in a sigmoid; earlier nets end in ReLU.
///
/// # Errors
///
/// - [`BuildError::InvalidSpec`] if the spec is inconsistent.
/// - [`BuildError::TooLarge`] if the tables exceed `limit` bytes.
pub fn build_model_with_limit(
    spec: &ModelSpec,
    seed: u64,
    limit: u64,
) -> Result<Model, BuildError> {
    build_model_with_options(spec, seed, limit, InteractionKind::Concat)
}

/// Builds an executable model with an explicit feature-interaction kind.
///
/// # Errors
///
/// As [`build_model_with_limit`], plus [`BuildError::InvalidSpec`] when
/// [`InteractionKind::Dot`] is requested for a net whose table
/// dimensions are not uniformly equal to its bottom-MLP output width.
pub fn build_model_with_options(
    spec: &ModelSpec,
    seed: u64,
    limit: u64,
    interaction: InteractionKind,
) -> Result<Model, BuildError> {
    spec.validate().map_err(BuildError::InvalidSpec)?;
    if interaction == InteractionKind::Dot {
        for net in &spec.nets {
            let d = *net.bottom_mlp.last().expect("validated non-empty");
            if let Some(t) = spec.tables_of_net(net.id).find(|t| t.dim as usize != d) {
                return Err(BuildError::InvalidSpec(format!(
                    "dot interaction needs uniform dim {d}; table {} has dim {}",
                    t.name, t.dim
                )));
            }
            if net.takes_prev_output {
                let prev = &spec.nets[net.id.0 - 1];
                let prev_w = *prev.top_mlp.last().expect("validated non-empty");
                if prev_w != d {
                    return Err(BuildError::InvalidSpec(format!(
                        "dot interaction needs the previous net's output width                          {prev_w} to equal {d}"
                    )));
                }
            }
        }
    }
    let bytes = spec.total_bytes();
    if bytes > limit {
        return Err(BuildError::TooLarge { bytes, limit });
    }

    let tables: Vec<Arc<EmbeddingTable>> = spec
        .tables
        .iter()
        .map(|t| Arc::new(EmbeddingTable::from_spec(t, seed)))
        .collect();

    let mut nets = Vec::with_capacity(spec.nets.len());
    for net_spec in &spec.nets {
        let i = net_spec.id.0;
        let mut net = NetDef::new(net_spec.name.clone());
        let mut op_seed = seed ^ ((i as u64 + 1) << 32);

        // Bottom MLP over the dense features.
        let mut in_blob = blobs::DENSE_INPUT.to_string();
        let mut in_dim = spec.dense_features;
        for (j, &width) in net_spec.bottom_mlp.iter().enumerate() {
            let out_blob = format!("net{i}/bottom{j}");
            op_seed = op_seed.wrapping_add(1);
            net.push(Box::new(FullyConnected::seeded(
                format!("net{i}/fc_bottom{j}"),
                &in_blob,
                &out_blob,
                in_dim,
                width,
                op_seed,
            )));
            let act_blob = format!("net{i}/bottom{j}_relu");
            net.push(Box::new(Relu::new(
                format!("net{i}/relu_bottom{j}"),
                &out_blob,
                &act_blob,
            )));
            in_blob = act_blob;
            in_dim = width;
        }
        let bottom_out = in_blob;
        let bottom_dim = in_dim;

        // One SLS per table of this net, in table-id order (keeps the
        // float-summation order identical between singular and sharded
        // execution).
        let mut interact_inputs = vec![bottom_out];
        let mut interact_dim = bottom_dim;
        for t in spec.tables_of_net(net_spec.id) {
            net.push(Box::new(SparseLengthsSum::new(
                format!("net{i}/sls/{}", t.name),
                Arc::clone(&tables[t.id.0]),
                blobs::sparse_input(t),
                blobs::pooled(t),
            )));
            interact_inputs.push(blobs::pooled(t));
            interact_dim += t.dim as usize;
        }

        // Dependent nets consume the previous net's output (RM1/RM2).
        if net_spec.takes_prev_output {
            let prev = &spec.nets[i - 1];
            interact_inputs.push(blobs::net_output(prev.id));
            interact_dim += *prev.top_mlp.last().expect("validated non-empty");
        }

        match interaction {
            InteractionKind::Concat => {
                net.push(Box::new(Concat::new(
                    format!("net{i}/interaction_concat"),
                    interact_inputs,
                    format!("net{i}/interaction"),
                )));
            }
            InteractionKind::Dot => {
                let n_inputs = interact_inputs.len();
                net.push(Box::new(DotInteraction::new(
                    format!("net{i}/interaction_dot"),
                    interact_inputs,
                    format!("net{i}/interaction"),
                )));
                interact_dim = DotInteraction::output_width(n_inputs, bottom_dim);
            }
        }

        // Top MLP.
        let mut in_blob = format!("net{i}/interaction");
        let mut in_dim = interact_dim;
        let last = net_spec.top_mlp.len() - 1;
        for (j, &width) in net_spec.top_mlp.iter().enumerate() {
            let out_blob = format!("net{i}/top{j}");
            op_seed = op_seed.wrapping_add(1);
            net.push(Box::new(FullyConnected::seeded(
                format!("net{i}/fc_top{j}"),
                &in_blob,
                &out_blob,
                in_dim,
                width,
                op_seed,
            )));
            let is_final_layer = j == last;
            let act_blob = if is_final_layer {
                blobs::net_output(net_spec.id)
            } else {
                format!("net{i}/top{j}_relu")
            };
            let is_final_net = i == spec.nets.len() - 1;
            if is_final_layer && is_final_net {
                net.push(Box::new(Sigmoid::new(
                    format!("net{i}/sigmoid"),
                    &out_blob,
                    &act_blob,
                )));
            } else {
                net.push(Box::new(Relu::new(
                    format!("net{i}/relu_top{j}"),
                    &out_blob,
                    &act_blob,
                )));
            }
            in_blob = act_blob;
            in_dim = width;
        }
        nets.push(net);
    }

    let output_blob = blobs::net_output(spec.nets.last().expect("validated").id);
    let model = Model {
        spec: spec.clone(),
        nets,
        tables,
        output_blob,
    };
    // The overlap scheduler trusts declared inputs/outputs; reject a
    // graph with dishonest declarations here rather than mid-run.
    model
        .validate()
        .map_err(|e| BuildError::InvalidGraph(e.to_string()))?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Blob, NoopObserver, SparseInput, Workspace};
    use crate::spec::{NetId, NetSpec, TableId, TableSpec};
    use dlrm_tensor::Matrix;

    fn two_net_spec() -> ModelSpec {
        ModelSpec {
            name: "test2".into(),
            dense_features: 6,
            tables: vec![
                TableSpec {
                    id: TableId(0),
                    name: "u0".into(),
                    rows: 50,
                    dim: 4,
                    net: NetId(0),
                    pooling_factor: 5.0,
                },
                TableSpec {
                    id: TableId(1),
                    name: "c0".into(),
                    rows: 80,
                    dim: 8,
                    net: NetId(1),
                    pooling_factor: 2.0,
                },
            ],
            nets: vec![
                NetSpec {
                    id: NetId(0),
                    name: "user".into(),
                    bottom_mlp: vec![8, 4],
                    top_mlp: vec![8, 4],
                    takes_prev_output: false,
                },
                NetSpec {
                    id: NetId(1),
                    name: "content".into(),
                    bottom_mlp: vec![8, 4],
                    top_mlp: vec![8, 1],
                    takes_prev_output: true,
                },
            ],
            default_batch_size: 4,
            mean_items_per_request: 8.0,
        }
    }

    fn seed_inputs(ws: &mut Workspace, spec: &ModelSpec, batch: usize) {
        ws.put(
            blobs::DENSE_INPUT,
            Blob::Dense(Matrix::from_vec(
                batch,
                spec.dense_features,
                (0..batch * spec.dense_features)
                    .map(|k| (k % 7) as f32 * 0.1)
                    .collect(),
            )),
        );
        for t in &spec.tables {
            let indices: Vec<u64> = (0..batch as u64 * 2).map(|k| k % t.rows).collect();
            let lengths = vec![2u32; batch];
            ws.put(
                blobs::sparse_input(t),
                Blob::Sparse(SparseInput::new(indices, lengths)),
            );
        }
    }

    #[test]
    fn builds_and_runs_two_net_model() {
        let spec = two_net_spec();
        let model = build_model(&spec, 7).unwrap();
        let mut ws = Workspace::new();
        seed_inputs(&mut ws, &spec, 4);
        let out = model.run(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 1);
        // Sigmoid output is a probability.
        assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn output_is_deterministic_for_seed() {
        let spec = two_net_spec();
        let m1 = build_model(&spec, 7).unwrap();
        let m2 = build_model(&spec, 7).unwrap();
        let mut w1 = Workspace::new();
        seed_inputs(&mut w1, &spec, 3);
        let mut w2 = w1.clone();
        let o1 = m1.run(&mut w1, &mut NoopObserver).unwrap();
        let o2 = m2.run(&mut w2, &mut NoopObserver).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn different_seed_changes_output() {
        let spec = two_net_spec();
        let m1 = build_model(&spec, 7).unwrap();
        let m2 = build_model(&spec, 8).unwrap();
        let mut w1 = Workspace::new();
        seed_inputs(&mut w1, &spec, 3);
        let mut w2 = w1.clone();
        let o1 = m1.run(&mut w1, &mut NoopObserver).unwrap();
        let o2 = m2.run(&mut w2, &mut NoopObserver).unwrap();
        assert_ne!(o1, o2);
    }

    #[test]
    fn sparse_output_depends_on_indices() {
        let spec = two_net_spec();
        let model = build_model(&spec, 7).unwrap();
        let mut w1 = Workspace::new();
        seed_inputs(&mut w1, &spec, 2);
        let mut w2 = w1.clone();
        // Perturb one sparse input in w2.
        let t = &spec.tables[0];
        w2.put(
            blobs::sparse_input(t),
            Blob::Sparse(SparseInput::new(vec![3, 4, 5, 6], vec![2, 2])),
        );
        let o1 = model.run(&mut w1, &mut NoopObserver).unwrap();
        let o2 = model.run(&mut w2, &mut NoopObserver).unwrap();
        assert_ne!(o1, o2, "embedding lookups must influence the output");
    }

    /// A spec whose dims are uniform so dot interaction is legal.
    fn uniform_spec() -> ModelSpec {
        let mut s = two_net_spec();
        for t in &mut s.tables {
            t.dim = 4;
        }
        s.nets[0].bottom_mlp = vec![8, 4];
        s.nets[0].top_mlp = vec![8, 4];
        s.nets[1].bottom_mlp = vec![8, 4];
        s
    }

    #[test]
    fn dot_interaction_builds_and_runs() {
        let spec = uniform_spec();
        let model = crate::builder::build_model_with_options(
            &spec,
            7,
            DEFAULT_MATERIALIZE_LIMIT,
            InteractionKind::Dot,
        )
        .unwrap();
        let mut ws = Workspace::new();
        seed_inputs(&mut ws, &spec, 3);
        let out = model.run(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(out.rows(), 3);
        assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dot_interaction_differs_from_concat() {
        let spec = uniform_spec();
        let dot = crate::builder::build_model_with_options(
            &spec,
            7,
            DEFAULT_MATERIALIZE_LIMIT,
            InteractionKind::Dot,
        )
        .unwrap();
        let concat = build_model(&spec, 7).unwrap();
        let mut w1 = Workspace::new();
        seed_inputs(&mut w1, &spec, 2);
        let mut w2 = w1.clone();
        let a = dot.run(&mut w1, &mut NoopObserver).unwrap();
        let b = concat.run(&mut w2, &mut NoopObserver).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn dot_interaction_rejects_mixed_dims() {
        let spec = two_net_spec(); // dims 4 and 8
        let err = crate::builder::build_model_with_options(
            &spec,
            7,
            DEFAULT_MATERIALIZE_LIMIT,
            InteractionKind::Dot,
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::InvalidSpec(_)));
    }

    #[test]
    fn refuses_oversized_materialization() {
        let rm1 = crate::rm::rm1();
        let err = build_model(&rm1, 1).unwrap_err();
        assert!(matches!(err, BuildError::TooLarge { .. }));
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut spec = two_net_spec();
        spec.tables[0].net = NetId(9);
        assert!(matches!(
            build_model(&spec, 1),
            Err(BuildError::InvalidSpec(_))
        ));
    }

    #[test]
    fn built_models_pass_graph_validation() {
        // build_model validates internally; re-validating the returned
        // model confirms the declarations stay honest post-construction.
        let model = build_model(&two_net_spec(), 7).unwrap();
        model.validate().unwrap();
        let uniform = crate::builder::build_model_with_options(
            &uniform_spec(),
            7,
            DEFAULT_MATERIALIZE_LIMIT,
            InteractionKind::Dot,
        )
        .unwrap();
        uniform.validate().unwrap();
    }

    #[test]
    fn missing_sparse_input_surfaces_as_graph_error() {
        let spec = two_net_spec();
        let model = build_model(&spec, 7).unwrap();
        let mut ws = Workspace::new();
        ws.put(
            blobs::DENSE_INPUT,
            Blob::Dense(Matrix::zeros(1, spec.dense_features)),
        );
        assert!(model.run(&mut ws, &mut NoopObserver).is_err());
    }
}
