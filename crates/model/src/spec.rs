//! Model specifications: the aggregate attributes the study varies.

use crate::{Footprint, GIB};

/// Identifies an embedding table within a [`ModelSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub usize);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a net (sub-network) within a model. RM1 and RM2 have two
/// nets — the user net and the content/product net, executed
/// sequentially — while RM3 has a single net (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub usize);

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Operator groups used for compute attribution (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpGroup {
    /// Fully-connected (dense matmul) layers.
    Fc,
    /// The SparseLengthsSum family: embedding lookup + pooling.
    Sls,
    /// Tensor reshapes/concats/splits around the feature interaction.
    TensorTransform,
    /// Element-wise activations.
    Activation,
    /// Everything else (copies, bookkeeping).
    Other,
}

impl std::fmt::Display for OpGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpGroup::Fc => "FC",
            OpGroup::Sls => "SLS",
            OpGroup::TensorTransform => "TensorTransform",
            OpGroup::Activation => "Activation",
            OpGroup::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Static description of one embedding table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Stable identifier (index into [`ModelSpec::tables`]).
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// Logical (hash-bucket) row count. At paper scale this may be
    /// billions; materialization downsizes it.
    pub rows: u64,
    /// Embedding vector dimension.
    pub dim: u32,
    /// Which net's sparse features index this table.
    pub net: NetId,
    /// Expected number of lookups into this table per inference request
    /// (the "pooling factor" of Table II, estimated in the paper by
    /// sampling 1000 requests).
    pub pooling_factor: f64,
}

impl TableSpec {
    /// Size of the table in bytes at FP32 precision (the
    /// [`Footprint`] of the spec).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.footprint_bytes()
    }

    /// Size of the table in GiB at FP32 precision.
    #[must_use]
    pub fn gib(&self) -> f64 {
        self.bytes() as f64 / GIB
    }
}

/// Dense-side architecture of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Which net this describes.
    pub id: NetId,
    /// Human-readable name (e.g. `"user"`, `"content"`).
    pub name: String,
    /// Bottom-MLP layer widths, ending at the embedding dimension so the
    /// dense path can join the feature interaction.
    pub bottom_mlp: Vec<usize>,
    /// Top-MLP layer widths after feature interaction; the final net ends
    /// in a single logit.
    pub top_mlp: Vec<usize>,
    /// Whether this net consumes the previous net's output (RM1/RM2:
    /// the user net's output feeds the content net, forcing sequential
    /// execution — §III-B3).
    pub takes_prev_output: bool,
}

/// Complete static description of a recommendation model.
///
/// # Examples
///
/// ```
/// let rm1 = dlrm_model::rm::rm1();
/// assert_eq!(rm1.tables.len(), 257);
/// assert!((rm1.total_gib() - 194.05).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name ("RM1", "RM2", "RM3", or custom).
    pub name: String,
    /// Number of dense (continuous) input features.
    pub dense_features: usize,
    /// All embedding tables, indexed by [`TableId`].
    pub tables: Vec<TableSpec>,
    /// The nets, in execution order.
    pub nets: Vec<NetSpec>,
    /// Default number of items ranked per batch in the serving tier.
    pub default_batch_size: usize,
    /// Mean number of candidate items per inference request (drives the
    /// number of batches per request).
    pub mean_items_per_request: f64,
}

impl ModelSpec {
    /// Total embedding capacity in bytes (the [`Footprint`] of the
    /// spec).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.footprint_bytes()
    }

    /// Total embedding capacity in GiB.
    #[must_use]
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / GIB
    }

    /// The largest table's size in GiB.
    #[must_use]
    pub fn max_table_gib(&self) -> f64 {
        self.tables
            .iter()
            .map(TableSpec::gib)
            .fold(0.0, f64::max)
    }

    /// Sum of per-table pooling factors (the model's expected lookups
    /// per request; the "Estimated Pooling Factor" for a 1-shard
    /// configuration in Table II).
    #[must_use]
    pub fn total_pooling_factor(&self) -> f64 {
        self.tables.iter().map(|t| t.pooling_factor).sum()
    }

    /// Tables belonging to `net`, in table-id order.
    pub fn tables_of_net(&self, net: NetId) -> impl Iterator<Item = &TableSpec> {
        self.tables.iter().filter(move |t| t.net == net)
    }

    /// Looks up a table spec by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn table(&self, id: TableId) -> &TableSpec {
        &self.tables[id.0]
    }

    /// A proportionally downsized copy whose total embedding capacity is
    /// at most `target_bytes`, preserving the *relative* size
    /// distribution (Fig. 5's shape), dims, nets and pooling factors.
    ///
    /// Mirrors the paper's methodology: "Embedding tables larger than a
    /// given threshold were scaled down by a proportional factor to fit
    /// the entire model on a single 256GB server" (§V-A).
    ///
    /// Row counts are clamped to at least 8 so every table remains
    /// materializable and shardable.
    ///
    /// # Panics
    ///
    /// Panics if `target_bytes` is zero.
    #[must_use]
    pub fn scaled_to_bytes(&self, target_bytes: u64) -> ModelSpec {
        assert!(target_bytes > 0, "target size must be non-zero");
        let total = self.total_bytes();
        let factor = if total <= target_bytes {
            1.0
        } else {
            target_bytes as f64 / total as f64
        };
        let mut out = self.clone();
        if factor < 1.0 {
            for t in &mut out.tables {
                t.rows = ((t.rows as f64 * factor).round() as u64).max(8);
            }
        }
        out
    }

    /// Validates internal consistency; called by the generators and
    /// useful after hand-construction.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: table ids
    /// must be dense and ordered, every table's net must exist, nets
    /// must be non-empty and ordered, and only the first net may lack
    /// `takes_prev_output == false`.
    pub fn validate(&self) -> Result<(), String> {
        if self.nets.is_empty() {
            return Err("model has no nets".into());
        }
        for (i, n) in self.nets.iter().enumerate() {
            if n.id != NetId(i) {
                return Err(format!("net {i} has id {}", n.id));
            }
            if i == 0 && n.takes_prev_output {
                return Err("first net cannot take previous output".into());
            }
            if n.top_mlp.is_empty() || n.bottom_mlp.is_empty() {
                return Err(format!("net {i} has empty MLP stack"));
            }
        }
        for (i, t) in self.tables.iter().enumerate() {
            if t.id != TableId(i) {
                return Err(format!("table {i} has id {}", t.id));
            }
            if t.net.0 >= self.nets.len() {
                return Err(format!("table {i} references missing {}", t.net));
            }
            if t.rows == 0 || t.dim == 0 {
                return Err(format!("table {i} has degenerate shape"));
            }
            if t.pooling_factor < 0.0 || t.pooling_factor.is_nan() {
                return Err(format!("table {i} has invalid pooling factor"));
            }
        }
        if self.default_batch_size == 0 {
            return Err("default batch size must be non-zero".into());
        }
        if self.mean_items_per_request <= 0.0 || self.mean_items_per_request.is_nan() {
            return Err("mean items per request must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ModelSpec {
        ModelSpec {
            name: "tiny".into(),
            dense_features: 4,
            tables: vec![
                TableSpec {
                    id: TableId(0),
                    name: "t0".into(),
                    rows: 100,
                    dim: 8,
                    net: NetId(0),
                    pooling_factor: 10.0,
                },
                TableSpec {
                    id: TableId(1),
                    name: "t1".into(),
                    rows: 1000,
                    dim: 8,
                    net: NetId(0),
                    pooling_factor: 2.0,
                },
            ],
            nets: vec![NetSpec {
                id: NetId(0),
                name: "main".into(),
                bottom_mlp: vec![16, 8],
                top_mlp: vec![16, 1],
                takes_prev_output: false,
            }],
            default_batch_size: 16,
            mean_items_per_request: 32.0,
        }
    }

    #[test]
    fn byte_accounting() {
        let s = tiny_spec();
        assert_eq!(s.tables[0].bytes(), 100 * 8 * 4);
        assert_eq!(s.total_bytes(), (100 + 1000) * 8 * 4);
        assert_eq!(s.total_pooling_factor(), 12.0);
    }

    #[test]
    fn validate_accepts_consistent_spec() {
        assert_eq!(tiny_spec().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_table_net() {
        let mut s = tiny_spec();
        s.tables[1].net = NetId(5);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_misnumbered_ids() {
        let mut s = tiny_spec();
        s.tables[1].id = TableId(7);
        assert!(s.validate().is_err());
    }

    #[test]
    fn scaling_preserves_distribution_shape() {
        let s = tiny_spec();
        let scaled = s.scaled_to_bytes(s.total_bytes() / 2);
        assert!(scaled.total_bytes() <= s.total_bytes() / 2 + 64);
        // Relative order preserved.
        assert!(scaled.tables[1].rows > scaled.tables[0].rows);
        // Pooling untouched.
        assert_eq!(scaled.total_pooling_factor(), 12.0);
    }

    #[test]
    fn scaling_no_op_when_already_small() {
        let s = tiny_spec();
        let scaled = s.scaled_to_bytes(u64::MAX);
        assert_eq!(scaled, s);
    }

    #[test]
    fn scaling_clamps_to_min_rows() {
        let s = tiny_spec();
        let scaled = s.scaled_to_bytes(1);
        assert!(scaled.tables.iter().all(|t| t.rows >= 8));
    }

    #[test]
    fn tables_of_net_filters() {
        let mut s = tiny_spec();
        s.nets.push(NetSpec {
            id: NetId(1),
            name: "second".into(),
            bottom_mlp: vec![8],
            top_mlp: vec![1],
            takes_prev_output: true,
        });
        s.tables[1].net = NetId(1);
        assert_eq!(s.tables_of_net(NetId(0)).count(), 1);
        assert_eq!(s.tables_of_net(NetId(1)).count(), 1);
    }
}
