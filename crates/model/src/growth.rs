//! Model-growth projection series (Fig. 1).
//!
//! Fig. 1 plots the historical growth of a significant production
//! recommendation model: "both number of features and embeddings have
//! grown an order of magnitude in only three years". The absolute axis
//! values are unpublished, so this module generates the normalized
//! exponential series the figure shape implies.

/// One point on the growth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthPoint {
    /// Months since the series start (the paper spans 2017→2020).
    pub months: f64,
    /// Number of sparse features, relative to the series start (1.0).
    pub relative_features: f64,
    /// Total embedding capacity, relative to the series start (1.0).
    pub relative_embedding_capacity: f64,
}

/// Generates the Fig. 1 growth series: `points` samples across
/// `months` months, with features and embedding capacity each growing
/// 10× over 36 months (capacity slightly faster, as embedding growth is
/// the stated driver of model size).
///
/// # Panics
///
/// Panics if `points < 2` or `months` is not positive.
///
/// # Examples
///
/// ```
/// let series = dlrm_model::growth::growth_series(13, 36.0);
/// assert_eq!(series.len(), 13);
/// let last = series.last().unwrap();
/// assert!((last.relative_features - 10.0).abs() < 1e-6);
/// assert!(last.relative_embedding_capacity >= 10.0);
/// ```
#[must_use]
pub fn growth_series(points: usize, months: f64) -> Vec<GrowthPoint> {
    assert!(points >= 2, "need at least two points");
    assert!(months > 0.0, "months must be positive");
    // 10× over 36 months for features; embeddings grow 12× (their share
    // of model size increases, matching "embedding tables dominate ...
    // and are responsible for the significant growth").
    let feature_rate = 10f64.ln() / 36.0;
    let embedding_rate = 12f64.ln() / 36.0;
    (0..points)
        .map(|i| {
            let m = months * i as f64 / (points - 1) as f64;
            GrowthPoint {
                months: m,
                relative_features: (feature_rate * m).exp(),
                relative_embedding_capacity: (embedding_rate * m).exp(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_monotonic() {
        let s = growth_series(20, 36.0);
        for w in s.windows(2) {
            assert!(w[1].relative_features > w[0].relative_features);
            assert!(w[1].relative_embedding_capacity > w[0].relative_embedding_capacity);
        }
    }

    #[test]
    fn order_of_magnitude_over_three_years() {
        let s = growth_series(37, 36.0);
        let last = s.last().unwrap();
        assert!((last.relative_features - 10.0).abs() < 1e-9);
        assert!((last.relative_embedding_capacity - 12.0).abs() < 1e-9);
    }

    #[test]
    fn starts_at_unity() {
        let s = growth_series(5, 24.0);
        assert_eq!(s[0].relative_features, 1.0);
        assert_eq!(s[0].relative_embedding_capacity, 1.0);
        assert_eq!(s[0].months, 0.0);
    }

    #[test]
    fn embeddings_outgrow_features() {
        let s = growth_series(10, 36.0);
        for p in &s[1..] {
            assert!(p.relative_embedding_capacity > p.relative_features);
        }
    }
}
