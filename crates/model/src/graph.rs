//! Caffe2-style dataflow graph: workspace of named blobs, operator
//! lists, and a sequential executor with timing hooks.
//!
//! Operators within a net execute sequentially ("operators are scheduled
//! to execute sequentially — unless specifically asynchronous like the
//! RPC ops — because other cores are utilized via request- and
//! batch-level parallelism", §IV-A). The sharding partitioner rewrites
//! these nets, so the representation is deliberately concrete: a vector
//! of boxed [`Operator`]s reading and writing named [`Blob`]s.

use crate::spec::{ModelSpec, OpGroup};
use dlrm_tensor::Matrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A sparse feature input: Caffe2's (indices, lengths) encoding.
///
/// `lengths[b]` consecutive entries of `indices` belong to batch
/// element `b`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparseInput {
    /// Flat embedding-row indices.
    pub indices: Vec<u64>,
    /// Per-batch-element index counts.
    pub lengths: Vec<u32>,
}

impl SparseInput {
    /// Creates a sparse input, checking the encoding invariant.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` does not exactly cover `indices`.
    #[must_use]
    pub fn new(indices: Vec<u64>, lengths: Vec<u32>) -> Self {
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        assert_eq!(total, indices.len(), "lengths must cover indices exactly");
        Self { indices, lengths }
    }

    /// Number of batch elements.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.lengths.len()
    }

    /// Total number of lookups.
    #[must_use]
    pub fn num_lookups(&self) -> usize {
        self.indices.len()
    }
}

/// A value in the workspace: dense activations or sparse inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Blob {
    /// Dense `batch × features` activations.
    Dense(Matrix),
    /// Sparse feature indices for an embedding lookup.
    Sparse(SparseInput),
}

/// Errors raised during graph execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator read a blob that no prior operator produced.
    MissingBlob {
        /// The missing blob's name.
        blob: String,
        /// The operator that needed it.
        op: String,
    },
    /// A blob existed but held the wrong variant.
    TypeMismatch {
        /// The offending blob's name.
        blob: String,
        /// What the operator expected ("dense" / "sparse").
        expected: &'static str,
    },
    /// An operator-specific failure (shape mismatch, bad index…).
    OpFailed {
        /// The failing operator.
        op: String,
        /// Failure description.
        message: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::MissingBlob { blob, op } => {
                write!(f, "operator {op} read missing blob {blob}")
            }
            GraphError::TypeMismatch { blob, expected } => {
                write!(f, "blob {blob} is not {expected}")
            }
            GraphError::OpFailed { op, message } => write!(f, "operator {op} failed: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The blob store shared by all nets of one inference.
///
/// # Examples
///
/// ```
/// use dlrm_model::{Blob, Workspace};
/// use dlrm_tensor::Matrix;
///
/// let mut ws = Workspace::new();
/// ws.put("x", Blob::Dense(Matrix::zeros(2, 3)));
/// assert_eq!(ws.dense("x", "caller").unwrap().rows(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    blobs: HashMap<String, Blob>,
}

impl Workspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a blob.
    pub fn put(&mut self, name: impl Into<String>, blob: Blob) {
        self.blobs.insert(name.into(), blob);
    }

    /// Fetches any blob.
    pub fn blob(&self, name: &str) -> Option<&Blob> {
        self.blobs.get(name)
    }

    /// Fetches a dense blob, attributing failures to operator `op`.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingBlob`] or [`GraphError::TypeMismatch`].
    pub fn dense(&self, name: &str, op: &str) -> Result<&Matrix, GraphError> {
        match self.blobs.get(name) {
            Some(Blob::Dense(m)) => Ok(m),
            Some(_) => Err(GraphError::TypeMismatch {
                blob: name.into(),
                expected: "dense",
            }),
            None => Err(GraphError::MissingBlob {
                blob: name.into(),
                op: op.into(),
            }),
        }
    }

    /// Fetches a sparse blob, attributing failures to operator `op`.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingBlob`] or [`GraphError::TypeMismatch`].
    pub fn sparse(&self, name: &str, op: &str) -> Result<&SparseInput, GraphError> {
        match self.blobs.get(name) {
            Some(Blob::Sparse(s)) => Ok(s),
            Some(_) => Err(GraphError::TypeMismatch {
                blob: name.into(),
                expected: "sparse",
            }),
            None => Err(GraphError::MissingBlob {
                blob: name.into(),
                op: op.into(),
            }),
        }
    }

    /// Number of stored blobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the workspace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Iterates over blob names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }
}

/// A graph operator: reads named blobs, writes named blobs.
pub trait Operator: std::fmt::Debug + Send + Sync {
    /// Unique (within the net) operator name.
    fn name(&self) -> &str;
    /// Attribution group for compute breakdowns (Fig. 4).
    fn group(&self) -> OpGroup;
    /// Blob names read.
    fn inputs(&self) -> Vec<String>;
    /// Blob names written.
    fn outputs(&self) -> Vec<String>;
    /// Executes the operator against the workspace.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] when inputs are missing, mistyped, or
    /// shape-inconsistent.
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError>;

    /// Downcast hook for the sharding partitioner: returns `Some` when
    /// this operator is a [`crate::ops::SparseLengthsSum`], the operator
    /// family relocated to sparse shards. Default: `None`.
    fn as_sparse_lengths_sum(&self) -> Option<&crate::ops::SparseLengthsSum> {
        None
    }
}

/// Observes operator execution; used for the real engine's per-group
/// compute attribution.
pub trait ExecutionObserver {
    /// Called after each operator with its measured wall time.
    fn on_op(&mut self, net: &str, op: &dyn Operator, elapsed_secs: f64);
}

/// Observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl ExecutionObserver for NoopObserver {
    fn on_op(&mut self, _net: &str, _op: &dyn Operator, _elapsed_secs: f64) {}
}

/// Observer accumulating wall time per [`OpGroup`].
#[derive(Debug, Default, Clone)]
pub struct GroupTimingObserver {
    totals: HashMap<OpGroup, f64>,
}

impl GroupTimingObserver {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds accumulated for `group`.
    #[must_use]
    pub fn seconds(&self, group: OpGroup) -> f64 {
        self.totals.get(&group).copied().unwrap_or(0.0)
    }

    /// Total seconds across all groups.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.totals.values().sum()
    }

    /// Fraction of total time spent in `group` (0 when nothing ran).
    #[must_use]
    pub fn fraction(&self, group: OpGroup) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.seconds(group) / total
        }
    }
}

impl ExecutionObserver for GroupTimingObserver {
    fn on_op(&mut self, _net: &str, op: &dyn Operator, elapsed_secs: f64) {
        *self.totals.entry(op.group()).or_insert(0.0) += elapsed_secs;
    }
}

/// An ordered list of operators — Caffe2's `NetDef`.
#[derive(Debug)]
pub struct NetDef {
    name: String,
    ops: Vec<Box<dyn Operator>>,
}

impl NetDef {
    /// Creates an empty net.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operator.
    pub fn push(&mut self, op: Box<dyn Operator>) {
        self.ops.push(op);
    }

    /// The operators, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[Box<dyn Operator>] {
        &self.ops
    }

    /// Replaces the operator list (used by the partitioner).
    pub fn set_ops(&mut self, ops: Vec<Box<dyn Operator>>) {
        self.ops = ops;
    }

    /// Consumes the net, yielding its operators (used by the
    /// partitioner, which moves non-sparse operators into the rewritten
    /// main-shard net).
    #[must_use]
    pub fn into_ops(self) -> Vec<Box<dyn Operator>> {
        self.ops
    }

    /// Runs every operator in order.
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure.
    pub fn run(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<(), GraphError> {
        for op in &self.ops {
            let start = Instant::now();
            op.run(ws)?;
            observer.on_op(&self.name, op.as_ref(), start.elapsed().as_secs_f64());
        }
        Ok(())
    }
}

/// A complete executable model: its spec, its nets in execution order,
/// and the materialized embedding tables the sparse operators reference.
#[derive(Debug)]
pub struct Model {
    /// The static description this model was built from.
    pub spec: ModelSpec,
    /// Nets in execution order (RM1/RM2: user net then content net).
    pub nets: Vec<NetDef>,
    /// Materialized tables, indexed by [`crate::TableId`]; shared with
    /// shard services after partitioning.
    pub tables: Vec<Arc<crate::EmbeddingTable>>,
    /// Name of the blob holding the final prediction.
    pub output_blob: String,
}

impl Model {
    /// Runs all nets sequentially and returns the final prediction
    /// (`batch × 1`, sigmoid output).
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure (typically a missing input
    /// blob when the caller under-populated the workspace).
    pub fn run(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<Matrix, GraphError> {
        for net in &self.nets {
            net.run(ws, observer)?;
        }
        ws.dense(&self.output_blob, "model-output").cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct AddOne {
        input: String,
        output: String,
    }

    impl Operator for AddOne {
        fn name(&self) -> &str {
            "add_one"
        }
        fn group(&self) -> OpGroup {
            OpGroup::Other
        }
        fn inputs(&self) -> Vec<String> {
            vec![self.input.clone()]
        }
        fn outputs(&self) -> Vec<String> {
            vec![self.output.clone()]
        }
        fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
            let mut m = ws.dense(&self.input, self.name())?.clone();
            m.map_inplace(|v| v + 1.0);
            ws.put(self.output.clone(), Blob::Dense(m));
            Ok(())
        }
    }

    #[test]
    fn net_runs_ops_in_order() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        net.push(Box::new(AddOne {
            input: "y".into(),
            output: "z".into(),
        }));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        net.run(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(ws.dense("z", "test").unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn missing_blob_is_reported_with_op() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "nope".into(),
            output: "y".into(),
        }));
        let mut ws = Workspace::new();
        let err = net.run(&mut ws, &mut NoopObserver).unwrap_err();
        assert_eq!(
            err,
            GraphError::MissingBlob {
                blob: "nope".into(),
                op: "add_one".into()
            }
        );
    }

    #[test]
    fn type_mismatch_detected() {
        let mut ws = Workspace::new();
        ws.put("s", Blob::Sparse(SparseInput::new(vec![], vec![])));
        let err = ws.dense("s", "op").unwrap_err();
        assert!(matches!(err, GraphError::TypeMismatch { .. }));
    }

    #[test]
    fn timing_observer_accumulates_fractions() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(8, 8)));
        let mut obs = GroupTimingObserver::new();
        net.run(&mut ws, &mut obs).unwrap();
        assert!(obs.total_seconds() > 0.0);
        assert_eq!(obs.fraction(OpGroup::Other), 1.0);
        assert_eq!(obs.fraction(OpGroup::Fc), 0.0);
    }

    #[test]
    fn sparse_input_invariant_enforced() {
        let s = SparseInput::new(vec![1, 2, 3], vec![1, 2]);
        assert_eq!(s.batch_size(), 2);
        assert_eq!(s.num_lookups(), 3);
    }

    #[test]
    #[should_panic(expected = "cover indices")]
    fn sparse_input_bad_lengths_panics() {
        let _ = SparseInput::new(vec![1], vec![3]);
    }
}
