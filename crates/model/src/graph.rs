//! Caffe2-style dataflow graph: workspace of named blobs, operator
//! lists, and two executors with timing hooks.
//!
//! Operators within a net execute sequentially ("operators are scheduled
//! to execute sequentially — unless specifically asynchronous like the
//! RPC ops — because other cores are utilized via request- and
//! batch-level parallelism", §IV-A). The sharding partitioner rewrites
//! these nets, so the representation is deliberately concrete: a vector
//! of boxed [`Operator`]s reading and writing named [`Blob`]s.
//!
//! Two execution modes realize §IV-A's scheduling rule:
//!
//! - [`NetDef::run`] is the strictly sequential executor (every operator
//!   blocks until done) — retained for the simulator's cost model and as
//!   the bit-exactness reference.
//! - [`NetDef::run_overlapped`] is the dependency-aware scheduler:
//!   operators that expose an asynchronous issue/collect form
//!   ([`AsyncOperator`], i.e. the RPC ops) are *issued* as soon as their
//!   declared inputs are ready, synchronous operators run in list order
//!   while those RPCs are in flight, and completions are *collected*
//!   only when an operator demands one of their outputs. With N sparse
//!   shards this overlaps all N shard round-trips with each other and
//!   with the bottom-MLP dense compute, instead of paying them serially.
//!
//! The scheduler trusts the operators' declared [`Operator::inputs`] /
//! [`Operator::outputs`]; [`NetDef::validate`] checks those declarations
//! against the list order at model-construction time.

use crate::spec::{ModelSpec, OpGroup};
use dlrm_runtime::{Pool, RuntimeCtx};
use dlrm_tensor::Matrix;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// A sparse feature input: Caffe2's (indices, lengths) encoding.
///
/// `lengths[b]` consecutive entries of `indices` belong to batch
/// element `b`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparseInput {
    /// Flat embedding-row indices.
    pub indices: Vec<u64>,
    /// Per-batch-element index counts.
    pub lengths: Vec<u32>,
}

impl SparseInput {
    /// Creates a sparse input, checking the encoding invariant.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` does not exactly cover `indices`.
    #[must_use]
    pub fn new(indices: Vec<u64>, lengths: Vec<u32>) -> Self {
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        assert_eq!(total, indices.len(), "lengths must cover indices exactly");
        Self { indices, lengths }
    }

    /// Number of batch elements.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.lengths.len()
    }

    /// Total number of lookups.
    #[must_use]
    pub fn num_lookups(&self) -> usize {
        self.indices.len()
    }
}

/// A value in the workspace: dense activations or sparse inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Blob {
    /// Dense `batch × features` activations.
    Dense(Matrix),
    /// Sparse feature indices for an embedding lookup.
    Sparse(SparseInput),
}

/// Errors raised during graph execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator read a blob that no prior operator produced.
    MissingBlob {
        /// The missing blob's name.
        blob: String,
        /// The operator that needed it.
        op: String,
    },
    /// A blob existed but held the wrong variant.
    TypeMismatch {
        /// The offending blob's name.
        blob: String,
        /// What the operator expected ("dense" / "sparse").
        expected: &'static str,
    },
    /// An operator-specific failure (shape mismatch, bad index…).
    OpFailed {
        /// The failing operator.
        op: String,
        /// Failure description.
        message: String,
    },
    /// Static validation failure: an operator declared an input that no
    /// earlier operator produces and no external load provides. The
    /// overlap scheduler depends on honest declarations, so this is
    /// rejected at model construction rather than discovered mid-run.
    InvalidGraph {
        /// The operator with the unsatisfiable input.
        op: String,
        /// The input blob nobody produces.
        blob: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::MissingBlob { blob, op } => {
                write!(f, "operator {op} read missing blob {blob}")
            }
            GraphError::TypeMismatch { blob, expected } => {
                write!(f, "blob {blob} is not {expected}")
            }
            GraphError::OpFailed { op, message } => write!(f, "operator {op} failed: {message}"),
            GraphError::InvalidGraph { op, blob } => write!(
                f,
                "invalid graph: operator {op} declares input {blob}, which no \
                 earlier operator produces and no external load provides"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// The blob store shared by all nets of one inference.
///
/// # Examples
///
/// ```
/// use dlrm_model::{Blob, Workspace};
/// use dlrm_tensor::Matrix;
///
/// let mut ws = Workspace::new();
/// ws.put("x", Blob::Dense(Matrix::zeros(2, 3)));
/// assert_eq!(ws.dense("x", "caller").unwrap().rows(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    blobs: HashMap<String, Blob>,
    ctx: RuntimeCtx,
    /// Static consumer counts (reads per blob across all nets, plus one
    /// for the model output): the oracle [`Self::take_dense`] consults
    /// to decide move-vs-clone. Empty (the default) means "unknown", so
    /// every take falls back to a clone.
    consumers: Arc<HashMap<String, usize>>,
}

impl Workspace {
    /// Creates an empty workspace with a sequential, buffer-pooled
    /// runtime context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty workspace executing on `ctx` — its fork-join
    /// pool parallelizes the kernels, and its (shared, `Arc`ed) buffer
    /// pool supplies dense output allocations, so workspaces built from
    /// clones of one context recycle each other's backing stores.
    #[must_use]
    pub fn with_ctx(ctx: RuntimeCtx) -> Self {
        Self {
            ctx,
            ..Self::default()
        }
    }

    /// The runtime context this workspace executes on.
    #[must_use]
    pub fn ctx(&self) -> &RuntimeCtx {
        &self.ctx
    }

    /// The fork-join pool operators parallelize their kernels on.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.ctx.pool
    }

    /// Installs the static consumer counts [`Self::take_dense`] consults
    /// (see [`Model::consumer_counts`]). Counts are shared behind an
    /// `Arc` so per-request workspaces install them without copying.
    pub fn set_consumer_counts(&mut self, counts: Arc<HashMap<String, usize>>) {
        self.consumers = counts;
    }

    /// Inserts or replaces a blob. A replaced dense blob's backing store
    /// is recycled into the context's buffer pool.
    pub fn put(&mut self, name: impl Into<String>, blob: Blob) {
        if let Some(Blob::Dense(old)) = self.blobs.insert(name.into(), blob) {
            self.ctx.buffers.release(old.into_vec());
        }
    }

    /// A zeroed `rows × cols` dense matrix drawn from the context's
    /// recycled-buffer pool (a fresh allocation only when no recycled
    /// store fits).
    #[must_use]
    pub fn alloc_dense(&self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.ctx.buffers.acquire(rows * cols))
    }

    /// Fetches a dense blob *by value*: when the installed consumer
    /// counts prove this operator is the blob's only reader, the blob is
    /// moved out of the workspace (no copy); otherwise — including when
    /// no counts are installed — it is copied into a pooled allocation.
    /// This is what lets ReLU/Sigmoid run truly in place on the
    /// single-consumer chains of an MLP stack.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingBlob`] or [`GraphError::TypeMismatch`].
    pub fn take_dense(&mut self, name: &str, op: &str) -> Result<Matrix, GraphError> {
        if self.consumers.get(name).is_some_and(|&c| c == 1) {
            match self.blobs.remove(name) {
                Some(Blob::Dense(m)) => Ok(m),
                Some(other) => {
                    self.blobs.insert(name.to_string(), other);
                    Err(GraphError::TypeMismatch {
                        blob: name.into(),
                        expected: "dense",
                    })
                }
                None => Err(GraphError::MissingBlob {
                    blob: name.into(),
                    op: op.into(),
                }),
            }
        } else {
            let src = self.dense(name, op)?;
            let mut copy = self.alloc_dense(src.rows(), src.cols());
            copy.as_mut_slice().copy_from_slice(src.as_slice());
            Ok(copy)
        }
    }

    /// Drains every blob, recycling dense backing stores into the
    /// context's buffer pool. Serving workers call this between requests
    /// so the next request's activations reuse this one's allocations.
    pub fn recycle_all(&mut self) {
        for (_, blob) in self.blobs.drain() {
            if let Blob::Dense(m) = blob {
                self.ctx.buffers.release(m.into_vec());
            }
        }
    }

    /// Fetches any blob.
    pub fn blob(&self, name: &str) -> Option<&Blob> {
        self.blobs.get(name)
    }

    /// Fetches a dense blob, attributing failures to operator `op`.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingBlob`] or [`GraphError::TypeMismatch`].
    pub fn dense(&self, name: &str, op: &str) -> Result<&Matrix, GraphError> {
        match self.blobs.get(name) {
            Some(Blob::Dense(m)) => Ok(m),
            Some(_) => Err(GraphError::TypeMismatch {
                blob: name.into(),
                expected: "dense",
            }),
            None => Err(GraphError::MissingBlob {
                blob: name.into(),
                op: op.into(),
            }),
        }
    }

    /// Fetches a sparse blob, attributing failures to operator `op`.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingBlob`] or [`GraphError::TypeMismatch`].
    pub fn sparse(&self, name: &str, op: &str) -> Result<&SparseInput, GraphError> {
        match self.blobs.get(name) {
            Some(Blob::Sparse(s)) => Ok(s),
            Some(_) => Err(GraphError::TypeMismatch {
                blob: name.into(),
                expected: "sparse",
            }),
            None => Err(GraphError::MissingBlob {
                blob: name.into(),
                op: op.into(),
            }),
        }
    }

    /// Number of stored blobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the workspace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Iterates over blob names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }
}

/// A graph operator: reads named blobs, writes named blobs.
pub trait Operator: std::fmt::Debug + Send + Sync {
    /// Unique (within the net) operator name.
    fn name(&self) -> &str;
    /// Attribution group for compute breakdowns (Fig. 4).
    fn group(&self) -> OpGroup;
    /// Blob names read.
    fn inputs(&self) -> Vec<String>;
    /// Blob names written.
    fn outputs(&self) -> Vec<String>;
    /// Executes the operator against the workspace.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] when inputs are missing, mistyped, or
    /// shape-inconsistent.
    fn run(&self, ws: &mut Workspace) -> Result<(), GraphError>;

    /// Downcast hook for the sharding partitioner: returns `Some` when
    /// this operator is a [`crate::ops::SparseLengthsSum`], the operator
    /// family relocated to sparse shards. Default: `None`.
    fn as_sparse_lengths_sum(&self) -> Option<&crate::ops::SparseLengthsSum> {
        None
    }

    /// The asynchronous (issue/collect) form of this operator, when it
    /// has one. RPC operators return `Some`; purely local compute is
    /// synchronous and returns `None` (the default), so the scheduler
    /// runs it via [`Operator::run`] in list order.
    fn as_async(&self) -> Option<&dyn AsyncOperator> {
        None
    }

    /// Mutable downcast hook for post-construction configuration (e.g.
    /// the serving layer injecting a retry/hedge policy into RPC
    /// operators after partitioning). Operators with no mutable
    /// configuration return `None` (the default).
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// An operator that can split execution into a non-blocking *issue*
/// (read inputs, fire the remote call) and a deferred *collect* (wait
/// for the reply, write outputs) — the paper's asynchronous RPC ops
/// (§IV-A). [`NetDef::run_overlapped`] issues every ready async
/// operator immediately and collects each one only when its outputs are
/// demanded, overlapping all in-flight calls with local compute.
pub trait AsyncOperator {
    /// Reads this operator's inputs from the workspace and starts the
    /// operation without waiting for it, returning the pending handle.
    ///
    /// # Errors
    ///
    /// Propagates missing/mistyped input blobs and transport failures
    /// that surface at send time. Failures of the remote computation
    /// itself may instead be deferred to [`PendingOp::collect`].
    fn issue(&self, ws: &Workspace) -> Result<Box<dyn PendingOp>, GraphError>;
}

/// An issued asynchronous operation whose outputs have not been
/// collected yet. Dropping a pending operation abandons it (the remote
/// side completes; the reply is discarded).
pub trait PendingOp: Send {
    /// Waits for the operation to finish and writes its output blobs.
    /// Operations with retry/hedge/fallback machinery return a
    /// [`RpcOutcome`] describing what it took to settle; plain
    /// operations return `None`.
    ///
    /// # Errors
    ///
    /// Propagates remote failures and malformed responses.
    fn collect(self: Box<Self>, ws: &mut Workspace) -> Result<Option<RpcOutcome>, GraphError>;
}

/// What role one transmission played in settling an asynchronous
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcAttemptKind {
    /// The first transmission.
    Primary,
    /// A re-transmission after a failed or timed-out attempt.
    Retry,
    /// A duplicate transmission racing a straggler (first reply wins).
    Hedge,
}

/// One transmission of an asynchronous operation: its wall-clock window
/// and how it ended.
#[derive(Debug, Clone)]
pub struct RpcAttempt {
    /// Role of this transmission.
    pub kind: RpcAttemptKind,
    /// When the attempt was handed to the transport.
    pub issued_at: Instant,
    /// When the attempt settled: reply consumed, error observed, or
    /// abandoned (a losing hedge, a timed-out attempt).
    pub settled_at: Instant,
    /// Whether this attempt's reply was the one used.
    pub winner: bool,
    /// The error that ended the attempt, when it did not win
    /// (`None` for the winner and for abandoned still-healthy hedges).
    pub error: Option<String>,
}

/// How an asynchronous operation settled: every transmission it took,
/// and whether the output is real or a degraded fallback. Forwarded to
/// [`ExecutionObserver::on_rpc_outcome`] by the overlap scheduler so
/// serving layers can count retries/hedges and trace attempt windows.
#[derive(Debug, Clone, Default)]
pub struct RpcOutcome {
    /// Every transmission, in issue order (empty for plain local ops).
    pub attempts: Vec<RpcAttempt>,
    /// Re-transmissions after failure/timeout.
    pub retries: u32,
    /// Duplicate transmissions racing stragglers.
    pub hedges: u32,
    /// Whether the operation exhausted its attempts and substituted a
    /// degraded fallback output instead of failing.
    pub degraded: bool,
    /// Classification of the terminal error when `degraded` (e.g.
    /// "timeout", "transport").
    pub error_kind: Option<String>,
    /// Bags pooled entirely from the main shard's hot-row cache
    /// (no wire traffic for them).
    pub cache_hits: u64,
    /// Bags with at least one cold row, sent to the shard whole.
    pub cache_misses: u64,
    /// Row lookups served from the hot-row cache instead of the wire.
    pub cache_local_rows: u64,
}

/// Observes operator execution; used for the real engine's per-group
/// compute attribution.
pub trait ExecutionObserver {
    /// Called after each operator with its measured wall time. For
    /// asynchronous operators under [`NetDef::run_overlapped`], the
    /// reported time spans issue through collect (the outstanding
    /// window is *included*); use the RPC hooks below to separate the
    /// non-CPU outstanding window.
    fn on_op(&mut self, net: &str, op: &dyn Operator, elapsed_secs: f64);

    /// Called when the scheduler issues an asynchronous operator.
    fn on_rpc_issued(&mut self, _net: &str, _op: &dyn Operator, _at: Instant) {}

    /// Called when the scheduler collects an asynchronous operator:
    /// `issued_at..collected_at` is the outstanding window (issue to
    /// response consumed), the span pair Gantt export renders.
    fn on_rpc_collected(
        &mut self,
        _net: &str,
        _op: &dyn Operator,
        _issued_at: Instant,
        _collected_at: Instant,
    ) {
    }

    /// Called right after [`Self::on_rpc_collected`] when the collected
    /// operation reported how it settled: retries, hedges, per-attempt
    /// windows, degraded fallback. Default: ignored.
    fn on_rpc_outcome(&mut self, _net: &str, _op: &dyn Operator, _outcome: &RpcOutcome) {}
}

/// Observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl ExecutionObserver for NoopObserver {
    fn on_op(&mut self, _net: &str, _op: &dyn Operator, _elapsed_secs: f64) {}
}

/// Observer accumulating wall time per [`OpGroup`].
#[derive(Debug, Default, Clone)]
pub struct GroupTimingObserver {
    totals: HashMap<OpGroup, f64>,
}

impl GroupTimingObserver {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds accumulated for `group`.
    #[must_use]
    pub fn seconds(&self, group: OpGroup) -> f64 {
        self.totals.get(&group).copied().unwrap_or(0.0)
    }

    /// Total seconds across all groups.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.totals.values().sum()
    }

    /// Fraction of total time spent in `group` (0 when nothing ran).
    #[must_use]
    pub fn fraction(&self, group: OpGroup) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.seconds(group) / total
        }
    }
}

impl ExecutionObserver for GroupTimingObserver {
    fn on_op(&mut self, _net: &str, op: &dyn Operator, elapsed_secs: f64) {
        *self.totals.entry(op.group()).or_insert(0.0) += elapsed_secs;
    }
}

/// An ordered list of operators — Caffe2's `NetDef`.
#[derive(Debug)]
pub struct NetDef {
    name: String,
    ops: Vec<Box<dyn Operator>>,
}

impl NetDef {
    /// Creates an empty net.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operator.
    pub fn push(&mut self, op: Box<dyn Operator>) {
        self.ops.push(op);
    }

    /// The operators, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[Box<dyn Operator>] {
        &self.ops
    }

    /// Mutable access to the operators, for post-construction
    /// configuration via [`Operator::as_any_mut`].
    pub fn ops_mut(&mut self) -> &mut [Box<dyn Operator>] {
        &mut self.ops
    }

    /// Replaces the operator list (used by the partitioner).
    pub fn set_ops(&mut self, ops: Vec<Box<dyn Operator>>) {
        self.ops = ops;
    }

    /// Consumes the net, yielding its operators (used by the
    /// partitioner, which moves non-sparse operators into the rewritten
    /// main-shard net).
    #[must_use]
    pub fn into_ops(self) -> Vec<Box<dyn Operator>> {
        self.ops
    }

    /// Runs every operator in order.
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure.
    pub fn run(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<(), GraphError> {
        for op in &self.ops {
            let start = Instant::now();
            op.run(ws)?;
            observer.on_op(&self.name, op.as_ref(), start.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Checks every operator's declared [`Operator::inputs`] against
    /// list order: each input must be in `available` (externally loaded
    /// or produced by an earlier net) or produced by an earlier operator
    /// of this net. On success, `available` is extended with this net's
    /// outputs so nets can be validated in sequence.
    ///
    /// The overlap scheduler ([`Self::run_overlapped`]) derives blob
    /// readiness purely from these declarations, so dishonest ones would
    /// silently reorder execution; this check makes them a hard error at
    /// model construction.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidGraph`] naming the first unsatisfiable
    /// (operator, input) pair.
    pub fn validate(&self, available: &mut HashSet<String>) -> Result<(), GraphError> {
        for op in &self.ops {
            for input in op.inputs() {
                if !available.contains(&input) {
                    return Err(GraphError::InvalidGraph {
                        op: op.name().to_string(),
                        blob: input,
                    });
                }
            }
            for output in op.outputs() {
                available.insert(output);
            }
        }
        Ok(())
    }

    /// Runs the net under the dependency-aware overlap scheduler.
    ///
    /// Repeatedly: (1) every not-yet-started [`AsyncOperator`] whose
    /// declared inputs are all ready is issued immediately; (2) the
    /// earliest not-yet-started operator is examined — any of its inputs
    /// still owed by an in-flight operator forces that operator to be
    /// collected (demand-driven), then the operator runs (synchronous)
    /// or is issued on the next pass (asynchronous). Once every operator
    /// has started, remaining in-flight operators are collected in list
    /// order.
    ///
    /// Blob values are bit-identical to [`Self::run`]: each operator
    /// computes the same function on the same inputs, and every blob is
    /// written by exactly one operator (enforced by list-order
    /// semantics), so only *when* writes land differs.
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure. Operators still in flight
    /// at that point are abandoned (their replies are discarded).
    pub fn run_overlapped(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<(), GraphError> {
        let n = self.ops.len();
        let mut slots: Vec<Slot> = (0..n).map(|_| Slot::Waiting).collect();
        // Blobs present at entry are the net's external inputs.
        let mut ready: HashSet<String> = ws.names().map(str::to_string).collect();
        // Which in-flight operator will produce each not-yet-ready blob.
        let mut in_flight_producer: HashMap<String, usize> = HashMap::new();

        loop {
            // Issue every ready asynchronous operator up front (§IV-A:
            // all sparse-shard requests go out before dense compute
            // blocks on any of them).
            for (i, slot) in slots.iter_mut().enumerate() {
                if !matches!(slot, Slot::Waiting) {
                    continue;
                }
                let op = &self.ops[i];
                let Some(async_op) = op.as_async() else { continue };
                if !op.inputs().iter().all(|b| ready.contains(b)) {
                    continue;
                }
                let issued_at = Instant::now();
                let pending = async_op.issue(ws)?;
                let issue_secs = issued_at.elapsed().as_secs_f64();
                observer.on_rpc_issued(&self.name, op.as_ref(), issued_at);
                for out in op.outputs() {
                    in_flight_producer.insert(out, i);
                }
                *slot = Slot::InFlight {
                    pending,
                    issued_at,
                    issue_secs,
                };
            }

            // The earliest unstarted operator drives demand.
            let Some(i) = slots.iter().position(|s| matches!(s, Slot::Waiting)) else {
                // Everything issued or done: drain in-flight ops in
                // list order, then finish.
                for j in 0..n {
                    if matches!(slots[j], Slot::InFlight { .. }) {
                        self.collect_in_flight(j, &mut slots, &mut ready, ws, observer)?;
                    }
                }
                return Ok(());
            };

            // Collect the in-flight producers of any input it misses.
            let op = &self.ops[i];
            for input in op.inputs() {
                if ready.contains(&input) {
                    continue;
                }
                let Some(&j) = in_flight_producer.get(&input) else {
                    return Err(GraphError::MissingBlob {
                        blob: input,
                        op: op.name().to_string(),
                    });
                };
                self.collect_in_flight(j, &mut slots, &mut ready, ws, observer)?;
            }
            if op.as_async().is_some() {
                // Inputs are ready now; the next pass issues it.
                continue;
            }
            let start = Instant::now();
            op.run(ws)?;
            observer.on_op(&self.name, op.as_ref(), start.elapsed().as_secs_f64());
            for out in op.outputs() {
                ready.insert(out);
            }
            slots[i] = Slot::Done;
        }
    }

    /// Collects in-flight operator `j`: waits for it, writes its
    /// outputs, notifies the observer.
    fn collect_in_flight(
        &self,
        j: usize,
        slots: &mut [Slot],
        ready: &mut HashSet<String>,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<(), GraphError> {
        let Slot::InFlight {
            pending,
            issued_at,
            issue_secs,
        } = std::mem::replace(&mut slots[j], Slot::Done)
        else {
            unreachable!("collect_in_flight called on a non-in-flight slot");
        };
        let collect_start = Instant::now();
        let outcome = pending.collect(ws)?;
        let collected_at = Instant::now();
        let op = self.ops[j].as_ref();
        observer.on_rpc_collected(&self.name, op, issued_at, collected_at);
        if let Some(outcome) = outcome {
            observer.on_rpc_outcome(&self.name, op, &outcome);
        }
        observer.on_op(
            &self.name,
            op,
            issue_secs + collected_at.duration_since(collect_start).as_secs_f64(),
        );
        for out in op.outputs() {
            ready.insert(out);
        }
        Ok(())
    }
}

/// Per-operator execution state of the overlap scheduler.
enum Slot {
    /// Not started.
    Waiting,
    /// Issued asynchronously; outputs owed.
    InFlight {
        pending: Box<dyn PendingOp>,
        issued_at: Instant,
        /// CPU seconds spent inside `issue` (request build + send).
        issue_secs: f64,
    },
    /// Ran or collected; outputs ready.
    Done,
}

/// A complete executable model: its spec, its nets in execution order,
/// and the materialized embedding tables the sparse operators reference.
#[derive(Debug)]
pub struct Model {
    /// The static description this model was built from.
    pub spec: ModelSpec,
    /// Nets in execution order (RM1/RM2: user net then content net).
    pub nets: Vec<NetDef>,
    /// Materialized tables, indexed by [`crate::TableId`]; shared with
    /// shard services after partitioning.
    pub tables: Vec<Arc<crate::EmbeddingTable>>,
    /// Name of the blob holding the final prediction.
    pub output_blob: String,
}

impl Model {
    /// Runs all nets sequentially and returns the final prediction
    /// (`batch × 1`, sigmoid output).
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure (typically a missing input
    /// blob when the caller under-populated the workspace).
    pub fn run(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<Matrix, GraphError> {
        for net in &self.nets {
            net.run(ws, observer)?;
        }
        ws.take_dense(&self.output_blob, "model-output")
    }

    /// Runs all nets in order under the overlap scheduler
    /// ([`NetDef::run_overlapped`]); bit-exact with [`Self::run`].
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure.
    pub fn run_overlapped(
        &self,
        ws: &mut Workspace,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<Matrix, GraphError> {
        for net in &self.nets {
            net.run_overlapped(ws, observer)?;
        }
        ws.take_dense(&self.output_blob, "model-output")
    }

    /// Static consumer counts for [`Workspace::set_consumer_counts`]:
    /// how many operators (across all nets) read each blob, plus one
    /// synthetic read of the output blob (the caller's fetch). A blob
    /// with count 1 has exactly one reader, so that reader may *move*
    /// the blob out of the workspace instead of cloning it
    /// ([`Workspace::take_dense`]). Compute once per model and share the
    /// `Arc` across request workspaces.
    #[must_use]
    pub fn consumer_counts(&self) -> HashMap<String, usize> {
        let mut counts = consumer_counts_of(self.nets.iter());
        *counts.entry(self.output_blob.clone()).or_insert(0) += 1;
        counts
    }

    /// Validates every net's declared inputs/outputs against list order
    /// (see [`NetDef::validate`]), with the spec's externally loaded
    /// blobs (dense features, per-table sparse inputs) as the starting
    /// set, and checks the output blob is produced. Run at model
    /// construction.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidGraph`] on the first dishonest declaration.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut available = external_input_blobs(&self.spec);
        for net in &self.nets {
            net.validate(&mut available)?;
        }
        if !available.contains(&self.output_blob) {
            return Err(GraphError::InvalidGraph {
                op: "model-output".into(),
                blob: self.output_blob.clone(),
            });
        }
        Ok(())
    }
}

/// Counts how many operators across `nets` declare each blob as an
/// input — the shared core of [`Model::consumer_counts`] and the
/// distributed variant in `dlrm-sharding`.
#[must_use]
pub fn consumer_counts_of<'a>(
    nets: impl Iterator<Item = &'a NetDef>,
) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for net in nets {
        for op in net.ops() {
            for input in op.inputs() {
                *counts.entry(input).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// The blobs loaded into the workspace from outside the graph (the
/// builder's naming convention): the dense-feature matrix plus one
/// sparse input per table. These seed graph validation's available set.
#[must_use]
pub fn external_input_blobs(spec: &ModelSpec) -> HashSet<String> {
    let mut blobs: HashSet<String> = spec
        .tables
        .iter()
        .map(crate::builder::blobs::sparse_input)
        .collect();
    blobs.insert(crate::builder::blobs::DENSE_INPUT.to_string());
    blobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct AddOne {
        input: String,
        output: String,
    }

    impl Operator for AddOne {
        fn name(&self) -> &str {
            "add_one"
        }
        fn group(&self) -> OpGroup {
            OpGroup::Other
        }
        fn inputs(&self) -> Vec<String> {
            vec![self.input.clone()]
        }
        fn outputs(&self) -> Vec<String> {
            vec![self.output.clone()]
        }
        fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
            let mut m = ws.dense(&self.input, self.name())?.clone();
            m.map_inplace(|v| v + 1.0);
            ws.put(self.output.clone(), Blob::Dense(m));
            Ok(())
        }
    }

    #[test]
    fn net_runs_ops_in_order() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        net.push(Box::new(AddOne {
            input: "y".into(),
            output: "z".into(),
        }));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        net.run(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(ws.dense("z", "test").unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn missing_blob_is_reported_with_op() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "nope".into(),
            output: "y".into(),
        }));
        let mut ws = Workspace::new();
        let err = net.run(&mut ws, &mut NoopObserver).unwrap_err();
        assert_eq!(
            err,
            GraphError::MissingBlob {
                blob: "nope".into(),
                op: "add_one".into()
            }
        );
    }

    #[test]
    fn type_mismatch_detected() {
        let mut ws = Workspace::new();
        ws.put("s", Blob::Sparse(SparseInput::new(vec![], vec![])));
        let err = ws.dense("s", "op").unwrap_err();
        assert!(matches!(err, GraphError::TypeMismatch { .. }));
    }

    #[test]
    fn timing_observer_accumulates_fractions() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(8, 8)));
        let mut obs = GroupTimingObserver::new();
        net.run(&mut ws, &mut obs).unwrap();
        assert!(obs.total_seconds() > 0.0);
        assert_eq!(obs.fraction(OpGroup::Other), 1.0);
        assert_eq!(obs.fraction(OpGroup::Fc), 0.0);
    }

    #[test]
    fn sparse_input_invariant_enforced() {
        let s = SparseInput::new(vec![1, 2, 3], vec![1, 2]);
        assert_eq!(s.batch_size(), 2);
        assert_eq!(s.num_lookups(), 3);
    }

    #[test]
    #[should_panic(expected = "cover indices")]
    fn sparse_input_bad_lengths_panics() {
        let _ = SparseInput::new(vec![1], vec![3]);
    }

    use std::sync::Mutex;

    type EventLog = Arc<Mutex<Vec<String>>>;

    fn log(events: &EventLog, entry: impl Into<String>) {
        events.lock().unwrap().push(entry.into());
    }

    /// A synchronous op that records its execution in the event log.
    #[derive(Debug)]
    struct LoggedAddOne {
        inner: AddOne,
        name: String,
        events: EventLog,
    }

    impl Operator for LoggedAddOne {
        fn name(&self) -> &str {
            &self.name
        }
        fn group(&self) -> OpGroup {
            OpGroup::Other
        }
        fn inputs(&self) -> Vec<String> {
            self.inner.inputs()
        }
        fn outputs(&self) -> Vec<String> {
            self.inner.outputs()
        }
        fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
            log(&self.events, format!("run:{}", self.name));
            self.inner.run(ws)
        }
    }

    /// A fake RPC op: issue reads the input, collect writes input + 10.
    #[derive(Debug)]
    struct TestRpc {
        name: String,
        input: String,
        output: String,
        events: EventLog,
        fail_at_issue: bool,
        fail_at_collect: bool,
    }

    impl TestRpc {
        fn new(name: &str, input: &str, output: &str, events: &EventLog) -> Self {
            Self {
                name: name.into(),
                input: input.into(),
                output: output.into(),
                events: Arc::clone(events),
                fail_at_issue: false,
                fail_at_collect: false,
            }
        }
    }

    impl Operator for TestRpc {
        fn name(&self) -> &str {
            &self.name
        }
        fn group(&self) -> OpGroup {
            OpGroup::Sls
        }
        fn inputs(&self) -> Vec<String> {
            vec![self.input.clone()]
        }
        fn outputs(&self) -> Vec<String> {
            vec![self.output.clone()]
        }
        fn run(&self, ws: &mut Workspace) -> Result<(), GraphError> {
            AsyncOperator::issue(self, ws)?.collect(ws).map(|_| ())
        }
        fn as_async(&self) -> Option<&dyn AsyncOperator> {
            Some(self)
        }
    }

    impl AsyncOperator for TestRpc {
        fn issue(&self, ws: &Workspace) -> Result<Box<dyn PendingOp>, GraphError> {
            log(&self.events, format!("issue:{}", self.name));
            if self.fail_at_issue {
                return Err(GraphError::OpFailed {
                    op: self.name.clone(),
                    message: "injected issue failure".into(),
                });
            }
            let mut m = ws.dense(&self.input, &self.name)?.clone();
            m.map_inplace(|v| v + 10.0);
            Ok(Box::new(TestPending {
                name: self.name.clone(),
                output: self.output.clone(),
                result: m,
                events: Arc::clone(&self.events),
                fail: self.fail_at_collect,
            }))
        }
    }

    struct TestPending {
        name: String,
        output: String,
        result: Matrix,
        events: EventLog,
        fail: bool,
    }

    impl PendingOp for TestPending {
        fn collect(self: Box<Self>, ws: &mut Workspace) -> Result<Option<RpcOutcome>, GraphError> {
            log(&self.events, format!("collect:{}", self.name));
            if self.fail {
                return Err(GraphError::OpFailed {
                    op: self.name.clone(),
                    message: "injected collect failure".into(),
                });
            }
            ws.put(self.output, Blob::Dense(self.result));
            Ok(None)
        }
    }

    fn logged_add_one(name: &str, input: &str, output: &str, events: &EventLog) -> LoggedAddOne {
        LoggedAddOne {
            inner: AddOne {
                input: input.into(),
                output: output.into(),
            },
            name: name.into(),
            events: Arc::clone(events),
        }
    }

    #[test]
    fn overlap_issues_every_ready_async_op_before_collecting() {
        let events: EventLog = Arc::default();
        let mut net = NetDef::new("n");
        net.push(Box::new(TestRpc::new("A", "x", "a", &events)));
        net.push(Box::new(TestRpc::new("B", "x", "b", &events)));
        net.push(Box::new(logged_add_one("C", "a", "c", &events)));
        net.push(Box::new(logged_add_one("D", "b", "d", &events)));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        net.run_overlapped(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(
            *events.lock().unwrap(),
            vec!["issue:A", "issue:B", "collect:A", "run:C", "collect:B", "run:D"],
            "both RPCs must be in flight before either is collected"
        );
        assert_eq!(ws.dense("c", "t").unwrap().get(0, 0), 11.0);
        assert_eq!(ws.dense("d", "t").unwrap().get(0, 0), 11.0);
    }

    #[test]
    fn overlap_runs_sync_ops_while_rpcs_are_in_flight() {
        let events: EventLog = Arc::default();
        let mut net = NetDef::new("n");
        net.push(Box::new(TestRpc::new("A", "x", "a", &events)));
        net.push(Box::new(logged_add_one("S", "x", "s", &events)));
        net.push(Box::new(logged_add_one("C", "a", "c", &events)));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        net.run_overlapped(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(
            *events.lock().unwrap(),
            vec!["issue:A", "run:S", "collect:A", "run:C"],
            "dense compute must run during the outstanding window; the \
             RPC is collected only when its output is demanded"
        );
    }

    #[test]
    fn overlap_handles_rpc_chains() {
        // B's input is produced by A: the scheduler must collect A
        // before it can issue B.
        let events: EventLog = Arc::default();
        let mut net = NetDef::new("n");
        net.push(Box::new(TestRpc::new("A", "x", "a", &events)));
        net.push(Box::new(TestRpc::new("B", "a", "b", &events)));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        net.run_overlapped(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(
            *events.lock().unwrap(),
            vec!["issue:A", "collect:A", "issue:B", "collect:B"]
        );
        assert_eq!(ws.dense("b", "t").unwrap().get(0, 0), 20.0);
    }

    #[test]
    fn overlap_matches_sequential_bit_for_bit() {
        let events: EventLog = Arc::default();
        let build = |events: &EventLog| {
            let mut net = NetDef::new("n");
            net.push(Box::new(logged_add_one("pre", "x", "p", events)));
            net.push(Box::new(TestRpc::new("A", "p", "a", events)));
            net.push(Box::new(TestRpc::new("B", "x", "b", events)));
            net.push(Box::new(logged_add_one("C", "a", "c", events)));
            net.push(Box::new(logged_add_one("D", "b", "d", events)));
            net
        };
        let net = build(&events);
        let mut ws_seq = Workspace::new();
        ws_seq.put("x", Blob::Dense(Matrix::from_rows(&[&[1.5, -2.0]])));
        let mut ws_ovl = ws_seq.clone();
        net.run(&mut ws_seq, &mut NoopObserver).unwrap();
        net.run_overlapped(&mut ws_ovl, &mut NoopObserver).unwrap();
        for blob in ["p", "a", "b", "c", "d"] {
            assert_eq!(
                ws_seq.dense(blob, "t").unwrap(),
                ws_ovl.dense(blob, "t").unwrap(),
                "{blob}"
            );
        }
    }

    #[test]
    fn overlap_propagates_issue_failure() {
        let events: EventLog = Arc::default();
        let mut net = NetDef::new("n");
        let mut bad = TestRpc::new("bad", "x", "a", &events);
        bad.fail_at_issue = true;
        net.push(Box::new(bad));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        let err = net.run_overlapped(&mut ws, &mut NoopObserver).unwrap_err();
        assert!(matches!(err, GraphError::OpFailed { .. }), "{err}");
    }

    #[test]
    fn overlap_propagates_collect_failure_with_others_in_flight() {
        // `bad` fails at collect while `ok` is still outstanding: the
        // error must propagate and the abandoned RPC must not hang.
        let events: EventLog = Arc::default();
        let mut net = NetDef::new("n");
        let mut bad = TestRpc::new("bad", "x", "a", &events);
        bad.fail_at_collect = true;
        net.push(Box::new(bad));
        net.push(Box::new(TestRpc::new("ok", "x", "b", &events)));
        net.push(Box::new(logged_add_one("C", "a", "c", &events)));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        let err = net.run_overlapped(&mut ws, &mut NoopObserver).unwrap_err();
        assert_eq!(
            err,
            GraphError::OpFailed {
                op: "bad".into(),
                message: "injected collect failure".into()
            }
        );
        // Both were issued before the failing collect.
        assert_eq!(
            *events.lock().unwrap(),
            vec!["issue:bad", "issue:ok", "collect:bad"]
        );
    }

    #[test]
    fn overlap_reports_missing_blob_like_sequential() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "nope".into(),
            output: "y".into(),
        }));
        let mut ws = Workspace::new();
        let err = net.run_overlapped(&mut ws, &mut NoopObserver).unwrap_err();
        assert_eq!(
            err,
            GraphError::MissingBlob {
                blob: "nope".into(),
                op: "add_one".into()
            }
        );
    }

    #[test]
    fn overlap_observer_sees_rpc_span_pairs() {
        #[derive(Default)]
        struct SpanObserver {
            issued: Vec<String>,
            collected: Vec<String>,
            ops: Vec<String>,
        }
        impl ExecutionObserver for SpanObserver {
            fn on_op(&mut self, _net: &str, op: &dyn Operator, _secs: f64) {
                self.ops.push(op.name().to_string());
            }
            fn on_rpc_issued(&mut self, _net: &str, op: &dyn Operator, _at: Instant) {
                self.issued.push(op.name().to_string());
            }
            fn on_rpc_collected(
                &mut self,
                _net: &str,
                op: &dyn Operator,
                issued_at: Instant,
                collected_at: Instant,
            ) {
                assert!(collected_at >= issued_at);
                self.collected.push(op.name().to_string());
            }
        }
        let events: EventLog = Arc::default();
        let mut net = NetDef::new("n");
        net.push(Box::new(TestRpc::new("A", "x", "a", &events)));
        net.push(Box::new(logged_add_one("C", "a", "c", &events)));
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(1, 1)));
        let mut obs = SpanObserver::default();
        net.run_overlapped(&mut ws, &mut obs).unwrap();
        assert_eq!(obs.issued, vec!["A"]);
        assert_eq!(obs.collected, vec!["A"]);
        assert_eq!(obs.ops, vec!["A", "C"], "on_op fires for async ops at collect");
    }

    #[test]
    fn take_dense_clones_without_consumer_counts() {
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::from_rows(&[&[3.0]])));
        let taken = ws.take_dense("x", "op").unwrap();
        assert_eq!(taken.get(0, 0), 3.0);
        assert!(ws.blob("x").is_some(), "unknown counts must fall back to clone");
    }

    #[test]
    fn take_dense_moves_single_consumer_blobs() {
        let mut ws = Workspace::new();
        ws.set_consumer_counts(Arc::new(
            [("x".to_string(), 1), ("y".to_string(), 2)].into(),
        ));
        ws.put("x", Blob::Dense(Matrix::from_rows(&[&[3.0]])));
        ws.put("y", Blob::Dense(Matrix::from_rows(&[&[4.0]])));
        let _ = ws.take_dense("x", "op").unwrap();
        assert!(ws.blob("x").is_none(), "single-consumer blob must move out");
        let _ = ws.take_dense("y", "op").unwrap();
        assert!(ws.blob("y").is_some(), "multi-consumer blob must stay");
    }

    #[test]
    fn take_dense_preserves_mistyped_blob() {
        let mut ws = Workspace::new();
        ws.set_consumer_counts(Arc::new([("s".to_string(), 1)].into()));
        ws.put("s", Blob::Sparse(SparseInput::new(vec![], vec![])));
        let err = ws.take_dense("s", "op").unwrap_err();
        assert!(matches!(err, GraphError::TypeMismatch { .. }));
        assert!(ws.blob("s").is_some(), "mistyped blob must not be dropped");
    }

    #[test]
    fn put_and_recycle_feed_the_buffer_pool() {
        let mut ws = Workspace::new();
        ws.put("x", Blob::Dense(Matrix::zeros(2, 2)));
        // Overwriting recycles the old store…
        ws.put("x", Blob::Dense(Matrix::zeros(2, 2)));
        assert_eq!(ws.ctx().buffers.pooled_buffers(), 1);
        // …and draining recycles the rest.
        ws.recycle_all();
        assert!(ws.is_empty());
        assert_eq!(ws.ctx().buffers.pooled_buffers(), 2);
        let reuses_before = ws.ctx().buffers.reuses();
        let m = ws.alloc_dense(2, 2);
        assert_eq!(m, Matrix::zeros(2, 2));
        assert_eq!(ws.ctx().buffers.reuses(), reuses_before + 1);
    }

    #[test]
    fn consumer_counts_of_counts_reads_across_nets() {
        let mut a = NetDef::new("a");
        a.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        let mut b = NetDef::new("b");
        b.push(Box::new(AddOne {
            input: "y".into(),
            output: "z".into(),
        }));
        b.push(Box::new(AddOne {
            input: "y".into(),
            output: "w".into(),
        }));
        let counts = consumer_counts_of([a, b].iter());
        assert_eq!(counts.get("x"), Some(&1));
        assert_eq!(counts.get("y"), Some(&2));
        assert_eq!(counts.get("z"), None);
    }

    #[test]
    fn validate_accepts_honest_declarations() {
        let mut net = NetDef::new("n");
        net.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        net.push(Box::new(AddOne {
            input: "y".into(),
            output: "z".into(),
        }));
        let mut available: HashSet<String> = ["x".to_string()].into();
        net.validate(&mut available).unwrap();
        assert!(available.contains("z"));
    }

    #[test]
    fn validate_rejects_unproduced_input() {
        let mut net = NetDef::new("n");
        // "y" is produced only *after* the op that reads it.
        net.push(Box::new(AddOne {
            input: "y".into(),
            output: "z".into(),
        }));
        net.push(Box::new(AddOne {
            input: "x".into(),
            output: "y".into(),
        }));
        let mut available: HashSet<String> = ["x".to_string()].into();
        let err = net.validate(&mut available).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidGraph {
                op: "add_one".into(),
                blob: "y".into()
            }
        );
    }
}
