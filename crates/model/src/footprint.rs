//! Unified byte accounting for everything that occupies memory.
//!
//! Historically each layer carried its own ad-hoc size method with its
//! own integer type — `TableSpec::bytes() -> u64`,
//! `EmbeddingTable::bytes() -> usize`, `QuantizedTable::bytes() ->
//! usize`, and `f64` bin sizes inside the sharding planner. The
//! capacity-pressure controller (`dlrm_serving::tenancy`) budgets host
//! DRAM against per-tenant footprints and needs *one* consistent
//! number, so every sizeable type now implements [`Footprint`] and the
//! legacy inherent methods delegate here.

use crate::spec::{ModelSpec, TableSpec};
use crate::EmbeddingTable;
use crate::F32_BYTES;

/// Something whose resident memory footprint can be stated in bytes.
///
/// All byte accounting in the workspace flows through this trait: the
/// sharding planner balances `footprint_bytes()`, the shard services
/// report it as capacity, and the tenancy pressure controller sums it
/// against the host DRAM budget. Implementations must be exact (no
/// estimates) and cheap (no traversal of the payload).
pub trait Footprint {
    /// Resident size in bytes.
    fn footprint_bytes(&self) -> u64;

    /// Resident size in GiB (derived; for display only).
    fn footprint_gib(&self) -> f64 {
        self.footprint_bytes() as f64 / crate::GIB
    }
}

impl Footprint for TableSpec {
    /// Logical FP32 size: `rows × dim × 4`.
    fn footprint_bytes(&self) -> u64 {
        self.rows * u64::from(self.dim) * F32_BYTES
    }
}

impl Footprint for ModelSpec {
    /// Sum of all embedding-table footprints (dense layers are
    /// negligible at paper scale — §II).
    fn footprint_bytes(&self) -> u64 {
        self.tables.iter().map(Footprint::footprint_bytes).sum()
    }
}

impl Footprint for EmbeddingTable {
    /// Materialized FP32 weights: `rows × dim × 4`.
    fn footprint_bytes(&self) -> u64 {
        self.weights().len() as u64 * F32_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm;

    #[test]
    fn spec_and_materialized_footprints_agree() {
        let spec = rm::rm3().scaled_to_bytes(1 << 20);
        let t = &spec.tables[1];
        let mat = EmbeddingTable::from_spec(t, 7);
        assert_eq!(t.footprint_bytes(), mat.footprint_bytes());
        assert_eq!(t.footprint_bytes(), t.bytes());
        assert_eq!(spec.footprint_bytes(), spec.total_bytes());
    }

    #[test]
    fn gib_derivation() {
        let spec = rm::rm1();
        assert!((spec.footprint_gib() - spec.total_gib()).abs() < 1e-9);
    }
}
