//! Materialized embedding tables and the SparseLengthsSum kernel.

use crate::spec::TableSpec;
use dlrm_runtime::{KernelStats, Pool, SimdLevel};
use dlrm_sim::SimRng;
use dlrm_tensor::{simd, Matrix};

/// Minimum number of lookups before SparseLengthsSum forks the pool;
/// below this the fork overhead dominates the pooling work.
const SLS_PAR_MIN_LOOKUPS: usize = 2048;

/// A materialized (in-memory, `f32`) embedding table.
///
/// In the Caffe2 framework the lookup-and-pool operator over such a table
/// is `SparseLengthsSum` (SLS, §II-1): given a flat index list and a
/// per-batch-element length list, it gathers the indexed rows and sums
/// them per element, producing a `batch × dim` matrix.
///
/// # Examples
///
/// ```
/// use dlrm_model::EmbeddingTable;
///
/// let table = EmbeddingTable::seeded("demo", 10, 4, 42);
/// // Two batch elements: the first pools rows {1, 2}, the second row {3}.
/// let pooled = table.sparse_lengths_sum(&[1, 2, 3], &[2, 1]);
/// assert_eq!(pooled.rows(), 2);
/// assert_eq!(pooled.cols(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    name: String,
    weights: Matrix,
}

impl EmbeddingTable {
    /// Creates a table from explicit weights (rows = buckets, cols = dim).
    #[must_use]
    pub fn from_weights(name: impl Into<String>, weights: Matrix) -> Self {
        Self {
            name: name.into(),
            weights,
        }
    }

    /// Creates a `rows × dim` table with reproducible pseudo-random
    /// weights in `[-0.5, 0.5)` — stand-ins for trained parameters,
    /// which the characterization never depends on.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    #[must_use]
    pub fn seeded(name: impl Into<String>, rows: u64, dim: u32, seed: u64) -> Self {
        assert!(rows > 0 && dim > 0, "degenerate table shape {rows}x{dim}");
        let rows_us = usize::try_from(rows).expect("materialized table too large");
        let mut rng = SimRng::seed_from(seed);
        let data: Vec<f32> = (0..rows_us * dim as usize)
            .map(|_| rng.next_f32() - 0.5)
            .collect();
        Self {
            name: name.into(),
            weights: Matrix::from_vec(rows_us, dim as usize, data),
        }
    }

    /// Materializes `spec` with weights from the `(seed, table id)` fork
    /// of the experiment stream, so different tables get different
    /// weights but repeated materializations are identical.
    #[must_use]
    pub fn from_spec(spec: &TableSpec, seed: u64) -> Self {
        Self::seeded(
            spec.name.clone(),
            spec.rows,
            spec.dim,
            SimRng::seed_from(seed).fork(spec.id.0 as u64).seed(),
        )
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (hash buckets).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// Size in bytes at FP32 (the [`crate::Footprint`] of the table,
    /// as `usize` for slice arithmetic).
    #[must_use]
    pub fn bytes(&self) -> usize {
        usize::try_from(crate::Footprint::footprint_bytes(self)).expect("table fits in memory")
    }

    /// One embedding row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        self.weights.row(row)
    }

    /// Mutable access to the raw weights (used by the compression crate).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Read access to the raw weights.
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The SparseLengthsSum kernel: gathers `indices` and sums them per
    /// batch element as described by `lengths`.
    ///
    /// `lengths[b]` is the number of consecutive entries of `indices`
    /// belonging to batch element `b`; `indices.len()` must equal the sum
    /// of `lengths`. An element with length 0 pools to the zero vector
    /// (standard SLS semantics for absent features).
    ///
    /// # Panics
    ///
    /// Panics if the lengths don't cover `indices` exactly or any index
    /// is out of range.
    #[must_use]
    pub fn sparse_lengths_sum(&self, indices: &[u64], lengths: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(lengths.len(), self.dim());
        self.sparse_lengths_sum_into(indices, lengths, &mut out, &Pool::sequential());
        out
    }

    /// [`Self::sparse_lengths_sum`] parallelized across bags (batch
    /// elements) on `pool`. Each output row is pooled by exactly one
    /// task with the same sequential, index-ascending inner loop, so the
    /// result is bit-exact with the sequential kernel for any worker
    /// count.
    ///
    /// # Panics
    ///
    /// As for [`Self::sparse_lengths_sum`].
    #[must_use]
    pub fn sparse_lengths_sum_par(&self, indices: &[u64], lengths: &[u32], pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(lengths.len(), self.dim());
        self.sparse_lengths_sum_into(indices, lengths, &mut out, pool);
        out
    }

    /// [`Self::sparse_lengths_sum`] into a caller-provided output matrix
    /// (so serving paths reuse recycled backing stores), bag-parallel on
    /// `pool`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths don't cover `indices` exactly, any index is
    /// out of range, or `out` is not `lengths.len() × dim`.
    pub fn sparse_lengths_sum_into(
        &self,
        indices: &[u64],
        lengths: &[u32],
        out: &mut Matrix,
        pool: &Pool,
    ) {
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        assert_eq!(
            total,
            indices.len(),
            "lengths sum {total} != indices len {} in table {}",
            indices.len(),
            self.name
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (lengths.len(), self.dim()),
            "SLS output must be {}x{}",
            lengths.len(),
            self.dim()
        );
        out.as_mut_slice().fill(0.0);
        let dim = self.dim();
        if lengths.is_empty() || dim == 0 {
            return;
        }
        let level = simd::effective_level(pool.dispatch().level());
        KernelStats::global().record_sls(level);
        if pool.threads() <= 1 || total < SLS_PAR_MIN_LOOKUPS || lengths.len() <= 1 {
            self.pool_bags(indices, lengths, out.as_mut_slice(), level);
            return;
        }
        // Cursor positions are a prefix sum over lengths, so a chunk of
        // bags needs its starting offset into `indices`.
        let mut offsets: Vec<usize> = Vec::with_capacity(lengths.len());
        let mut cursor = 0usize;
        for &len in lengths {
            offsets.push(cursor);
            cursor += len as usize;
        }
        let bags_per_chunk = lengths.len().div_ceil(pool.threads()).max(1);
        pool.par_chunks_mut(out.as_mut_slice(), bags_per_chunk * dim, |start, chunk| {
            let b0 = start / dim;
            let bags = chunk.len() / dim;
            let lo = offsets[b0];
            let hi = offsets
                .get(b0 + bags)
                .copied()
                .unwrap_or(indices.len());
            self.pool_bags(&indices[lo..hi], &lengths[b0..b0 + bags], chunk, level);
        });
    }

    /// Pools a contiguous run of bags into `out_rows` (one row per
    /// bag, already zeroed). The row-accumulate step is element-wise,
    /// so the vectorized tier keeps the exact per-element row order —
    /// bitwise-equal to the scalar loop.
    fn pool_bags(&self, indices: &[u64], lengths: &[u32], out_rows: &mut [f32], level: SimdLevel) {
        let dim = self.dim();
        let mut cursor = 0usize;
        for (b, &len) in lengths.iter().enumerate() {
            let out_row = &mut out_rows[b * dim..(b + 1) * dim];
            for &idx in &indices[cursor..cursor + len as usize] {
                let idx = usize::try_from(idx).expect("index exceeds usize");
                assert!(
                    idx < self.weights.rows(),
                    "index {idx} out of range for table {} ({} rows)",
                    self.name,
                    self.weights.rows()
                );
                simd::add_assign(level, out_row, self.weights.row(idx));
            }
            cursor += len as usize;
        }
    }

    /// SparseLengthsSum with mean pooling instead of sum pooling
    /// (`SparseLengthsMean` in the Caffe2 family). Zero-length elements
    /// pool to zero.
    ///
    /// # Panics
    ///
    /// As for [`Self::sparse_lengths_sum`].
    #[must_use]
    pub fn sparse_lengths_mean(&self, indices: &[u64], lengths: &[u32]) -> Matrix {
        let mut out = self.sparse_lengths_sum(indices, lengths);
        for (b, &len) in lengths.iter().enumerate() {
            if len > 1 {
                let inv = 1.0 / len as f32;
                for v in out.row_mut(b) {
                    *v *= inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{NetId, TableId};

    fn table_with_rows(rows: &[&[f32]]) -> EmbeddingTable {
        EmbeddingTable::from_weights("t", Matrix::from_rows(rows))
    }

    #[test]
    fn sls_sums_selected_rows() {
        let t = table_with_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let out = t.sparse_lengths_sum(&[0, 1, 2], &[2, 1]);
        assert_eq!(out.row(0), &[1.0, 1.0]);
        assert_eq!(out.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn sls_repeated_index_counts_twice() {
        let t = table_with_rows(&[&[1.5]]);
        let out = t.sparse_lengths_sum(&[0, 0, 0], &[3]);
        assert_eq!(out.get(0, 0), 4.5);
    }

    #[test]
    fn sls_zero_length_yields_zero_vector() {
        let t = table_with_rows(&[&[7.0, 8.0]]);
        let out = t.sparse_lengths_sum(&[], &[0, 0]);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn mean_pooling_divides_by_count() {
        let t = table_with_rows(&[&[2.0], &[4.0]]);
        let out = t.sparse_lengths_mean(&[0, 1], &[2]);
        assert_eq!(out.get(0, 0), 3.0);
    }

    #[test]
    fn seeded_tables_are_reproducible() {
        let a = EmbeddingTable::seeded("a", 16, 4, 99);
        let b = EmbeddingTable::seeded("a", 16, 4, 99);
        assert_eq!(a, b);
        let c = EmbeddingTable::seeded("a", 16, 4, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn from_spec_mixes_table_id_into_seed() {
        let mk = |id: usize| TableSpec {
            id: TableId(id),
            name: "x".into(),
            rows: 8,
            dim: 2,
            net: NetId(0),
            pooling_factor: 1.0,
        };
        let t0 = EmbeddingTable::from_spec(&mk(0), 7);
        let t1 = EmbeddingTable::from_spec(&mk(1), 7);
        assert_ne!(t0.weights(), t1.weights());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sls_rejects_out_of_range_index() {
        let t = table_with_rows(&[&[1.0]]);
        let _ = t.sparse_lengths_sum(&[5], &[1]);
    }

    #[test]
    #[should_panic(expected = "lengths sum")]
    fn sls_rejects_inconsistent_lengths() {
        let t = table_with_rows(&[&[1.0]]);
        let _ = t.sparse_lengths_sum(&[0, 0], &[1]);
    }
}
