//! Model publishing: serialize/deserialize model specifications.
//!
//! The production flow reshards and *serializes* models to storage
//! after training ("a custom partitioning tool ... generates new
//! Caffe2 nets, and then serializes the model to storage", §III-C).
//! This module provides that publishing format for [`ModelSpec`]s: a
//! deterministic, line-oriented text format (one record per line,
//! space-separated fields) chosen over a serde dependency because the
//! grammar is a dozen lines and the files are human-diffable — the
//! property model-publishing pipelines actually rely on.

use crate::spec::{ModelSpec, NetId, NetSpec, TableId, TableSpec};

/// Errors from parsing a published model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line of the failure (0 = file-level problem).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpecError {}

const HEADER: &str = "dlrm-model v1";

/// Serializes `spec` to the v1 publishing format.
///
/// # Examples
///
/// ```
/// use dlrm_model::publish;
///
/// let spec = dlrm_model::rm::rm3();
/// let text = publish::spec_to_text(&spec);
/// let back = publish::spec_from_text(&text)?;
/// assert_eq!(back, spec);
/// # Ok::<(), dlrm_model::publish::ParseSpecError>(())
/// ```
#[must_use]
pub fn spec_to_text(spec: &ModelSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "name {}", spec.name);
    let _ = writeln!(out, "dense_features {}", spec.dense_features);
    let _ = writeln!(out, "default_batch_size {}", spec.default_batch_size);
    let _ = writeln!(out, "mean_items {}", spec.mean_items_per_request);
    for n in &spec.nets {
        let _ = writeln!(
            out,
            "net {} {} {} {} {}",
            n.id.0,
            n.name,
            join(&n.bottom_mlp),
            join(&n.top_mlp),
            if n.takes_prev_output { "chained" } else { "root" },
        );
    }
    for t in &spec.tables {
        let _ = writeln!(
            out,
            "table {} {} {} {} {} {}",
            t.id.0, t.name, t.rows, t.dim, t.net.0, t.pooling_factor,
        );
    }
    out
}

fn join(v: &[usize]) -> String {
    v.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn split_usizes(s: &str, line: usize) -> Result<Vec<usize>, ParseSpecError> {
    s.split(',')
        .map(|p| {
            p.parse::<usize>().map_err(|_| ParseSpecError {
                line,
                message: format!("bad layer width {p:?}"),
            })
        })
        .collect()
}

fn parse<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, ParseSpecError> {
    s.parse().map_err(|_| ParseSpecError {
        line,
        message: format!("bad {what}: {s:?}"),
    })
}

/// Parses the v1 publishing format back into a validated [`ModelSpec`].
///
/// # Errors
///
/// [`ParseSpecError`] with the offending line on malformed input, and
/// line 0 when the assembled spec fails [`ModelSpec::validate`].
pub fn spec_from_text(text: &str) -> Result<ModelSpec, ParseSpecError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseSpecError {
        line: 0,
        message: "empty file".into(),
    })?;
    if header.trim() != HEADER {
        return Err(ParseSpecError {
            line: 1,
            message: format!("expected header {HEADER:?}, got {header:?}"),
        });
    }

    let mut name = None;
    let mut dense_features = None;
    let mut default_batch_size = None;
    let mut mean_items = None;
    let mut nets: Vec<NetSpec> = Vec::new();
    let mut tables: Vec<TableSpec> = Vec::new();

    for (idx, raw) in lines {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let kind = fields.next().expect("non-empty line");
        let rest: Vec<&str> = fields.collect();
        match kind {
            "name" => name = Some(rest.join(" ")),
            "dense_features" => {
                dense_features = Some(parse(one(&rest, line)?, line, "dense_features")?);
            }
            "default_batch_size" => {
                default_batch_size = Some(parse(one(&rest, line)?, line, "batch size")?);
            }
            "mean_items" => mean_items = Some(parse(one(&rest, line)?, line, "mean items")?),
            "net" => {
                if rest.len() != 5 {
                    return Err(ParseSpecError {
                        line,
                        message: format!("net record needs 5 fields, got {}", rest.len()),
                    });
                }
                nets.push(NetSpec {
                    id: NetId(parse(rest[0], line, "net id")?),
                    name: rest[1].to_string(),
                    bottom_mlp: split_usizes(rest[2], line)?,
                    top_mlp: split_usizes(rest[3], line)?,
                    takes_prev_output: match rest[4] {
                        "chained" => true,
                        "root" => false,
                        other => {
                            return Err(ParseSpecError {
                                line,
                                message: format!("bad net mode {other:?}"),
                            })
                        }
                    },
                });
            }
            "table" => {
                if rest.len() != 6 {
                    return Err(ParseSpecError {
                        line,
                        message: format!("table record needs 6 fields, got {}", rest.len()),
                    });
                }
                tables.push(TableSpec {
                    id: TableId(parse(rest[0], line, "table id")?),
                    name: rest[1].to_string(),
                    rows: parse(rest[2], line, "rows")?,
                    dim: parse(rest[3], line, "dim")?,
                    net: NetId(parse(rest[4], line, "net id")?),
                    pooling_factor: parse(rest[5], line, "pooling factor")?,
                });
            }
            other => {
                return Err(ParseSpecError {
                    line,
                    message: format!("unknown record kind {other:?}"),
                })
            }
        }
    }

    let spec = ModelSpec {
        name: name.ok_or(ParseSpecError {
            line: 0,
            message: "missing name".into(),
        })?,
        dense_features: dense_features.ok_or(ParseSpecError {
            line: 0,
            message: "missing dense_features".into(),
        })?,
        tables,
        nets,
        default_batch_size: default_batch_size.ok_or(ParseSpecError {
            line: 0,
            message: "missing default_batch_size".into(),
        })?,
        mean_items_per_request: mean_items.ok_or(ParseSpecError {
            line: 0,
            message: "missing mean_items".into(),
        })?,
    };
    spec.validate().map_err(|message| ParseSpecError {
        line: 0,
        message,
    })?;
    Ok(spec)
}

fn one<'a>(rest: &[&'a str], line: usize) -> Result<&'a str, ParseSpecError> {
    if rest.len() == 1 {
        Ok(rest[0])
    } else {
        Err(ParseSpecError {
            line,
            message: format!("expected one field, got {}", rest.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm;

    #[test]
    fn round_trips_every_study_model() {
        for spec in rm::all() {
            let text = spec_to_text(&spec);
            let back = spec_from_text(&text).unwrap();
            assert_eq!(back, spec, "{}", spec.name);
        }
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let spec = rm::rm3();
        let mut text = spec_to_text(&spec);
        text = text.replace("dense_features", "# a comment\n\ndense_features");
        assert_eq!(spec_from_text(&text).unwrap(), spec);
    }

    #[test]
    fn rejects_wrong_header() {
        let err = spec_from_text("dlrm-model v9\nname x\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"));
    }

    #[test]
    fn reports_offending_line() {
        let spec = rm::rm3();
        let text = spec_to_text(&spec).replace("table 0 ", "table zero ");
        let err = spec_from_text(&text).unwrap_err();
        assert!(err.message.contains("table id"), "{err}");
        assert!(err.line > 1);
    }

    #[test]
    fn validation_failures_surface() {
        // A table referencing a missing net.
        let text = "dlrm-model v1\nname x\ndense_features 4\n\
                    default_batch_size 2\nmean_items 4\n\
                    net 0 main 8 8,1 root\n\
                    table 0 t0 16 8 7 1.0\n";
        let err = spec_from_text(text).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("net"), "{err}");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(spec_to_text(&rm::rm1()), spec_to_text(&rm::rm1()));
    }
}
