//! Cross-layer distributed tracing for inference serving.
//!
//! The paper's third contribution is "a cross-layer, distributed
//! instrumentation framework for performance debugging and optimization
//! analysis to quantify the performance overhead from RPC services and
//! the machine learning framework" (§IV). This crate is that framework:
//!
//! - [`Span`]s tag every salient interval with a [`SpanKind`] (request
//!   E2E, dense op, RPC serialize, shard-side service time, …), the
//!   server that observed it, and whether it occupied a CPU core;
//! - [`TraceCollector`] buffers spans append-only during a run (the
//!   paper logs "to a lock-free buffer ... asynchronously flushed to
//!   disk" — our simulator is single-threaded, so a Vec suffices while
//!   preserving the same post-processing interface);
//! - [`analyze`] reconstructs per-request latency stacks (Fig. 8),
//!   embedded-portion breakdowns at the *bounding* (slowest) shard with
//!   the clock-skew-safe network-latency derivation of §IV-B, and CPU
//!   stacks (Fig. 9);
//! - [`gantt`] renders one request as the text equivalent of the Fig. 3
//!   trace visualization.
//!
//! Timestamps are *server-local*: the simulator (like real datacenters)
//! gives every server a clock offset, so absolute cross-server
//! comparisons are invalid. All derived quantities here use duration
//! differences only, exactly as the paper's analysis does ("because the
//! clocks on disparate servers will be skewed, network latency is
//! measured as the difference between the outstanding request measured
//! at the main shard and the end-to-end service latency measured at the
//! sparse shard").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod collect;
pub mod export;
pub mod gantt;
mod span;

pub use analyze::{CpuStack, EmbeddedStack, LatencyStack, TraceAnalysis};
pub use collect::TraceCollector;
pub use span::{RpcId, ServerId, Span, SpanKind, TraceId};
