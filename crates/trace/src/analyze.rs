//! Post-processing: latency stacks, embedded-portion breakdowns, CPU
//! stacks.

use crate::collect::TraceCollector;
use crate::span::{RpcId, Span, SpanKind, TraceId};

/// Main-shard latency attribution of one request (Fig. 8a).
///
/// Components are wall-clock *interval unions* on the main server, so
/// overlapping parallel work (async RPCs, parallel batches) is not
/// double-counted within a component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStack {
    /// All non-SLS ML operator time.
    pub dense_ops: f64,
    /// The embedded portion: SLS execution (singular) or time with
    /// sparse-shard responses outstanding (distributed).
    pub embedded_portion: f64,
    /// All serialization/deserialization on the main shard (request,
    /// response, and per-RPC).
    pub rpc_serde: f64,
    /// Main-shard RPC service boilerplate.
    pub rpc_service: f64,
    /// Net time not spent executing operators (async scheduling,
    /// bookkeeping).
    pub net_overhead: f64,
}

impl LatencyStack {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dense_ops + self.embedded_portion + self.rpc_serde + self.rpc_service
            + self.net_overhead
    }
}

/// Breakdown of the embedded portion at the *bounding* (slowest)
/// sparse shard (Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EmbeddedStack {
    /// Network + in-kernel packet time, derived as
    /// `outstanding@main − E2E@shard` — a duration difference, immune to
    /// clock skew (§IV-B).
    pub network: f64,
    /// SLS operator execution at the shard (or on main when singular).
    pub sparse_ops: f64,
    /// Shard-side request/response (de)serialization.
    pub rpc_serde: f64,
    /// Shard-side service boilerplate.
    pub rpc_service: f64,
    /// Shard-side net scheduling remainder.
    pub net_overhead: f64,
}

impl EmbeddedStack {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.network + self.sparse_ops + self.rpc_serde + self.rpc_service + self.net_overhead
    }
}

/// Aggregate CPU-time attribution of one request across *all* servers
/// (Fig. 9): the sum of core-occupying span durations by layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuStack {
    /// Dense operator compute.
    pub dense_ops: f64,
    /// SLS compute (wherever it ran).
    pub sparse_ops: f64,
    /// All serialization/deserialization, both sides.
    pub rpc_serde: f64,
    /// Service boilerplate, both sides.
    pub rpc_service: f64,
    /// Net scheduling/bookkeeping.
    pub net_overhead: f64,
}

impl CpuStack {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dense_ops + self.sparse_ops + self.rpc_serde + self.rpc_service + self.net_overhead
    }
}

/// Length of the union of `intervals` (start, end pairs).
fn union_length(mut intervals: Vec<(f64, f64)>) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let (mut lo, mut hi) = intervals[0];
    for &(s, e) in &intervals[1..] {
        if s > hi {
            total += hi - lo;
            lo = s;
            hi = e;
        } else {
            hi = hi.max(e);
        }
    }
    total + (hi - lo)
}

/// Analysis facade over a collected trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceAnalysis<'a> {
    collector: &'a TraceCollector,
}

impl<'a> TraceAnalysis<'a> {
    /// Wraps a collector for analysis.
    #[must_use]
    pub fn new(collector: &'a TraceCollector) -> Self {
        Self { collector }
    }

    fn spans_of(&self, trace: TraceId) -> impl Iterator<Item = &'a Span> {
        self.collector.of_trace(trace)
    }

    /// End-to-end latency of one request (its `RequestE2E` span).
    #[must_use]
    pub fn e2e_latency(&self, trace: TraceId) -> Option<f64> {
        self.spans_of(trace)
            .find(|s| matches!(s.kind, SpanKind::RequestE2E))
            .map(|s| s.duration)
    }

    /// Aggregate CPU time of one request across all servers.
    #[must_use]
    pub fn cpu_time(&self, trace: TraceId) -> f64 {
        self.spans_of(trace).filter(|s| s.cpu).map(|s| s.duration).sum()
    }

    /// Fig. 8a: the main-shard latency stack of one request.
    #[must_use]
    pub fn latency_stack(&self, trace: TraceId) -> LatencyStack {
        let mut dense = Vec::new();
        let mut embedded = Vec::new();
        let mut serde = Vec::new();
        let mut service = Vec::new();
        let mut overhead = Vec::new();
        for s in self.spans_of(trace).filter(|s| s.server.is_main()) {
            let iv = (s.start, s.end());
            match s.kind {
                SpanKind::DenseOp => dense.push(iv),
                SpanKind::SparseOp(_) | SpanKind::RpcOutstanding(_) => embedded.push(iv),
                SpanKind::RequestDeser
                | SpanKind::ResponseSer
                | SpanKind::RpcSerialize(_)
                | SpanKind::RpcDeserialize(_) => serde.push(iv),
                SpanKind::MainService => service.push(iv),
                SpanKind::NetOverhead => overhead.push(iv),
                _ => {}
            }
        }
        LatencyStack {
            dense_ops: union_length(dense),
            embedded_portion: union_length(embedded),
            rpc_serde: union_length(serde),
            rpc_service: union_length(service),
            net_overhead: union_length(overhead),
        }
    }

    /// Fig. 8b: the embedded-portion breakdown at the bounding shard —
    /// "the slowest asynchronous sparse shard request, per main shard
    /// request, is used for latency breakdown" (§IV-B).
    ///
    /// For singular traces (no RPCs) the stack is pure SLS time.
    #[must_use]
    pub fn embedded_stack(&self, trace: TraceId) -> EmbeddedStack {
        // Find the slowest outstanding RPC on the main shard.
        let bounding: Option<(RpcId, f64)> = self
            .spans_of(trace)
            .filter(|s| s.server.is_main())
            .filter_map(|s| match s.kind {
                SpanKind::RpcOutstanding(r) => Some((r, s.duration)),
                _ => None,
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));

        let Some((rpc, outstanding)) = bounding else {
            // Singular: the embedded portion is local SLS execution.
            let sls = union_length(
                self.spans_of(trace)
                    .filter(|s| s.server.is_main())
                    .filter(|s| matches!(s.kind, SpanKind::SparseOp(_)))
                    .map(|s| (s.start, s.end()))
                    .collect(),
            );
            return EmbeddedStack {
                sparse_ops: sls,
                ..EmbeddedStack::default()
            };
        };

        let mut shard_e2e = 0.0;
        let mut sls = 0.0;
        let mut serde = 0.0;
        let mut service = 0.0;
        for s in self.spans_of(trace) {
            match s.kind {
                SpanKind::ShardE2E(r) if r == rpc => shard_e2e += s.duration,
                SpanKind::SparseOp(Some(r)) if r == rpc => sls += s.duration,
                SpanKind::ShardDeser(r) | SpanKind::ShardSer(r) if r == rpc => {
                    serde += s.duration;
                }
                SpanKind::ShardService(r) if r == rpc => service += s.duration,
                _ => {}
            }
        }
        EmbeddedStack {
            network: (outstanding - shard_e2e).max(0.0),
            sparse_ops: sls,
            rpc_serde: serde,
            rpc_service: service,
            net_overhead: (shard_e2e - sls - serde - service).max(0.0),
        }
    }

    /// Fig. 9: the aggregate CPU stack of one request across all
    /// servers.
    #[must_use]
    pub fn cpu_stack(&self, trace: TraceId) -> CpuStack {
        let mut out = CpuStack::default();
        for s in self.spans_of(trace).filter(|s| s.cpu) {
            match s.kind {
                SpanKind::DenseOp => out.dense_ops += s.duration,
                SpanKind::SparseOp(_) => out.sparse_ops += s.duration,
                SpanKind::RequestDeser
                | SpanKind::ResponseSer
                | SpanKind::RpcSerialize(_)
                | SpanKind::RpcDeserialize(_)
                | SpanKind::ShardDeser(_)
                | SpanKind::ShardSer(_) => out.rpc_serde += s.duration,
                SpanKind::MainService | SpanKind::ShardService(_) => {
                    out.rpc_service += s.duration;
                }
                SpanKind::NetOverhead => out.net_overhead += s.duration,
                _ => {}
            }
        }
        out
    }

    /// Component-wise median latency stack across `traces` (the P50
    /// bars of Fig. 8a).
    #[must_use]
    pub fn median_latency_stack(&self, traces: &[TraceId]) -> LatencyStack {
        let stacks: Vec<LatencyStack> =
            traces.iter().map(|&t| self.latency_stack(t)).collect();
        LatencyStack {
            dense_ops: median(stacks.iter().map(|s| s.dense_ops)),
            embedded_portion: median(stacks.iter().map(|s| s.embedded_portion)),
            rpc_serde: median(stacks.iter().map(|s| s.rpc_serde)),
            rpc_service: median(stacks.iter().map(|s| s.rpc_service)),
            net_overhead: median(stacks.iter().map(|s| s.net_overhead)),
        }
    }

    /// Component-wise median embedded stack across `traces` (Fig. 8b).
    #[must_use]
    pub fn median_embedded_stack(&self, traces: &[TraceId]) -> EmbeddedStack {
        let stacks: Vec<EmbeddedStack> =
            traces.iter().map(|&t| self.embedded_stack(t)).collect();
        EmbeddedStack {
            network: median(stacks.iter().map(|s| s.network)),
            sparse_ops: median(stacks.iter().map(|s| s.sparse_ops)),
            rpc_serde: median(stacks.iter().map(|s| s.rpc_serde)),
            rpc_service: median(stacks.iter().map(|s| s.rpc_service)),
            net_overhead: median(stacks.iter().map(|s| s.net_overhead)),
        }
    }

    /// Component-wise mean CPU stack across `traces` (Fig. 9 uses the
    /// aggregate; mean preserves additivity with the total).
    #[must_use]
    pub fn mean_cpu_stack(&self, traces: &[TraceId]) -> CpuStack {
        if traces.is_empty() {
            return CpuStack::default();
        }
        let mut out = CpuStack::default();
        for &t in traces {
            let s = self.cpu_stack(t);
            out.dense_ops += s.dense_ops;
            out.sparse_ops += s.sparse_ops;
            out.rpc_serde += s.rpc_serde;
            out.rpc_service += s.rpc_service;
            out.net_overhead += s.net_overhead;
        }
        let n = traces.len() as f64;
        out.dense_ops /= n;
        out.sparse_ops /= n;
        out.rpc_serde /= n;
        out.rpc_service /= n;
        out.net_overhead /= n;
        out
    }

    /// Per-shard total SLS operator latency across `traces` (the
    /// per-shard operator latency figures, Figs. 10–12).
    #[must_use]
    pub fn per_server_sparse_op_time(&self, traces: &[TraceId]) -> Vec<(crate::ServerId, f64)> {
        let mut by_server: std::collections::BTreeMap<crate::ServerId, f64> = Default::default();
        for &t in traces {
            for s in self.spans_of(t) {
                if matches!(s.kind, SpanKind::SparseOp(_)) {
                    *by_server.entry(s.server).or_insert(0.0) += s.duration;
                }
            }
        }
        by_server.into_iter().collect()
    }
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    v[(v.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RpcId, ServerId};

    fn mk(
        trace: u64,
        server: ServerId,
        kind: SpanKind,
        start: f64,
        duration: f64,
        cpu: bool,
    ) -> Span {
        Span {
            trace: TraceId(trace),
            server,
            kind,
            start,
            duration,
            cpu,
        }
    }

    /// A hand-built distributed trace: 10ms E2E, 2ms dense, one RPC
    /// outstanding 5ms whose shard spent 3ms (1 service, 0.5 deser,
    /// 1 SLS, 0.5 ser) → network 2ms.
    fn sample_collector() -> TraceCollector {
        let r = RpcId(0);
        let sh = ServerId::sparse(0);
        let mut c = TraceCollector::new();
        for s in [
            mk(1, ServerId::MAIN, SpanKind::RequestE2E, 0.0, 10.0, false),
            mk(1, ServerId::MAIN, SpanKind::RequestDeser, 0.0, 1.0, true),
            mk(1, ServerId::MAIN, SpanKind::DenseOp, 1.0, 2.0, true),
            mk(1, ServerId::MAIN, SpanKind::RpcSerialize(r), 3.0, 0.5, true),
            mk(1, ServerId::MAIN, SpanKind::RpcOutstanding(r), 3.5, 5.0, false),
            // Shard clock is skewed by +100ms; only durations matter.
            mk(1, sh, SpanKind::ShardE2E(r), 104.5, 3.0, false),
            mk(1, sh, SpanKind::ShardService(r), 104.5, 1.0, true),
            mk(1, sh, SpanKind::ShardDeser(r), 105.5, 0.5, true),
            mk(1, sh, SpanKind::SparseOp(Some(r)), 106.0, 1.0, true),
            mk(1, sh, SpanKind::ShardSer(r), 107.0, 0.5, true),
            mk(1, ServerId::MAIN, SpanKind::RpcDeserialize(r), 8.5, 0.5, true),
            mk(1, ServerId::MAIN, SpanKind::DenseOp, 9.0, 1.0, true),
        ] {
            c.record(s);
        }
        c
    }

    #[test]
    fn e2e_and_cpu_time() {
        let c = sample_collector();
        let a = TraceAnalysis::new(&c);
        assert_eq!(a.e2e_latency(TraceId(1)), Some(10.0));
        // CPU = 1 + 2 + 0.5 + 1 + 0.5 + 1 + 0.5 + 0.5 + 1 = 8.0
        assert!((a.cpu_time(TraceId(1)) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn latency_stack_components() {
        let c = sample_collector();
        let a = TraceAnalysis::new(&c);
        let s = a.latency_stack(TraceId(1));
        assert_eq!(s.dense_ops, 3.0);
        assert_eq!(s.embedded_portion, 5.0);
        assert_eq!(s.rpc_serde, 2.0); // 1 + 0.5 + 0.5
        assert_eq!(s.net_overhead, 0.0);
    }

    #[test]
    fn embedded_stack_derives_network_despite_skew() {
        let c = sample_collector();
        let a = TraceAnalysis::new(&c);
        let s = a.embedded_stack(TraceId(1));
        // outstanding 5.0 − shard E2E 3.0 = 2.0, regardless of the
        // +100ms shard clock offset.
        assert!((s.network - 2.0).abs() < 1e-9);
        assert_eq!(s.sparse_ops, 1.0);
        assert_eq!(s.rpc_serde, 1.0);
        assert_eq!(s.rpc_service, 1.0);
        assert_eq!(s.net_overhead, 0.0);
    }

    #[test]
    fn singular_embedded_stack_is_pure_sls() {
        let mut c = TraceCollector::new();
        c.record(mk(2, ServerId::MAIN, SpanKind::RequestE2E, 0.0, 5.0, false));
        c.record(mk(2, ServerId::MAIN, SpanKind::SparseOp(None), 1.0, 2.0, true));
        let a = TraceAnalysis::new(&c);
        let s = a.embedded_stack(TraceId(2));
        assert_eq!(s.sparse_ops, 2.0);
        assert_eq!(s.network, 0.0);
        assert_eq!(s.total(), 2.0);
    }

    #[test]
    fn overlapping_intervals_not_double_counted() {
        let mut c = TraceCollector::new();
        // Two overlapping outstanding RPCs: 0–4 and 2–6 → union 6.
        c.record(mk(3, ServerId::MAIN, SpanKind::RpcOutstanding(RpcId(0)), 0.0, 4.0, false));
        c.record(mk(3, ServerId::MAIN, SpanKind::RpcOutstanding(RpcId(1)), 2.0, 4.0, false));
        let a = TraceAnalysis::new(&c);
        assert_eq!(a.latency_stack(TraceId(3)).embedded_portion, 6.0);
    }

    #[test]
    fn bounding_shard_is_the_slowest() {
        let mut c = TraceCollector::new();
        let fast = RpcId(0);
        let slow = RpcId(1);
        c.record(mk(4, ServerId::MAIN, SpanKind::RpcOutstanding(fast), 0.0, 1.0, false));
        c.record(mk(4, ServerId::MAIN, SpanKind::RpcOutstanding(slow), 0.0, 9.0, false));
        c.record(mk(4, ServerId::sparse(0), SpanKind::ShardE2E(fast), 0.0, 0.5, false));
        c.record(mk(4, ServerId::sparse(1), SpanKind::ShardE2E(slow), 0.0, 7.0, false));
        c.record(mk(4, ServerId::sparse(1), SpanKind::SparseOp(Some(slow)), 0.0, 7.0, true));
        let a = TraceAnalysis::new(&c);
        let s = a.embedded_stack(TraceId(4));
        assert_eq!(s.sparse_ops, 7.0);
        assert_eq!(s.network, 2.0);
    }

    #[test]
    fn cpu_stack_classification() {
        let c = sample_collector();
        let a = TraceAnalysis::new(&c);
        let s = a.cpu_stack(TraceId(1));
        assert_eq!(s.dense_ops, 3.0);
        assert_eq!(s.sparse_ops, 1.0);
        assert_eq!(s.rpc_serde, 3.0); // main: 1+0.5+0.5, shard: 0.5+0.5
        assert_eq!(s.rpc_service, 1.0);
        assert!((s.total() - a.cpu_time(TraceId(1))).abs() < 1e-9);
    }

    #[test]
    fn median_aggregation() {
        let mut c = TraceCollector::new();
        for (t, d) in [(1u64, 1.0f64), (2, 3.0), (3, 100.0)] {
            c.record(mk(t, ServerId::MAIN, SpanKind::DenseOp, 0.0, d, true));
        }
        let a = TraceAnalysis::new(&c);
        let ids: Vec<TraceId> = [1, 2, 3].map(TraceId).to_vec();
        assert_eq!(a.median_latency_stack(&ids).dense_ops, 3.0);
    }

    #[test]
    fn per_server_sparse_time() {
        let c = sample_collector();
        let a = TraceAnalysis::new(&c);
        let per = a.per_server_sparse_op_time(&[TraceId(1)]);
        assert_eq!(per, vec![(ServerId::sparse(0), 1.0)]);
    }

    #[test]
    fn union_length_edge_cases() {
        assert_eq!(union_length(vec![]), 0.0);
        assert_eq!(union_length(vec![(1.0, 2.0)]), 1.0);
        assert_eq!(union_length(vec![(0.0, 1.0), (1.0, 2.0)]), 2.0);
        assert_eq!(union_length(vec![(0.0, 5.0), (1.0, 2.0)]), 5.0);
        assert_eq!(union_length(vec![(3.0, 4.0), (0.0, 1.0)]), 2.0);
    }
}
