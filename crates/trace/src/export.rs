//! Offline trace export/import.
//!
//! "The trace points are then collected and post-processed offline for
//! overhead analysis and to reconstruct a visualization of events"
//! (§IV-A). This module is the collection boundary: spans serialize to
//! JSON-lines (one span per line — the format log shippers and offline
//! analyzers consume) and parse back losslessly, so a simulation run on
//! one machine can be attributed on another.

use crate::span::{RpcId, ServerId, Span, SpanKind, TraceId};
use crate::TraceCollector;

/// Errors from parsing an exported trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn kind_fields(kind: &SpanKind) -> (&'static str, Option<u64>) {
    match kind {
        SpanKind::RequestE2E => ("request_e2e", None),
        SpanKind::RequestDeser => ("request_deser", None),
        SpanKind::ResponseSer => ("response_ser", None),
        SpanKind::DenseOp => ("dense_op", None),
        SpanKind::NetOverhead => ("net_overhead", None),
        SpanKind::MainService => ("main_service", None),
        SpanKind::SparseOp(rpc) => ("sparse_op", rpc.map(|r| r.0)),
        SpanKind::RpcSerialize(r) => ("rpc_serialize", Some(r.0)),
        SpanKind::RpcOutstanding(r) => ("rpc_outstanding", Some(r.0)),
        SpanKind::RpcDeserialize(r) => ("rpc_deserialize", Some(r.0)),
        SpanKind::ShardE2E(r) => ("shard_e2e", Some(r.0)),
        SpanKind::ShardService(r) => ("shard_service", Some(r.0)),
        SpanKind::ShardDeser(r) => ("shard_deser", Some(r.0)),
        SpanKind::ShardSer(r) => ("shard_ser", Some(r.0)),
        SpanKind::QueueWait => ("queue_wait", None),
        SpanKind::BatchAssembly => ("batch_assembly", None),
        SpanKind::BatchExecute => ("batch_execute", None),
        SpanKind::RpcRetry(r) => ("rpc_retry", Some(r.0)),
        SpanKind::RpcHedge(r) => ("rpc_hedge", Some(r.0)),
    }
}

fn kind_from_fields(
    name: &str,
    rpc: Option<u64>,
    line: usize,
) -> Result<SpanKind, ParseTraceError> {
    let need = |line: usize| {
        rpc.map(RpcId).ok_or(ParseTraceError {
            line,
            message: format!("kind {name:?} requires an rpc id"),
        })
    };
    Ok(match name {
        "request_e2e" => SpanKind::RequestE2E,
        "request_deser" => SpanKind::RequestDeser,
        "response_ser" => SpanKind::ResponseSer,
        "dense_op" => SpanKind::DenseOp,
        "net_overhead" => SpanKind::NetOverhead,
        "main_service" => SpanKind::MainService,
        "sparse_op" => SpanKind::SparseOp(rpc.map(RpcId)),
        "rpc_serialize" => SpanKind::RpcSerialize(need(line)?),
        "rpc_outstanding" => SpanKind::RpcOutstanding(need(line)?),
        "rpc_deserialize" => SpanKind::RpcDeserialize(need(line)?),
        "shard_e2e" => SpanKind::ShardE2E(need(line)?),
        "shard_service" => SpanKind::ShardService(need(line)?),
        "shard_deser" => SpanKind::ShardDeser(need(line)?),
        "shard_ser" => SpanKind::ShardSer(need(line)?),
        "queue_wait" => SpanKind::QueueWait,
        "batch_assembly" => SpanKind::BatchAssembly,
        "batch_execute" => SpanKind::BatchExecute,
        "rpc_retry" => SpanKind::RpcRetry(need(line)?),
        "rpc_hedge" => SpanKind::RpcHedge(need(line)?),
        other => {
            return Err(ParseTraceError {
                line,
                message: format!("unknown span kind {other:?}"),
            })
        }
    })
}

/// Serializes every collected span as JSON lines.
///
/// # Examples
///
/// ```
/// use dlrm_trace::{export, Span, SpanKind, ServerId, TraceCollector, TraceId};
///
/// let mut c = TraceCollector::new();
/// c.record(Span {
///     trace: TraceId(1),
///     server: ServerId::MAIN,
///     kind: SpanKind::DenseOp,
///     start: 0.5,
///     duration: 2.0,
///     cpu: true,
/// });
/// let text = export::to_jsonl(&c);
/// let back = export::from_jsonl(&text)?;
/// assert_eq!(back.spans(), c.spans());
/// # Ok::<(), dlrm_trace::export::ParseTraceError>(())
/// ```
#[must_use]
pub fn to_jsonl(collector: &TraceCollector) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for s in collector.spans() {
        let (kind, rpc) = kind_fields(&s.kind);
        let _ = write!(
            out,
            "{{\"trace\":{},\"server\":{},\"kind\":\"{kind}\"",
            s.trace.0, s.server.0
        );
        if let Some(r) = rpc {
            let _ = write!(out, ",\"rpc\":{r}");
        }
        // f64 Display round-trips exactly in Rust.
        let _ = writeln!(
            out,
            ",\"start\":{},\"duration\":{},\"cpu\":{}}}",
            s.start, s.duration, s.cpu
        );
    }
    out
}

/// Parses JSON-lines spans back into a collector.
///
/// The parser accepts exactly the subset [`to_jsonl`] emits (flat
/// objects, no nesting or escapes) — the usual contract for log-line
/// formats.
///
/// # Errors
///
/// [`ParseTraceError`] naming the offending line.
pub fn from_jsonl(text: &str) -> Result<TraceCollector, ParseTraceError> {
    let mut collector = TraceCollector::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let bad = |message: String| ParseTraceError { line, message };
        let inner = trimmed
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| bad("not a JSON object".into()))?;

        let mut trace = None;
        let mut server = None;
        let mut kind_name: Option<String> = None;
        let mut rpc = None;
        let mut start = None;
        let mut duration = None;
        let mut cpu = None;
        for field in inner.split(',') {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| bad(format!("bad field {field:?}")))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "trace" => {
                    trace = Some(TraceId(value.parse().map_err(|_| {
                        bad(format!("bad trace id {value:?}"))
                    })?));
                }
                "server" => {
                    server = Some(ServerId(value.parse().map_err(|_| {
                        bad(format!("bad server id {value:?}"))
                    })?));
                }
                "kind" => kind_name = Some(value.trim_matches('"').to_string()),
                "rpc" => {
                    rpc = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| bad(format!("bad rpc id {value:?}")))?,
                    );
                }
                "start" => {
                    start = Some(
                        value
                            .parse::<f64>()
                            .map_err(|_| bad(format!("bad start {value:?}")))?,
                    );
                }
                "duration" => {
                    duration = Some(
                        value
                            .parse::<f64>()
                            .map_err(|_| bad(format!("bad duration {value:?}")))?,
                    );
                }
                "cpu" => {
                    cpu = Some(match value {
                        "true" => true,
                        "false" => false,
                        other => return Err(bad(format!("bad cpu flag {other:?}"))),
                    });
                }
                other => return Err(bad(format!("unknown field {other:?}"))),
            }
        }
        let kind_name = kind_name.ok_or_else(|| bad("missing kind".into()))?;
        collector.record(Span {
            trace: trace.ok_or_else(|| bad("missing trace".into()))?,
            server: server.ok_or_else(|| bad("missing server".into()))?,
            kind: kind_from_fields(&kind_name, rpc, line)?,
            start: start.ok_or_else(|| bad("missing start".into()))?,
            duration: duration.ok_or_else(|| bad("missing duration".into()))?,
            cpu: cpu.ok_or_else(|| bad("missing cpu".into()))?,
        });
    }
    Ok(collector)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceCollector {
        let mut c = TraceCollector::new();
        let spans = [
            Span {
                trace: TraceId(0),
                server: ServerId::MAIN,
                kind: SpanKind::RequestE2E,
                start: 0.0,
                duration: 10.125,
                cpu: false,
            },
            Span {
                trace: TraceId(0),
                server: ServerId::sparse(2),
                kind: SpanKind::ShardE2E(RpcId(7)),
                start: 103.5,
                duration: 3.0625,
                cpu: false,
            },
            Span {
                trace: TraceId(1),
                server: ServerId::MAIN,
                kind: SpanKind::SparseOp(None),
                start: 1.0,
                duration: 0.001_953_125,
                cpu: true,
            },
            Span {
                trace: TraceId(1),
                server: ServerId::sparse(0),
                kind: SpanKind::SparseOp(Some(RpcId(9))),
                start: 2.0,
                duration: 0.25,
                cpu: true,
            },
            Span {
                trace: TraceId(2),
                server: ServerId::MAIN,
                kind: SpanKind::QueueWait,
                start: 0.5,
                duration: 4.25,
                cpu: false,
            },
            Span {
                trace: TraceId(2),
                server: ServerId::MAIN,
                kind: SpanKind::BatchAssembly,
                start: 4.75,
                duration: 1.5,
                cpu: false,
            },
            Span {
                trace: TraceId(2),
                server: ServerId::MAIN,
                kind: SpanKind::BatchExecute,
                start: 6.25,
                duration: 8.0,
                cpu: true,
            },
            Span {
                trace: TraceId(3),
                server: ServerId::MAIN,
                kind: SpanKind::RpcRetry(RpcId(1)),
                start: 2.5,
                duration: 0.75,
                cpu: false,
            },
            Span {
                trace: TraceId(3),
                server: ServerId::MAIN,
                kind: SpanKind::RpcHedge(RpcId(1)),
                start: 3.0,
                duration: 0.5,
                cpu: false,
            },
        ];
        for s in spans {
            c.record(s);
        }
        c
    }

    #[test]
    fn round_trips_every_kind_variant() {
        let c = sample();
        let back = from_jsonl(&to_jsonl(&c)).unwrap();
        assert_eq!(back.spans(), c.spans());
    }

    #[test]
    fn float_precision_survives() {
        let mut c = TraceCollector::new();
        c.record(Span {
            trace: TraceId(3),
            server: ServerId::MAIN,
            kind: SpanKind::DenseOp,
            start: 0.1 + 0.2, // famously not 0.3
            duration: std::f64::consts::PI,
            cpu: true,
        });
        let back = from_jsonl(&to_jsonl(&c)).unwrap();
        assert_eq!(back.spans()[0].start, 0.1 + 0.2);
        assert_eq!(back.spans()[0].duration, std::f64::consts::PI);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let good = to_jsonl(&sample());
        let broken = good.replace("\"cpu\":true", "\"cpu\":maybe");
        let err = from_jsonl(&broken).unwrap_err();
        assert!(err.message.contains("cpu"), "{err}");
        assert!(err.line >= 1);
    }

    #[test]
    fn missing_rpc_for_rpc_kind_is_an_error() {
        let text = "{\"trace\":0,\"server\":0,\"kind\":\"shard_e2e\",\"start\":0,\"duration\":1,\"cpu\":false}\n";
        let err = from_jsonl(text).unwrap_err();
        assert!(err.message.contains("rpc id"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let c = sample();
        let text = format!("\n{}\n\n", to_jsonl(&c));
        assert_eq!(from_jsonl(&text).unwrap().len(), c.len());
    }

    #[test]
    fn analysis_works_on_reimported_traces() {
        use crate::analyze::TraceAnalysis;
        let c = sample();
        let back = from_jsonl(&to_jsonl(&c)).unwrap();
        let a = TraceAnalysis::new(&c);
        let b = TraceAnalysis::new(&back);
        assert_eq!(a.e2e_latency(TraceId(0)), b.e2e_latency(TraceId(0)));
        assert_eq!(a.cpu_time(TraceId(1)), b.cpu_time(TraceId(1)));
    }
}
