//! Span collection.

use crate::span::{Span, TraceId};

/// Append-only span buffer for one experiment run.
///
/// The production system logs trace points "to a lock-free buffer and
/// then asynchronously flushed to disk" (§IV-A); the simulator is
/// single-threaded, so an in-memory buffer with the same append-only
/// discipline suffices. Collection can be disabled to measure the
/// no-instrumentation configuration.
///
/// # Examples
///
/// ```
/// use dlrm_trace::{Span, SpanKind, ServerId, TraceCollector, TraceId};
///
/// let mut c = TraceCollector::new();
/// c.record(Span {
///     trace: TraceId(0),
///     server: ServerId::MAIN,
///     kind: SpanKind::RequestE2E,
///     start: 0.0,
///     duration: 10.0,
///     cpu: false,
/// });
/// assert_eq!(c.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    spans: Vec<Span>,
    disabled: bool,
}

impl TraceCollector {
    /// Creates an enabled collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector that drops every span (for overhead-free
    /// runs).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            spans: Vec::new(),
            disabled: true,
        }
    }

    /// Whether spans are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Records one span (no-op when disabled).
    pub fn record(&mut self, span: Span) {
        if !self.disabled {
            self.spans.push(span);
        }
    }

    /// Number of spans collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans have been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans, in record order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans belonging to one request.
    pub fn of_trace(&self, trace: TraceId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.trace == trace)
    }

    /// Distinct trace ids, in first-seen order.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for s in &self.spans {
            if seen.insert(s.trace) {
                out.push(s.trace);
            }
        }
        out
    }

    /// Discards all collected spans (reuse between experiment runs).
    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ServerId, SpanKind};

    fn span(trace: u64, dur: f64) -> Span {
        Span {
            trace: TraceId(trace),
            server: ServerId::MAIN,
            kind: SpanKind::DenseOp,
            start: 0.0,
            duration: dur,
            cpu: true,
        }
    }

    #[test]
    fn records_and_filters_by_trace() {
        let mut c = TraceCollector::new();
        c.record(span(1, 1.0));
        c.record(span(2, 2.0));
        c.record(span(1, 3.0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.of_trace(TraceId(1)).count(), 2);
        assert_eq!(c.trace_ids(), vec![TraceId(1), TraceId(2)]);
    }

    #[test]
    fn disabled_collector_drops_everything() {
        let mut c = TraceCollector::disabled();
        c.record(span(1, 1.0));
        assert!(c.is_empty());
        assert!(!c.is_enabled());
    }

    #[test]
    fn clear_resets() {
        let mut c = TraceCollector::new();
        c.record(span(1, 1.0));
        c.clear();
        assert!(c.is_empty());
        assert!(c.is_enabled());
    }
}
