//! Text rendering of one request's distributed trace (Fig. 3).

use crate::analyze::TraceAnalysis;
use crate::collect::TraceCollector;
use crate::span::{ServerId, Span, SpanKind, TraceId};
use std::collections::BTreeMap;

/// Renders the Fig. 3-style trace of one request: one row per span,
/// grouped by server (main shard first), bars proportional to duration.
///
/// Because server clocks are skewed, each sparse shard's spans are
/// re-anchored to the main-shard timeline using its matching
/// `RpcOutstanding` span (the renderer centers the shard's E2E inside
/// the outstanding window — the skew-free placement).
///
/// # Examples
///
/// ```
/// use dlrm_trace::{gantt, Span, SpanKind, ServerId, TraceCollector, TraceId};
///
/// let mut c = TraceCollector::new();
/// c.record(Span {
///     trace: TraceId(7),
///     server: ServerId::MAIN,
///     kind: SpanKind::RequestE2E,
///     start: 0.0,
///     duration: 4.0,
///     cpu: false,
/// });
/// let text = gantt::render(&c, TraceId(7), 40);
/// assert!(text.contains("main"));
/// ```
#[must_use]
pub fn render(collector: &TraceCollector, trace: TraceId, width: usize) -> String {
    let width = width.max(20);
    let spans: Vec<&Span> = collector.of_trace(trace).collect();
    if spans.is_empty() {
        return format!("(no spans for trace {})\n", trace.0);
    }
    let analysis = TraceAnalysis::new(collector);
    let e2e = analysis.e2e_latency(trace).unwrap_or_else(|| {
        spans
            .iter()
            .map(|s| s.duration)
            .fold(0.0, f64::max)
    });
    if e2e <= 0.0 {
        return format!("(empty trace {})\n", trace.0);
    }

    // Map each shard's local clock onto the main timeline: align the
    // shard E2E span's midpoint with the matching outstanding span's
    // midpoint.
    let mut shard_offset: BTreeMap<ServerId, f64> = BTreeMap::new();
    for s in &spans {
        if let SpanKind::ShardE2E(rpc) = s.kind {
            if let Some(out) = spans.iter().find(|o| {
                o.server.is_main() && matches!(o.kind, SpanKind::RpcOutstanding(r) if r == rpc)
            }) {
                let out_mid = out.start + out.duration / 2.0;
                let shard_mid = s.start + s.duration / 2.0;
                shard_offset.entry(s.server).or_insert(out_mid - shard_mid);
            }
        }
    }

    let origin = spans
        .iter()
        .filter(|s| s.server.is_main())
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    let scale = width as f64 / e2e;

    let mut by_server: BTreeMap<ServerId, Vec<&Span>> = BTreeMap::new();
    for s in &spans {
        by_server.entry(s.server).or_default().push(s);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace {} — e2e {:.3} ms (1 col ≈ {:.3} ms)\n",
        trace.0,
        e2e,
        1.0 / scale
    ));
    for (server, server_spans) in by_server {
        out.push_str(&format!("[{server}]\n"));
        let offset = shard_offset.get(&server).copied().unwrap_or(0.0);
        let mut ordered = server_spans;
        ordered.sort_by(|a, b| a.start.total_cmp(&b.start));
        for s in ordered {
            let rel = (s.start + offset - origin).max(0.0);
            let col = ((rel * scale).round() as usize).min(width);
            let len = ((s.duration * scale).round() as usize).clamp(1, width - col.min(width - 1));
            let bar: String = " ".repeat(col) + &"█".repeat(len);
            out.push_str(&format!(
                "  {bar:<w$} {kind:<20} {dur:>9.3} ms\n",
                w = width,
                kind = kind_label(&s.kind),
                dur = s.duration,
            ));
        }
    }
    out
}

fn kind_label(kind: &SpanKind) -> String {
    match kind {
        SpanKind::RequestE2E => "request e2e".into(),
        SpanKind::RequestDeser => "request deser".into(),
        SpanKind::ResponseSer => "response ser".into(),
        SpanKind::DenseOp => "dense ops".into(),
        SpanKind::NetOverhead => "net overhead".into(),
        SpanKind::MainService => "service".into(),
        SpanKind::SparseOp(_) => "sls ops".into(),
        SpanKind::RpcSerialize(r) => format!("rpc{} serialize", r.0),
        SpanKind::RpcOutstanding(r) => format!("rpc{} outstanding", r.0),
        SpanKind::RpcDeserialize(r) => format!("rpc{} deserialize", r.0),
        SpanKind::ShardE2E(r) => format!("rpc{} shard e2e", r.0),
        SpanKind::ShardService(r) => format!("rpc{} service", r.0),
        SpanKind::ShardDeser(r) => format!("rpc{} deser", r.0),
        SpanKind::ShardSer(r) => format!("rpc{} ser", r.0),
        SpanKind::QueueWait => "queue wait".into(),
        SpanKind::BatchAssembly => "batch assembly".into(),
        SpanKind::BatchExecute => "batch execute".into(),
        SpanKind::RpcRetry(r) => format!("rpc{} retry", r.0),
        SpanKind::RpcHedge(r) => format!("rpc{} hedge", r.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::RpcId;

    fn span(server: ServerId, kind: SpanKind, start: f64, duration: f64) -> Span {
        Span {
            trace: TraceId(1),
            server,
            kind,
            start,
            duration,
            cpu: false,
        }
    }

    #[test]
    fn renders_all_servers_and_spans() {
        let mut c = TraceCollector::new();
        let r = RpcId(0);
        c.record(span(ServerId::MAIN, SpanKind::RequestE2E, 0.0, 10.0));
        c.record(span(ServerId::MAIN, SpanKind::DenseOp, 0.0, 2.0));
        c.record(span(ServerId::MAIN, SpanKind::RpcOutstanding(r), 2.0, 6.0));
        // Shard clock offset by +50.
        c.record(span(ServerId::sparse(0), SpanKind::ShardE2E(r), 52.0, 4.0));
        let text = render(&c, TraceId(1), 60);
        assert!(text.contains("[main]"));
        assert!(text.contains("[sparse0]"));
        assert!(text.contains("dense ops"));
        assert!(text.contains("rpc0 outstanding"));
        assert!(text.contains("rpc0 shard e2e"));
        // Bars exist.
        assert!(text.contains('█'));
    }

    #[test]
    fn missing_trace_is_graceful() {
        let c = TraceCollector::new();
        let text = render(&c, TraceId(9), 40);
        assert!(text.contains("no spans"));
    }

    #[test]
    fn skewed_shard_bar_lands_inside_request_window() {
        let mut c = TraceCollector::new();
        let r = RpcId(0);
        c.record(span(ServerId::MAIN, SpanKind::RequestE2E, 100.0, 10.0));
        c.record(span(ServerId::MAIN, SpanKind::RpcOutstanding(r), 102.0, 6.0));
        c.record(span(ServerId::sparse(0), SpanKind::ShardE2E(r), 9999.0, 4.0));
        let text = render(&c, TraceId(1), 50);
        // The shard row must not be pushed off the canvas: its bar
        // should start before column 50.
        let shard_line = text
            .lines()
            .find(|l| l.contains("shard e2e"))
            .expect("shard line");
        let first_bar = shard_line.find('█').expect("bar");
        assert!(first_bar < 52, "bar starts at {first_bar}: {shard_line}");
    }
}
