//! Span records: the unit of cross-layer instrumentation.

/// Identifies one inference request across all servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one RPC within a request (matches the main-shard
/// outstanding span with the sparse-shard service spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RpcId(pub u64);

/// Identifies a server. By convention the main shard is server 0 and
/// sparse shard *k* is server *k + 1*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub usize);

impl ServerId {
    /// The main shard's server.
    pub const MAIN: ServerId = ServerId(0);

    /// The server hosting sparse shard `shard_index`.
    #[must_use]
    pub fn sparse(shard_index: usize) -> ServerId {
        ServerId(shard_index + 1)
    }

    /// Whether this is the main shard's server.
    #[must_use]
    pub fn is_main(&self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_main() {
            f.write_str("main")
        } else {
            write!(f, "sparse{}", self.0 - 1)
        }
    }
}

/// What an interval represents — the cross-layer vocabulary of the
/// instrumentation (§IV-A's trace points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Main shard: the whole request, arrival to response sent.
    RequestE2E,
    /// Main shard: deserializing the inference request.
    RequestDeser,
    /// Main shard: serializing the ranking response.
    ResponseSer,
    /// A dense (non-SLS) ML operator run.
    DenseOp,
    /// Net scheduling/bookkeeping time not spent in operators —
    /// "Net Overhead" in Fig. 8 (e.g. scheduling of asynchronous ops).
    NetOverhead,
    /// An SLS (embedding lookup + pooling) operator run: on the main
    /// shard in singular mode, on a sparse shard in distributed mode.
    SparseOp(Option<RpcId>),
    /// Main shard: RPC service boilerplate around the request (Thrift
    /// handler setup, batching bookkeeping).
    MainService,
    /// Main shard: serializing one RPC request.
    RpcSerialize(RpcId),
    /// Main shard: the window an RPC is outstanding — issue to response
    /// arrival. *Not* CPU time (the async op frees the core).
    RpcOutstanding(RpcId),
    /// Main shard: deserializing one RPC response.
    RpcDeserialize(RpcId),
    /// Sparse shard: request receipt to reply handoff (its E2E).
    ShardE2E(RpcId),
    /// Sparse shard: RPC service boilerplate.
    ShardService(RpcId),
    /// Sparse shard: deserializing the request.
    ShardDeser(RpcId),
    /// Sparse shard: serializing the pooled response.
    ShardSer(RpcId),
    /// Frontend: admission to batcher pickup. *Not* CPU time — the
    /// request sits in the bounded queue waiting for a batcher slot.
    QueueWait,
    /// Frontend: batcher pickup to batch close (the window spent waiting
    /// for co-batched requests or the batching deadline). Not CPU time.
    BatchAssembly,
    /// Frontend: the formed batch's execution window on a worker thread,
    /// dispatch to predictions split.
    BatchExecute,
    /// Main shard: a retry attempt of an RPC after its previous attempt
    /// failed or timed out — issue to settle of the retry. Not CPU time.
    RpcRetry(RpcId),
    /// Main shard: a hedge attempt of an RPC (a duplicate issue racing
    /// the straggling primary) — issue to settle. Not CPU time.
    RpcHedge(RpcId),
}

impl SpanKind {
    /// The RPC this span belongs to, when any.
    #[must_use]
    pub fn rpc(&self) -> Option<RpcId> {
        match *self {
            SpanKind::SparseOp(rpc) => rpc,
            SpanKind::RpcSerialize(r)
            | SpanKind::RpcOutstanding(r)
            | SpanKind::RpcDeserialize(r)
            | SpanKind::RpcRetry(r)
            | SpanKind::RpcHedge(r)
            | SpanKind::ShardE2E(r)
            | SpanKind::ShardService(r)
            | SpanKind::ShardDeser(r)
            | SpanKind::ShardSer(r) => Some(r),
            _ => None,
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// The observing server (timestamps are in *its* local clock).
    pub server: ServerId,
    /// What the interval represents.
    pub kind: SpanKind,
    /// Server-local start timestamp, milliseconds.
    pub start: f64,
    /// Interval length, milliseconds (clock-skew free).
    pub duration: f64,
    /// Whether the interval occupied a CPU core (contributes to the
    /// aggregate CPU time of Tables III/IV).
    pub cpu: bool,
}

impl Span {
    /// Server-local end timestamp.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_naming_convention() {
        assert!(ServerId::MAIN.is_main());
        assert_eq!(ServerId::sparse(0), ServerId(1));
        assert_eq!(ServerId::sparse(3).to_string(), "sparse3");
        assert_eq!(ServerId::MAIN.to_string(), "main");
    }

    #[test]
    fn rpc_extraction() {
        assert_eq!(SpanKind::RequestE2E.rpc(), None);
        assert_eq!(SpanKind::SparseOp(None).rpc(), None);
        assert_eq!(SpanKind::SparseOp(Some(RpcId(4))).rpc(), Some(RpcId(4)));
        assert_eq!(SpanKind::ShardE2E(RpcId(2)).rpc(), Some(RpcId(2)));
    }

    #[test]
    fn span_end() {
        let s = Span {
            trace: TraceId(0),
            server: ServerId::MAIN,
            kind: SpanKind::DenseOp,
            start: 1.5,
            duration: 2.0,
            cpu: true,
        };
        assert_eq!(s.end(), 3.5);
    }
}
