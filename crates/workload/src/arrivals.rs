//! Open-loop arrival schedules for the serving frontend.
//!
//! DeepRecSys-style latency-bounded throughput measurement requires an
//! *open-loop* request stream: arrival times are decided before the
//! system responds, so queueing delay under load is observable rather
//! than masked by closed-loop self-throttling. This module produces the
//! two arrival processes the frontend drives:
//!
//! - [`ArrivalSchedule::poisson`]: memoryless arrivals at a fixed mean
//!   QPS (exponential inter-arrival gaps), the standard datacenter
//!   serving assumption;
//! - [`ArrivalSchedule::trace_replay`]: a non-homogeneous process whose
//!   instantaneous rate follows the same diurnal sine the trace
//!   database applies to request *sizes* (§V-B's five-day sampling), so
//!   arrival position `i/n` sees the same day-phase as shape `i/n` in a
//!   [`crate::TraceDb`] of equal length.
//!
//! Schedules are fully precomputed and deterministic: the same seed
//! yields the same offsets regardless of wall-clock behavior at replay
//! time.

use dlrm_sim::dist::{Exponential, Sample};
use dlrm_sim::SimRng;

/// A precomputed open-loop arrival schedule: monotonically non-decreasing
/// request-arrival offsets in milliseconds from the start of the run.
///
/// # Examples
///
/// ```
/// use dlrm_workload::ArrivalSchedule;
///
/// let s = ArrivalSchedule::poisson(100, 500.0, 42);
/// assert_eq!(s.len(), 100);
/// // Mean gap is 2ms at 500 QPS, so 100 arrivals span roughly 200ms.
/// assert!(s.duration_ms() > 50.0 && s.duration_ms() < 800.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    /// Offset of each arrival from run start, milliseconds, sorted.
    offsets_ms: Vec<f64>,
}

impl ArrivalSchedule {
    /// A homogeneous Poisson process: `n` arrivals at mean rate `qps`,
    /// gaps drawn i.i.d. exponential from a `SimRng` forked off `seed`
    /// (consumption-independent, so co-seeded generators elsewhere do
    /// not perturb the schedule).
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not strictly positive.
    #[must_use]
    pub fn poisson(n: usize, qps: f64, seed: u64) -> Self {
        assert!(qps > 0.0, "arrival rate must be positive, got {qps}");
        let mut rng = SimRng::seed_from(seed).fork(0xa441_7a15_0000_0001);
        let gap_ms = Exponential::new(qps / 1000.0);
        let mut t = 0.0;
        let offsets_ms = (0..n)
            .map(|_| {
                t += gap_ms.sample(&mut rng);
                t
            })
            .collect();
        Self { offsets_ms }
    }

    /// A trace-replay process: `n` arrivals whose instantaneous rate is
    /// `mean_qps` modulated by the diurnal sine of [`crate::TraceDbConfig`]
    /// (`1 + amplitude * sin(2π · days · i/n)`), matching arrival `i` to
    /// the day-phase of shape `i` in an equally long [`crate::TraceDb`].
    /// Peak-of-day traffic therefore arrives faster *and* carries the
    /// larger request shapes — the compounding the paper's five-day
    /// sampling was designed to capture.
    ///
    /// # Panics
    ///
    /// Panics if `mean_qps` is not strictly positive or `amplitude` is
    /// not in `[0, 1)` (an amplitude ≥ 1 would need a zero/negative
    /// instantaneous rate).
    #[must_use]
    pub fn trace_replay(n: usize, mean_qps: f64, amplitude: f64, days: f64, seed: u64) -> Self {
        assert!(
            mean_qps > 0.0,
            "arrival rate must be positive, got {mean_qps}"
        );
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0, 1), got {amplitude}"
        );
        let mut rng = SimRng::seed_from(seed).fork(0xa441_7a15_0000_0002);
        let unit_gap = Exponential::new(1.0);
        let mut t = 0.0;
        let offsets_ms = (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * days * i as f64 / n as f64;
                let rate_per_ms = mean_qps / 1000.0 * (1.0 + amplitude * phase.sin());
                // Thinning-free non-homogeneous sampling: draw a unit
                // exponential and scale by the local rate. Exact for a
                // piecewise-constant rate (constant between arrivals).
                t += unit_gap.sample(&mut rng) / rate_per_ms;
                t
            })
            .collect();
        Self { offsets_ms }
    }

    /// A Poisson process with a rate burst: arrivals come at `qps`
    /// except inside `[burst_start, burst_start + burst_len)` (both
    /// fractions of the arrival count), where the rate is `qps *
    /// burst_factor`. This is the overload shape the tenancy isolation
    /// gates drive: one tenant's traffic spikes well past its admission
    /// capacity for a bounded window while its neighbors' schedules are
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `qps` or `burst_factor` is not strictly positive, or
    /// the burst window is not a sub-range of `[0, 1]`.
    #[must_use]
    pub fn poisson_burst(
        n: usize,
        qps: f64,
        burst_factor: f64,
        burst_start: f64,
        burst_len: f64,
        seed: u64,
    ) -> Self {
        assert!(qps > 0.0, "arrival rate must be positive, got {qps}");
        assert!(
            burst_factor > 0.0,
            "burst factor must be positive, got {burst_factor}"
        );
        assert!(
            (0.0..=1.0).contains(&burst_start)
                && burst_len >= 0.0
                && burst_start + burst_len <= 1.0,
            "burst window [{burst_start}, {burst_start}+{burst_len}) outside [0, 1]"
        );
        let mut rng = SimRng::seed_from(seed).fork(0xa441_7a15_0000_0003);
        let unit_gap = Exponential::new(1.0);
        let mut t = 0.0;
        let offsets_ms = (0..n)
            .map(|i| {
                let frac = i as f64 / n.max(1) as f64;
                let in_burst = frac >= burst_start && frac < burst_start + burst_len;
                let rate_per_ms =
                    qps / 1000.0 * if in_burst { burst_factor } else { 1.0 };
                t += unit_gap.sample(&mut rng) / rate_per_ms;
                t
            })
            .collect();
        Self { offsets_ms }
    }

    /// Number of scheduled arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets_ms.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets_ms.is_empty()
    }

    /// Arrival offsets in milliseconds from run start, non-decreasing.
    #[must_use]
    pub fn offsets_ms(&self) -> &[f64] {
        &self.offsets_ms
    }

    /// Offset of the last arrival (0.0 when empty) — the open-loop span
    /// of the run, excluding drain time.
    #[must_use]
    pub fn duration_ms(&self) -> f64 {
        self.offsets_ms.last().copied().unwrap_or(0.0)
    }

    /// Offered load: scheduled arrivals per second over the schedule's
    /// span (0.0 when fewer than two arrivals).
    #[must_use]
    pub fn offered_qps(&self) -> f64 {
        if self.offsets_ms.len() < 2 || self.duration_ms() <= 0.0 {
            return 0.0;
        }
        self.offsets_ms.len() as f64 / (self.duration_ms() / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let a = ArrivalSchedule::poisson(200, 1000.0, 7);
        let b = ArrivalSchedule::poisson(200, 1000.0, 7);
        assert_eq!(a, b);
        assert!(a
            .offsets_ms()
            .windows(2)
            .all(|w| w[1] >= w[0] && w[0] > 0.0));
    }

    #[test]
    fn poisson_seeds_diverge() {
        let a = ArrivalSchedule::poisson(50, 1000.0, 7);
        let b = ArrivalSchedule::poisson(50, 1000.0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_mean_rate_close_to_requested() {
        let s = ArrivalSchedule::poisson(20_000, 2000.0, 11);
        let qps = s.offered_qps();
        assert!(
            (qps - 2000.0).abs() / 2000.0 < 0.05,
            "offered {qps} too far from 2000"
        );
    }

    #[test]
    fn trace_replay_is_deterministic_and_monotone() {
        let a = ArrivalSchedule::trace_replay(300, 800.0, 0.25, 5.0, 3);
        let b = ArrivalSchedule::trace_replay(300, 800.0, 0.25, 5.0, 3);
        assert_eq!(a, b);
        assert!(a.offsets_ms().windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn trace_replay_zero_amplitude_matches_poisson_statistics() {
        // Same mean rate, no modulation: the long-run offered QPS should
        // land in the same band as a plain Poisson schedule.
        let s = ArrivalSchedule::trace_replay(20_000, 1500.0, 0.0, 5.0, 13);
        let qps = s.offered_qps();
        assert!(
            (qps - 1500.0).abs() / 1500.0 < 0.05,
            "offered {qps} too far from 1500"
        );
    }

    #[test]
    fn trace_replay_peak_gaps_shorter_than_trough() {
        // With days = 1 over n arrivals, the first quarter sits near the
        // sine peak and the third quarter near the trough; mean gaps must
        // reflect the rate modulation.
        let n = 40_000;
        let s = ArrivalSchedule::trace_replay(n, 1000.0, 0.5, 1.0, 19);
        let off = s.offsets_ms();
        let gap_mean = |lo: usize, hi: usize| -> f64 {
            (lo..hi).map(|i| off[i + 1] - off[i]).sum::<f64>() / (hi - lo) as f64
        };
        let peak = gap_mean(n / 8, 3 * n / 8); // phase ≈ π/2
        let trough = gap_mean(5 * n / 8, 7 * n / 8); // phase ≈ 3π/2
        assert!(
            trough > peak * 1.5,
            "trough gap {trough} not clearly longer than peak gap {peak}"
        );
    }

    #[test]
    fn poisson_burst_compresses_gaps_inside_the_window() {
        let n = 40_000;
        let s = ArrivalSchedule::poisson_burst(n, 1000.0, 4.0, 0.25, 0.5, 23);
        let off = s.offsets_ms();
        let gap_mean = |lo: usize, hi: usize| -> f64 {
            (lo..hi).map(|i| off[i + 1] - off[i]).sum::<f64>() / (hi - lo) as f64
        };
        let before = gap_mean(0, n / 4 - 1);
        let during = gap_mean(n / 4, 3 * n / 4);
        let after = gap_mean(3 * n / 4, n - 1);
        assert!(
            (before / during - 4.0).abs() < 0.5,
            "burst gap ratio {} not ~4x",
            before / during
        );
        assert!(
            (after / during - 4.0).abs() < 0.5,
            "post-burst gap ratio {} not ~4x",
            after / during
        );
    }

    #[test]
    fn poisson_burst_factor_one_is_plain_poisson_rate() {
        let s = ArrivalSchedule::poisson_burst(20_000, 1500.0, 1.0, 0.0, 1.0, 29);
        let qps = s.offered_qps();
        assert!(
            (qps - 1500.0).abs() / 1500.0 < 0.05,
            "offered {qps} too far from 1500"
        );
    }

    #[test]
    #[should_panic(expected = "burst window")]
    fn poisson_burst_rejects_overlong_window() {
        let _ = ArrivalSchedule::poisson_burst(10, 100.0, 4.0, 0.8, 0.5, 1);
    }

    #[test]
    fn empty_schedule_is_well_defined() {
        let s = ArrivalSchedule::poisson(0, 100.0, 1);
        assert!(s.is_empty());
        assert_eq!(s.duration_ms(), 0.0);
        assert_eq!(s.offered_qps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalSchedule::poisson(10, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn saturating_amplitude_rejected() {
        let _ = ArrivalSchedule::trace_replay(10, 100.0, 1.0, 5.0, 1);
    }
}
