//! Synthetic inference-request workloads.
//!
//! The paper replayed "a database of de-identified requests ... sampled
//! evenly across a five-day time period in order to capture any diurnal
//! behavior" (§V-B). This crate is the substitute: a seeded generator
//! producing a replayable [`TraceDb`] of request *shapes* — candidate-item
//! counts and per-table lookup counts — plus materialization of real
//! index data for the executable engine, and the pooling-factor profiler
//! the load-balanced sharding strategy depends on (§III-B2).
//!
//! Request shapes drive everything the characterization measures:
//!
//! - **items** (candidate items to rank) determine the number of batches
//!   per request and the dense compute (the long tail of request sizes
//!   is why "dense operators and RPC deserialization ... begin to
//!   dominate" at P99, §VI-B4);
//! - **per-table lookups** scale each table's `SparseLengthsSum` work and
//!   the bytes shipped to sparse shards.
//!
//! # Examples
//!
//! ```
//! use dlrm_workload::TraceDb;
//!
//! let spec = dlrm_model::rm::rm1();
//! let db = TraceDb::generate(&spec, 100, 7);
//! assert_eq!(db.len(), 100);
//! let profile = db.pooling_profile(100);
//! // The profile approximates the spec's pooling factors.
//! assert!(profile.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
mod arrivals;
mod materialize;
mod profile;
mod profiler;
mod tracedb;

pub use access::{AccessTrace, RowStats};
pub use arrivals::ArrivalSchedule;
pub use materialize::{materialize_request, materialize_request_with, BatchInputs, IndexDist};
pub use profile::PoolingProfile;
pub use profiler::OnlineProfiler;
pub use tracedb::{RequestShape, TraceDb, TraceDbConfig};
