//! Online access profiling: per-table row-frequency counts accumulated
//! from live serving traffic.
//!
//! The offline path samples a synthetic Zipf trace ([`RowStats::
//! sample_zipf`]) before the model is ever deployed; this module is its
//! live twin. A serving tier shares one [`OnlineProfiler`] across its
//! workers, calls [`OnlineProfiler::observe`] on every batch it
//! executes, and a rebalance controller snapshots the accumulated
//! counts into fresh [`RowStats`] to re-derive placement when the hot
//! set the traffic actually touches has drifted away from the profiled
//! one (RecShard's premise, made continuous).

use crate::{BatchInputs, RowStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-table row-access accumulator for live traffic. Thread-safe:
/// workers observe concurrently, a controller snapshots concurrently.
#[derive(Debug)]
pub struct OnlineProfiler {
    /// Row count per table (indexed by table id) — carried into every
    /// snapshot so the planner can validate coverage.
    rows: Vec<u64>,
    /// Accumulated `(row → count)` per table.
    counts: Mutex<Vec<HashMap<u64, u64>>>,
    /// Total accesses observed since the last [`Self::reset`].
    observed: AtomicU64,
}

impl OnlineProfiler {
    /// An empty profiler shaped for `spec`'s tables.
    #[must_use]
    pub fn for_spec(spec: &dlrm_model::ModelSpec) -> Self {
        Self {
            rows: spec.tables.iter().map(|t| t.rows).collect(),
            counts: Mutex::new(vec![HashMap::new(); spec.tables.len()]),
            observed: AtomicU64::new(0),
        }
    }

    /// Folds one batch's sparse lookups into the per-table counts.
    pub fn observe(&self, inputs: &BatchInputs) {
        let mut counts = self.counts.lock().expect("profiler counts lock");
        let mut seen = 0u64;
        for (t, sparse) in inputs.sparse.iter().enumerate() {
            if t >= counts.len() {
                break;
            }
            let table = &mut counts[t];
            for &row in &sparse.indices {
                *table.entry(row).or_insert(0) += 1;
            }
            seen += sparse.indices.len() as u64;
        }
        drop(counts);
        self.observed.fetch_add(seen, Ordering::Relaxed);
    }

    /// Total lookups observed since construction or the last reset.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Per-table access totals, indexed by table id — the coldness
    /// signal the tenancy pressure controller ranks demotion candidates
    /// by (fewest accesses per resident byte demotes first).
    #[must_use]
    pub fn table_accesses(&self) -> Vec<u64> {
        let counts = self.counts.lock().expect("profiler counts lock");
        counts.iter().map(|t| t.values().sum::<u64>()).collect()
    }

    /// The smallest per-table access total — the coverage floor a
    /// controller gates replanning on (a table nobody touched yet
    /// cannot be profiled).
    #[must_use]
    pub fn min_table_accesses(&self) -> u64 {
        let counts = self.counts.lock().expect("profiler counts lock");
        counts
            .iter()
            .map(|t| t.values().sum::<u64>())
            .min()
            .unwrap_or(0)
    }

    /// Snapshots the accumulated counts into one [`RowStats`] per table
    /// (indexed by table id), or `None` until *every* table has at
    /// least one observed access — `plan_with_stats` requires full
    /// coverage. The accumulator keeps counting; use [`Self::reset`] to
    /// start a fresh window after a cutover.
    #[must_use]
    pub fn snapshot(&self) -> Option<Vec<RowStats>> {
        let counts = self.counts.lock().expect("profiler counts lock");
        counts
            .iter()
            .zip(&self.rows)
            .map(|(table, &rows)| {
                RowStats::from_counts(rows, table.iter().map(|(&r, &c)| (r, c)))
            })
            .collect()
    }

    /// Clears the accumulated counts — the start of a fresh profiling
    /// window (typically right after a plan cutover, so the next
    /// migration decision reflects post-cutover traffic only).
    pub fn reset(&self) {
        let mut counts = self.counts.lock().expect("profiler counts lock");
        for table in counts.iter_mut() {
            table.clear();
        }
        drop(counts);
        self.observed.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{materialize_request_with, IndexDist, TraceDb};

    fn spec() -> dlrm_model::ModelSpec {
        let mut s = dlrm_model::rm::rm1().scaled_to_bytes(1 << 20);
        s.mean_items_per_request = 6.0;
        s.default_batch_size = 4;
        s
    }

    #[test]
    fn snapshot_is_none_until_every_table_observed() {
        let spec = spec();
        let profiler = OnlineProfiler::for_spec(&spec);
        assert!(profiler.snapshot().is_none());
        assert_eq!(profiler.total_accesses(), 0);
        let db = TraceDb::generate(&spec, 4, 11);
        for i in 0..4 {
            for b in materialize_request_with(&spec, db.get(i), 8, 13, IndexDist::Zipf(1.2)) {
                profiler.observe(&b);
            }
        }
        let stats = profiler.snapshot().expect("all tables touched");
        assert_eq!(stats.len(), spec.tables.len());
        let total: u64 = stats.iter().map(RowStats::total_accesses).sum();
        assert_eq!(total, profiler.total_accesses());
        assert!(profiler.min_table_accesses() > 0);
        for (t, s) in stats.iter().enumerate() {
            assert_eq!(s.rows(), spec.tables[t].rows, "table {t} row count");
        }
    }

    #[test]
    fn observed_hot_set_matches_traffic_skew() {
        // Heavily skewed traffic: the top-ranked rows must cover a
        // disproportionate share of accesses.
        let spec = spec();
        let profiler = OnlineProfiler::for_spec(&spec);
        let db = TraceDb::generate(&spec, 32, 7);
        for i in 0..32 {
            for b in materialize_request_with(&spec, db.get(i), 8, 5, IndexDist::Zipf(1.4)) {
                profiler.observe(&b);
            }
        }
        let stats = profiler.snapshot().unwrap();
        let biggest = stats
            .iter()
            .max_by_key(|s| s.total_accesses())
            .unwrap();
        assert!(
            biggest.coverage_of_top(16) > 0.3,
            "top-16 coverage {:.3} too flat for Zipf(1.4)",
            biggest.coverage_of_top(16)
        );
    }

    #[test]
    fn reset_starts_a_fresh_window() {
        let spec = spec();
        let profiler = OnlineProfiler::for_spec(&spec);
        let db = TraceDb::generate(&spec, 2, 3);
        for b in materialize_request_with(&spec, db.get(0), 8, 5, IndexDist::Uniform) {
            profiler.observe(&b);
        }
        assert!(profiler.total_accesses() > 0);
        profiler.reset();
        assert_eq!(profiler.total_accesses(), 0);
        assert!(profiler.snapshot().is_none());
    }
}
