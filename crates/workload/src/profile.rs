//! Per-table pooling-factor profiles.

use dlrm_model::TableId;

/// Estimated mean lookups per request for every table — the profiling
/// input to load-balanced sharding (§III-B2) and the "Estimated Pooling
/// Factor" rows of Table II.
///
/// # Examples
///
/// ```
/// use dlrm_workload::PoolingProfile;
/// use dlrm_model::TableId;
///
/// let p = PoolingProfile::new(vec![10.0, 30.0]);
/// assert_eq!(p.of(TableId(1)), 30.0);
/// assert_eq!(p.total(), 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoolingProfile {
    per_table: Vec<f64>,
}

impl PoolingProfile {
    /// Creates a profile from per-table means (indexed by [`TableId`]).
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or NaN.
    #[must_use]
    pub fn new(per_table: Vec<f64>) -> Self {
        assert!(
            per_table.iter().all(|v| *v >= 0.0 && !v.is_nan()),
            "pooling factors must be non-negative"
        );
        Self { per_table }
    }

    /// A profile taken directly from a spec's declared pooling factors
    /// (used when no trace is available — the paper instead profiles
    /// from sampled requests).
    #[must_use]
    pub fn from_spec(spec: &dlrm_model::ModelSpec) -> Self {
        Self::new(spec.tables.iter().map(|t| t.pooling_factor).collect())
    }

    /// Number of tables covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_table.len()
    }

    /// Whether the profile covers no tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_table.is_empty()
    }

    /// The estimated pooling factor of one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[must_use]
    pub fn of(&self, table: TableId) -> f64 {
        self.per_table[table.0]
    }

    /// Sum across all tables (the 1-shard "Estimated Pooling Factor" of
    /// Table II).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.per_table.iter().sum()
    }

    /// Sum across a subset of tables (a shard's estimated pooling
    /// factor).
    #[must_use]
    pub fn total_of(&self, tables: &[TableId]) -> f64 {
        tables.iter().map(|&t| self.of(t)).sum()
    }

    /// Raw per-table values.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.per_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::rm;

    #[test]
    fn from_spec_mirrors_declared_factors() {
        let spec = rm::rm3();
        let p = PoolingProfile::from_spec(&spec);
        assert_eq!(p.len(), spec.tables.len());
        assert_eq!(p.of(TableId(0)), 1.0);
        assert!((p.total() - spec.total_pooling_factor()).abs() < 1e-9);
    }

    #[test]
    fn subset_totals() {
        let p = PoolingProfile::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(p.total_of(&[TableId(0), TableId(2)]), 5.0);
        assert_eq!(p.total_of(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_factor() {
        let _ = PoolingProfile::new(vec![-1.0]);
    }
}
