//! The replayable request-trace database.

use dlrm_model::ModelSpec;
use dlrm_sim::SimRng;

/// The shape of one inference request: everything the simulator and the
/// materializer need, without the (irrelevant) concrete feature values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestShape {
    /// Stable request id (position in the trace).
    pub id: u64,
    /// Number of candidate items to rank. Splits into
    /// `ceil(items / batch_size)` batches in the serving tier.
    pub items: u32,
    /// Lookup count per table for the whole request, indexed by
    /// [`dlrm_model::TableId`].
    pub table_lookups: Vec<u32>,
}

impl RequestShape {
    /// Total embedding lookups across all tables.
    #[must_use]
    pub fn total_lookups(&self) -> u64 {
        self.table_lookups.iter().map(|&l| u64::from(l)).sum()
    }

    /// Number of batches at the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn num_batches(&self, batch_size: usize) -> usize {
        assert!(batch_size > 0, "batch size must be non-zero");
        (self.items as usize).div_ceil(batch_size)
    }
}

/// Tunables for trace generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDbConfig {
    /// Lognormal sigma of the request-size (items) distribution; the
    /// long tail here produces the paper's long-tailed E2E latencies.
    pub size_sigma: f64,
    /// Hard cap on request size as a multiple of the mean (production
    /// tiers bound candidate-set sizes, which is why the published
    /// P99/P50 ratios fall below a pure lognormal's).
    pub max_items_factor: f64,
    /// Probability that a request belongs to a separate heavy-tail mode
    /// (RM3's size distribution is near-constant with rare huge
    /// requests: its P90/P50 is 1.16 but P99/P50 is 4.6).
    pub tail_prob: f64,
    /// Size multiplier range `(lo, hi)` for tail-mode requests.
    pub tail_scale: (f64, f64),
    /// Amplitude of the diurnal modulation of request sizes (0 = none).
    pub diurnal_amplitude: f64,
    /// Days the trace spans (the paper sampled five days).
    pub days: f64,
}

impl Default for TraceDbConfig {
    fn default() -> Self {
        Self {
            size_sigma: 0.55,
            max_items_factor: f64::INFINITY,
            tail_prob: 0.0,
            tail_scale: (1.0, 1.0),
            diurnal_amplitude: 0.25,
            days: 5.0,
        }
    }
}

/// A pregenerated, replayable set of request shapes.
///
/// Generation is deterministic in `(spec, n, seed, config)`; replaying
/// the same database against different sharding configurations gives the
/// paired comparisons the study's tables rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDb {
    model: String,
    requests: Vec<RequestShape>,
}

impl TraceDb {
    /// Generates `n` requests for `spec` with default trace settings.
    #[must_use]
    pub fn generate(spec: &ModelSpec, n: usize, seed: u64) -> Self {
        Self::generate_with(spec, n, seed, &TraceDbConfig::default())
    }

    /// Generates `n` requests with explicit trace settings.
    ///
    /// Per request: `items` is drawn from a diurnally-modulated lognormal
    /// with mean `spec.mean_items_per_request`; each table's lookups are
    /// `pooling_factor × (items / mean_items)` with stochastic rounding,
    /// so lookup volume co-varies with request size as it does in
    /// production (batches are "a proxy for embedding tables with larger
    /// pooling factor", §VI-F1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the spec fails validation.
    #[must_use]
    pub fn generate_with(spec: &ModelSpec, n: usize, seed: u64, config: &TraceDbConfig) -> Self {
        assert!(n > 0, "trace must contain at least one request");
        spec.validate().expect("invalid model spec");
        let mut rng = SimRng::seed_from(seed).fork(0x7ace_db00);
        // E[lognormal(mu, sigma)] = exp(mu + sigma²/2); solve mu so the
        // configured mean is hit.
        let sigma = config.size_sigma;
        let mu = spec.mean_items_per_request.ln() - sigma * sigma / 2.0;

        let requests = (0..n)
            .map(|i| {
                // Position within the multi-day window.
                let t_days = config.days * i as f64 / n as f64;
                let diurnal =
                    1.0 + config.diurnal_amplitude * (2.0 * std::f64::consts::PI * t_days).sin();
                let normal = rng.next_standard_normal();
                let mut items_f = (mu + sigma * normal).exp() * diurnal;
                if rng.next_f64() < config.tail_prob {
                    let (lo, hi) = config.tail_scale;
                    items_f *= lo + (hi - lo) * rng.next_f64();
                }
                items_f =
                    items_f.min(spec.mean_items_per_request * config.max_items_factor);
                let items = (items_f.round() as u32).max(1);
                let ratio = f64::from(items) / spec.mean_items_per_request;

                let table_lookups = spec
                    .tables
                    .iter()
                    .map(|t| {
                        let expected = t.pooling_factor * ratio;
                        let base = expected.floor();
                        let frac = expected - base;
                        let extra = u32::from(rng.next_f64() < frac);
                        base as u32 + extra
                    })
                    .collect();

                RequestShape {
                    id: i as u64,
                    items,
                    table_lookups,
                }
            })
            .collect();

        Self {
            model: spec.name.clone(),
            requests,
        }
    }

    /// Name of the model this trace was generated for.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty (never true for generated traces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The `i`-th request.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> &RequestShape {
        &self.requests[i]
    }

    /// Iterates over all requests in replay order.
    pub fn iter(&self) -> impl Iterator<Item = &RequestShape> {
        self.requests.iter()
    }

    /// Estimates per-table pooling factors from the first `sample`
    /// requests — the paper's method: "estimated by sampling 1000
    /// requests from the evaluation dataset and observing the number of
    /// lookups per table" (§III-B2).
    ///
    /// # Panics
    ///
    /// Panics if `sample` is zero.
    #[must_use]
    pub fn pooling_profile(&self, sample: usize) -> crate::PoolingProfile {
        assert!(sample > 0, "profile needs at least one sample");
        let sample = sample.min(self.requests.len());
        let n_tables = self.requests[0].table_lookups.len();
        let mut sums = vec![0.0f64; n_tables];
        for req in &self.requests[..sample] {
            for (s, &l) in sums.iter_mut().zip(&req.table_lookups) {
                *s += f64::from(l);
            }
        }
        for s in &mut sums {
            *s /= sample as f64;
        }
        crate::PoolingProfile::new(sums)
    }

    /// Mean items per request observed in the trace.
    #[must_use]
    pub fn mean_items(&self) -> f64 {
        self.requests.iter().map(|r| f64::from(r.items)).sum::<f64>() / self.requests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::rm;

    #[test]
    fn generation_is_deterministic() {
        let spec = rm::rm3();
        let a = TraceDb::generate(&spec, 50, 1);
        let b = TraceDb::generate(&spec, 50, 1);
        assert_eq!(a, b);
        let c = TraceDb::generate(&spec, 50, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_items_approximates_spec() {
        let spec = rm::rm1();
        let db = TraceDb::generate(&spec, 3000, 11);
        let mean = db.mean_items();
        let target = spec.mean_items_per_request;
        assert!(
            (mean - target).abs() / target < 0.08,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn pooling_profile_approximates_spec() {
        let spec = rm::rm1();
        let db = TraceDb::generate(&spec, 1200, 3);
        let profile = db.pooling_profile(1000);
        let total_est = profile.total();
        let total_spec = spec.total_pooling_factor();
        assert!(
            (total_est - total_spec).abs() / total_spec < 0.10,
            "estimated {total_est} vs spec {total_spec}"
        );
    }

    #[test]
    fn rm3_dominant_table_has_about_one_lookup() {
        let spec = rm::rm3();
        let db = TraceDb::generate(&spec, 500, 5);
        let mean_dominant: f64 = db
            .iter()
            .map(|r| f64::from(r.table_lookups[0]))
            .sum::<f64>()
            / db.len() as f64;
        assert!(
            (mean_dominant - 1.0).abs() < 0.25,
            "dominant pooling {mean_dominant}"
        );
    }

    #[test]
    fn request_size_has_a_long_tail() {
        let spec = rm::rm1();
        let db = TraceDb::generate(&spec, 2000, 13);
        let mut items: Vec<u32> = db.iter().map(|r| r.items).collect();
        items.sort_unstable();
        let p50 = items[items.len() / 2];
        let p99 = items[items.len() * 99 / 100];
        assert!(
            f64::from(p99) / f64::from(p50) > 2.0,
            "p50 {p50}, p99 {p99}: tail too short"
        );
    }

    #[test]
    fn lookups_scale_with_request_size() {
        let spec = rm::rm1();
        let db = TraceDb::generate(&spec, 500, 17);
        let mut big = 0f64;
        let mut big_lookups = 0f64;
        let mut small = 0f64;
        let mut small_lookups = 0f64;
        let mean = db.mean_items();
        for r in db.iter() {
            if f64::from(r.items) > mean {
                big += 1.0;
                big_lookups += r.total_lookups() as f64;
            } else {
                small += 1.0;
                small_lookups += r.total_lookups() as f64;
            }
        }
        assert!(big_lookups / big > small_lookups / small);
    }

    #[test]
    fn num_batches_rounds_up() {
        let r = RequestShape {
            id: 0,
            items: 65,
            table_lookups: vec![],
        };
        assert_eq!(r.num_batches(64), 2);
        assert_eq!(r.num_batches(65), 1);
        assert_eq!(r.num_batches(1), 65);
    }

    #[test]
    fn diurnal_modulation_changes_sizes_across_trace() {
        let spec = rm::rm2();
        let cfg = TraceDbConfig {
            size_sigma: 0.01,
            diurnal_amplitude: 0.5,
            days: 1.0,
            ..TraceDbConfig::default()
        };
        let db = TraceDb::generate_with(&spec, 400, 7, &cfg);
        // First quarter (rising sine) should be larger than third quarter
        // (falling below mean).
        let quarter = db.len() / 4;
        let mean_slice = |lo: usize, hi: usize| {
            db.iter()
                .skip(lo)
                .take(hi - lo)
                .map(|r| f64::from(r.items))
                .sum::<f64>()
                / (hi - lo) as f64
        };
        let rising = mean_slice(0, quarter);
        let falling = mean_slice(2 * quarter, 3 * quarter);
        assert!(rising > falling, "rising {rising} vs falling {falling}");
    }
}
