//! Materializes request shapes into concrete batch inputs for the
//! executable engine.

use crate::access::zipf_index;
use crate::RequestShape;
use dlrm_model::graph::SparseInput;
use dlrm_model::ModelSpec;
use dlrm_sim::SimRng;
use dlrm_tensor::Matrix;

/// Salt separating the dense-feature stream from the sparse-index
/// streams forked off the same `(seed, request)` root.
const DENSE_SALT: u64 = u64::MAX;

/// Concrete inputs for one inference batch: dense features plus one
/// sparse input per table (indexed by [`dlrm_model::TableId`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchInputs {
    /// `batch × dense_features` feature matrix.
    pub dense: Matrix,
    /// One sparse input per table (all tables, both nets).
    pub sparse: Vec<SparseInput>,
}

impl BatchInputs {
    /// Batch size (items in this batch).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.dense.rows()
    }

    /// Loads this batch's blobs into a workspace using the builder's
    /// blob-naming convention.
    pub fn load_into(&self, spec: &ModelSpec, ws: &mut dlrm_model::Workspace) {
        use dlrm_model::builder::blobs;
        ws.put(
            blobs::DENSE_INPUT,
            dlrm_model::Blob::Dense(self.dense.clone()),
        );
        for (t, s) in spec.tables.iter().zip(&self.sparse) {
            ws.put(blobs::sparse_input(t), dlrm_model::Blob::Sparse(s.clone()));
        }
    }
}

/// How embedding-row indices are drawn during materialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexDist {
    /// Every row equally likely — the original materialization.
    Uniform,
    /// Zipf-skewed popularity with the given exponent, sharing the
    /// rank-to-row scatter of [`crate::RowStats`] sampling so the
    /// profiled hot set is the hot set requests actually touch.
    Zipf(f64),
}

/// Materializes `shape` into per-batch concrete inputs for `spec`.
///
/// The request's `items` split into `ceil(items / batch_size)` batches;
/// each table's request-level lookup count is distributed as evenly as
/// possible across items (remainder to the earliest items), then sliced
/// per batch. Index values are uniform over the table's rows, seeded by
/// `(seed, request id, table id)` so materialization is deterministic —
/// the property that lets singular and sharded execution be compared
/// bit-for-bit.
///
/// # Panics
///
/// Panics if `shape.table_lookups` does not cover `spec.tables` or
/// `batch_size` is zero.
#[must_use]
pub fn materialize_request(
    spec: &ModelSpec,
    shape: &RequestShape,
    batch_size: usize,
    seed: u64,
) -> Vec<BatchInputs> {
    materialize_request_with(spec, shape, batch_size, seed, IndexDist::Uniform)
}

/// [`materialize_request`] with an explicit index distribution:
/// [`IndexDist::Uniform`] reproduces it bit-for-bit,
/// [`IndexDist::Zipf`] draws skewed indices for placement and cache
/// studies. Everything else (dense features, per-item lookup counts,
/// batching, the fork discipline) is identical.
///
/// # Panics
///
/// Panics if `shape.table_lookups` does not cover `spec.tables` or
/// `batch_size` is zero.
#[must_use]
pub fn materialize_request_with(
    spec: &ModelSpec,
    shape: &RequestShape,
    batch_size: usize,
    seed: u64,
    dist: IndexDist,
) -> Vec<BatchInputs> {
    assert!(batch_size > 0, "batch size must be non-zero");
    assert_eq!(
        shape.table_lookups.len(),
        spec.tables.len(),
        "request shape does not match model spec"
    );
    let items = shape.items as usize;
    let n_batches = items.div_ceil(batch_size);

    // Per-item lookup counts per table: L/items each, remainder to the
    // first L % items items.
    let per_item_counts: Vec<Vec<u32>> = spec
        .tables
        .iter()
        .enumerate()
        .map(|(ti, _)| {
            let l = shape.table_lookups[ti] as usize;
            let base = (l / items) as u32;
            let extra = l % items;
            (0..items)
                .map(|i| base + u32::from(i < extra))
                .collect()
        })
        .collect();

    // Fork discipline: one root per (seed, request), a dedicated fork for
    // the dense features, and a fork per (table, batch) for the sparse
    // indices — each stream is independent of how many other tables or
    // batches exist.
    let request_rng = SimRng::seed_from(seed).fork(shape.id);
    let mut dense_rng = request_rng.fork(DENSE_SALT);
    let mut batches = Vec::with_capacity(n_batches);
    for b in 0..n_batches {
        let lo = b * batch_size;
        let hi = (lo + batch_size).min(items);
        let bsz = hi - lo;

        let dense_data: Vec<f32> = (0..bsz * spec.dense_features)
            .map(|_| dense_rng.next_f32() - 0.5)
            .collect();
        let dense = Matrix::from_vec(bsz, spec.dense_features, dense_data);

        let sparse = spec
            .tables
            .iter()
            .enumerate()
            .map(|(ti, table)| {
                let lengths: Vec<u32> = per_item_counts[ti][lo..hi].to_vec();
                let total: usize = lengths.iter().map(|&l| l as usize).sum();
                let mut rng = request_rng.fork(ti as u64).fork(b as u64);
                let indices: Vec<u64> = (0..total)
                    .map(|_| match dist {
                        IndexDist::Uniform => rng.next_u64_below(table.rows),
                        IndexDist::Zipf(s) => zipf_index(&mut rng, table.rows, s),
                    })
                    .collect();
                SparseInput::new(indices, lengths)
            })
            .collect();

        batches.push(BatchInputs { dense, sparse });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceDb;
    use dlrm_model::rm;

    fn small_spec() -> ModelSpec {
        rm::rm1().scaled_to_bytes(4 << 20)
    }

    #[test]
    fn batches_cover_all_items_and_lookups() {
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 5, 3);
        let shape = db.get(2);
        let batches = materialize_request(&spec, shape, 64, 9);
        assert_eq!(batches.len(), shape.num_batches(64));
        let total_items: usize = batches.iter().map(BatchInputs::batch_size).sum();
        assert_eq!(total_items, shape.items as usize);
        for (ti, _) in spec.tables.iter().enumerate() {
            let total: usize = batches
                .iter()
                .map(|b| b.sparse[ti].num_lookups())
                .sum();
            assert_eq!(total, shape.table_lookups[ti] as usize, "table {ti}");
        }
    }

    #[test]
    fn materialization_is_deterministic() {
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 3, 3);
        let a = materialize_request(&spec, db.get(0), 32, 7);
        let b = materialize_request(&spec, db.get(0), 32, 7);
        assert_eq!(a, b);
        let c = materialize_request(&spec, db.get(0), 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn indices_respect_table_bounds() {
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 2, 5);
        for batch in materialize_request(&spec, db.get(0), 16, 1) {
            for (ti, s) in batch.sparse.iter().enumerate() {
                let rows = spec.tables[ti].rows;
                assert!(s.indices.iter().all(|&i| i < rows), "table {ti}");
            }
        }
    }

    #[test]
    fn single_batch_mode_produces_one_batch() {
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 2, 5);
        let shape = db.get(1);
        let batches = materialize_request(&spec, shape, usize::MAX, 1);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].batch_size(), shape.items as usize);
    }

    #[test]
    fn uniform_dist_matches_the_original_entry_point() {
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 2, 5);
        let a = materialize_request(&spec, db.get(0), 32, 7);
        let b = materialize_request_with(&spec, db.get(0), 32, 7, IndexDist::Uniform);
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_dist_is_deterministic_in_range_and_skewed_to_the_profiled_hot_set() {
        use crate::access::RowStats;
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 2, 5);
        let s = 1.2;
        let a = materialize_request_with(&spec, db.get(0), 32, 7, IndexDist::Zipf(s));
        let b = materialize_request_with(&spec, db.get(0), 32, 7, IndexDist::Zipf(s));
        assert_eq!(a, b);
        for (ti, table) in spec.tables.iter().enumerate() {
            let stats = RowStats::sample_zipf(table.rows, 20_000, s, 999);
            let hot: std::collections::HashSet<u64> =
                stats.hot_rows(stats.rows_for_coverage(0.8)).into_iter().collect();
            let (mut in_hot, mut total) = (0usize, 0usize);
            for batch in &a {
                for &i in &batch.sparse[ti].indices {
                    assert!(i < table.rows, "table {ti}");
                    total += 1;
                    in_hot += usize::from(hot.contains(&i));
                }
            }
            // The profiled 80%-coverage hot set should capture most of
            // the skewed traffic (different seeds, same distribution).
            if total >= 50 {
                assert!(
                    in_hot as f64 >= 0.5 * total as f64,
                    "table {ti}: {in_hot}/{total} in hot set"
                );
            }
        }
    }

    #[test]
    fn load_into_populates_all_blobs() {
        let spec = small_spec();
        let db = TraceDb::generate(&spec, 1, 5);
        let batches = materialize_request(&spec, db.get(0), 64, 1);
        let mut ws = dlrm_model::Workspace::new();
        batches[0].load_into(&spec, &mut ws);
        // dense + one sparse per table.
        assert_eq!(ws.len(), 1 + spec.tables.len());
    }
}
