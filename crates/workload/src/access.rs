//! Embedding-table access traces and cache analysis.
//!
//! §IX points research at "trace-driven experimentation: Bandana used
//! embedding table access traces — which can be collected offline — to
//! reduce effective DRAM requirements ... explorations of table
//! placement and frequency-based caching are also valuable directions".
//! This module generates per-table row-access traces with realistic
//! Zipfian skew and provides the offline analyses those explorations
//! need: frequency profiles and LRU hit-rate curves (which also back the
//! SSD-paging cost model's skew parameter empirically).

use dlrm_sim::SimRng;

/// A stream of row accesses against one embedding table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTrace {
    rows: u64,
    accesses: Vec<u64>,
}

impl AccessTrace {
    /// Samples `n` accesses over a `rows`-row table from a Zipf(`s`)
    /// popularity distribution with a seeded random row permutation
    /// (hot rows are scattered across the index space, as hashing
    /// scatters hot features).
    ///
    /// Uses the rejection-inversion-free approximate Zipf sampler:
    /// inverse-CDF over the harmonic weights via the continuous
    /// approximation, exact enough for cache studies.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero, `n` is zero, or `s` is not in `(0, 5]`.
    #[must_use]
    pub fn zipf(rows: u64, n: usize, s: f64, seed: u64) -> Self {
        assert!(rows > 0, "table needs rows");
        assert!(n > 0, "trace needs accesses");
        assert!(s > 0.0 && s <= 5.0, "zipf exponent {s} out of range");
        let mut rng = SimRng::seed_from(seed).fork(0x00AC_CE55);
        // Scatter ranks over the index space with a multiplicative
        // permutation (odd multiplier is a bijection mod 2^k; use
        // mod-rows mapping via a large odd co-prime-ish stride, falling
        // back to identity for tiny tables).
        let stride = 0x9E37_79B9_7F4A_7C15u64 | 1;
        let scatter = |rank: u64| -> u64 {
            if rows <= 2 {
                rank % rows
            } else {
                (rank.wrapping_mul(stride)) % rows
            }
        };
        let accesses = (0..n)
            .map(|_| {
                let rank = zipf_rank(&mut rng, rows, s);
                scatter(rank)
            })
            .collect();
        Self { rows, accesses }
    }

    /// Builds a trace from explicit accesses.
    ///
    /// # Panics
    ///
    /// Panics if any access is out of range.
    #[must_use]
    pub fn from_accesses(rows: u64, accesses: Vec<u64>) -> Self {
        assert!(accesses.iter().all(|&a| a < rows), "access out of range");
        Self { rows, accesses }
    }

    /// Number of accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accessed row ids, in order.
    #[must_use]
    pub fn accesses(&self) -> &[u64] {
        &self.accesses
    }

    /// Number of distinct rows touched.
    #[must_use]
    pub fn unique_rows(&self) -> usize {
        let mut seen: Vec<u64> = self.accesses.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Fraction of accesses captured by the `top_fraction` most popular
    /// rows — the skew statistic behind frequency-based caching (and
    /// the paging model's `skew_theta`).
    ///
    /// # Panics
    ///
    /// Panics if `top_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn coverage_of_hottest(&self, top_fraction: f64) -> f64 {
        assert!(
            top_fraction > 0.0 && top_fraction <= 1.0,
            "fraction {top_fraction} out of range"
        );
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for &a in &self.accesses {
            *counts.entry(a).or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((self.rows as f64 * top_fraction).ceil() as usize).max(1);
        let covered: u64 = freqs.iter().take(k).sum();
        covered as f64 / self.accesses.len() as f64
    }

    /// Simulated LRU hit rate with a cache of `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn lru_hit_rate(&self, capacity: usize) -> f64 {
        assert!(capacity > 0, "cache needs capacity");
        // Classic LRU with a hash map + monotone clock; eviction scans
        // are avoided with a BTreeMap over last-use stamps.
        let mut last_use: std::collections::HashMap<u64, u64> = Default::default();
        let mut by_stamp: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut clock = 0u64;
        let mut hits = 0usize;
        for &row in &self.accesses {
            clock += 1;
            if let Some(&stamp) = last_use.get(&row) {
                hits += 1;
                by_stamp.remove(&stamp);
            } else if last_use.len() >= capacity {
                // Evict the least recently used row.
                let (&oldest, &victim) = by_stamp.iter().next().expect("cache non-empty");
                by_stamp.remove(&oldest);
                last_use.remove(&victim);
            }
            last_use.insert(row, clock);
            by_stamp.insert(clock, row);
        }
        hits as f64 / self.accesses.len() as f64
    }

    /// LRU hit rate at several cache sizes (the miss-ratio curve of
    /// cache studies), as `(capacity, hit_rate)` pairs.
    #[must_use]
    pub fn lru_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.lru_hit_rate(c)))
            .collect()
    }
}

/// Samples a 1-based Zipf rank over `n` items with exponent `s` via the
/// continuous inverse-CDF approximation, returning a 0-based rank.
fn zipf_rank(rng: &mut SimRng, n: u64, s: f64) -> u64 {
    let u: f64 = rng.next_f64().max(1e-12);
    let rank = if (s - 1.0).abs() < 1e-9 {
        // H(x) ≈ ln(x): invert ln(x)/ln(n) = u.
        (n as f64).powf(u)
    } else {
        // H(x) ≈ (x^(1-s) - 1)/(1-s): invert against H(n).
        let one_minus_s = 1.0 - s;
        let hn = ((n as f64).powf(one_minus_s) - 1.0) / one_minus_s;
        (1.0 + u * hn * one_minus_s).powf(1.0 / one_minus_s)
    };
    (rank.floor() as u64).clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_trace_is_skewed_and_in_range() {
        let t = AccessTrace::zipf(10_000, 50_000, 1.0, 7);
        assert!(t.accesses().iter().all(|&a| a < 10_000));
        // Hot 1% of rows should cover far more than 1% of accesses.
        let c = t.coverage_of_hottest(0.01);
        assert!(c > 0.3, "coverage {c}");
    }

    #[test]
    fn higher_exponent_means_more_skew() {
        let mild = AccessTrace::zipf(10_000, 30_000, 0.6, 3);
        let steep = AccessTrace::zipf(10_000, 30_000, 1.4, 3);
        assert!(
            steep.coverage_of_hottest(0.01) > mild.coverage_of_hottest(0.01) + 0.1
        );
    }

    #[test]
    fn lru_hit_rate_monotone_in_capacity() {
        let t = AccessTrace::zipf(5_000, 20_000, 1.0, 11);
        let curve = t.lru_curve(&[10, 100, 1000, 5000]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve not monotone: {curve:?}");
        }
        // A cache holding every row hits on everything after cold
        // misses.
        let (_, full) = curve[curve.len() - 1];
        let cold = t.unique_rows() as f64 / t.len() as f64;
        assert!((full - (1.0 - cold)).abs() < 1e-9);
    }

    #[test]
    fn lru_exact_on_a_hand_trace() {
        // Accesses: a b a c a b, capacity 2.
        let t = AccessTrace::from_accesses(3, vec![0, 1, 0, 2, 0, 1]);
        // a miss, b miss, a hit, c miss (evict b), a hit, b miss.
        assert!((t.lru_hit_rate(2) - 2.0 / 6.0).abs() < 1e-12);
        // Capacity 3: a b a(c) hit...: misses a,b,c; hits a,a,b.
        assert!((t.lru_hit_rate(3) - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinism() {
        assert_eq!(
            AccessTrace::zipf(1000, 5000, 1.1, 42),
            AccessTrace::zipf(1000, 5000, 1.1, 42)
        );
        assert_ne!(
            AccessTrace::zipf(1000, 5000, 1.1, 42),
            AccessTrace::zipf(1000, 5000, 1.1, 43)
        );
    }

    #[test]
    fn skewed_traffic_caches_better_than_uniform() {
        // The Bandana observation: skew makes small caches effective.
        let skewed = AccessTrace::zipf(50_000, 40_000, 1.2, 5);
        let uniform = AccessTrace::zipf(50_000, 40_000, 0.1, 5);
        let cap = 2_500; // 5% of rows
        assert!(
            skewed.lru_hit_rate(cap) > uniform.lru_hit_rate(cap) + 0.2,
            "skewed {} vs uniform {}",
            skewed.lru_hit_rate(cap),
            uniform.lru_hit_rate(cap)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_accesses_validates() {
        let _ = AccessTrace::from_accesses(2, vec![5]);
    }
}
