//! Embedding-table access traces and cache analysis.
//!
//! §IX points research at "trace-driven experimentation: Bandana used
//! embedding table access traces — which can be collected offline — to
//! reduce effective DRAM requirements ... explorations of table
//! placement and frequency-based caching are also valuable directions".
//! This module generates per-table row-access traces with realistic
//! Zipfian skew and provides the offline analyses those explorations
//! need: frequency profiles and LRU hit-rate curves (which also back the
//! SSD-paging cost model's skew parameter empirically).

use dlrm_model::ModelSpec;
use dlrm_sim::SimRng;

/// A stream of row accesses against one embedding table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTrace {
    rows: u64,
    accesses: Vec<u64>,
}

impl AccessTrace {
    /// Samples `n` accesses over a `rows`-row table from a Zipf(`s`)
    /// popularity distribution with a seeded random row permutation
    /// (hot rows are scattered across the index space, as hashing
    /// scatters hot features).
    ///
    /// Uses the rejection-inversion-free approximate Zipf sampler:
    /// inverse-CDF over the harmonic weights via the continuous
    /// approximation, exact enough for cache studies.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero, `n` is zero, or `s` is not in `(0, 5]`.
    #[must_use]
    pub fn zipf(rows: u64, n: usize, s: f64, seed: u64) -> Self {
        assert!(rows > 0, "table needs rows");
        assert!(n > 0, "trace needs accesses");
        assert!(s > 0.0 && s <= 5.0, "zipf exponent {s} out of range");
        let mut rng = SimRng::seed_from(seed).fork(0x00AC_CE55);
        let accesses = (0..n).map(|_| zipf_index(&mut rng, rows, s)).collect();
        Self { rows, accesses }
    }

    /// Builds a trace from explicit accesses.
    ///
    /// # Panics
    ///
    /// Panics if any access is out of range.
    #[must_use]
    pub fn from_accesses(rows: u64, accesses: Vec<u64>) -> Self {
        assert!(accesses.iter().all(|&a| a < rows), "access out of range");
        Self { rows, accesses }
    }

    /// Number of accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accessed row ids, in order.
    #[must_use]
    pub fn accesses(&self) -> &[u64] {
        &self.accesses
    }

    /// Number of distinct rows touched.
    #[must_use]
    pub fn unique_rows(&self) -> usize {
        let mut seen: Vec<u64> = self.accesses.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Fraction of accesses captured by the `top_fraction` most popular
    /// rows — the skew statistic behind frequency-based caching (and
    /// the paging model's `skew_theta`).
    ///
    /// # Panics
    ///
    /// Panics if `top_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn coverage_of_hottest(&self, top_fraction: f64) -> f64 {
        assert!(
            top_fraction > 0.0 && top_fraction <= 1.0,
            "fraction {top_fraction} out of range"
        );
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for &a in &self.accesses {
            *counts.entry(a).or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((self.rows as f64 * top_fraction).ceil() as usize).max(1);
        let covered: u64 = freqs.iter().take(k).sum();
        covered as f64 / self.accesses.len() as f64
    }

    /// Simulated LRU hit rate with a cache of `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn lru_hit_rate(&self, capacity: usize) -> f64 {
        assert!(capacity > 0, "cache needs capacity");
        // Classic LRU with a hash map + monotone clock; eviction scans
        // are avoided with a BTreeMap over last-use stamps.
        let mut last_use: std::collections::HashMap<u64, u64> = Default::default();
        let mut by_stamp: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut clock = 0u64;
        let mut hits = 0usize;
        for &row in &self.accesses {
            clock += 1;
            if let Some(&stamp) = last_use.get(&row) {
                hits += 1;
                by_stamp.remove(&stamp);
            } else if last_use.len() >= capacity {
                // Evict the least recently used row.
                let (&oldest, &victim) = by_stamp.iter().next().expect("cache non-empty");
                by_stamp.remove(&oldest);
                last_use.remove(&victim);
            }
            last_use.insert(row, clock);
            by_stamp.insert(clock, row);
        }
        hits as f64 / self.accesses.len() as f64
    }

    /// LRU hit rate at several cache sizes (the miss-ratio curve of
    /// cache studies), as `(capacity, hit_rate)` pairs.
    #[must_use]
    pub fn lru_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.lru_hit_rate(c)))
            .collect()
    }
}

/// Maps a popularity rank onto a row id by scattering ranks over the
/// index space with a multiplicative permutation (a large odd stride,
/// falling back to identity for tiny tables) — hot rows land scattered
/// across the index space, as hashing scatters hot features. The map
/// depends only on `rows`, so every consumer of the same table agrees
/// on which row holds each rank.
pub(crate) fn scatter_rank(rank: u64, rows: u64) -> u64 {
    let stride = 0x9E37_79B9_7F4A_7C15u64 | 1;
    if rows <= 2 {
        rank % rows
    } else {
        (rank.wrapping_mul(stride)) % rows
    }
}

/// Samples one Zipf(`s`)-distributed row id over a `rows`-row table:
/// the shared sampler behind [`AccessTrace::zipf`], [`RowStats`]
/// sampling, and skewed request materialization — all three see the
/// same rank-to-row scatter, so their hot sets coincide.
pub(crate) fn zipf_index(rng: &mut SimRng, rows: u64, s: f64) -> u64 {
    scatter_rank(zipf_rank(rng, rows, s), rows)
}

/// Samples a 1-based Zipf rank over `n` items with exponent `s` via the
/// continuous inverse-CDF approximation, returning a 0-based rank.
fn zipf_rank(rng: &mut SimRng, n: u64, s: f64) -> u64 {
    let u: f64 = rng.next_f64().max(1e-12);
    let rank = if (s - 1.0).abs() < 1e-9 {
        // H(x) ≈ ln(x): invert ln(x)/ln(n) = u.
        (n as f64).powf(u)
    } else {
        // H(x) ≈ (x^(1-s) - 1)/(1-s): invert against H(n).
        let one_minus_s = 1.0 - s;
        let hn = ((n as f64).powf(one_minus_s) - 1.0) / one_minus_s;
        (1.0 + u * hn * one_minus_s).powf(1.0 / one_minus_s)
    };
    (rank.floor() as u64).clamp(1, n) - 1
}

/// Per-table row-access frequency statistics: the ranked access counts
/// and their CDF, distilled from an [`AccessTrace`].
///
/// This is the RecShard-style input to statistics-driven placement: the
/// planner reads the CDF to decide which rows deserve main-shard
/// residency ([`dlrm_sharding`]'s `HotRowAware` strategy), and the
/// hot-set summary serializes so a control plane can ship it alongside
/// the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowStats {
    rows: u64,
    total: u64,
    /// `(row, count)` sorted by count descending, row ascending — the
    /// frequency profile. Rows never accessed are absent.
    ranked: Vec<(u64, u64)>,
}

impl RowStats {
    /// Distills frequency statistics from a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn from_trace(trace: &AccessTrace) -> Self {
        assert!(!trace.is_empty(), "row stats need accesses");
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for &a in trace.accesses() {
            *counts.entry(a).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Self {
            rows: trace.rows,
            total: trace.len() as u64,
            ranked,
        }
    }

    /// Distills statistics from raw `(row, count)` access counts — the
    /// online-profiling entry point, where counts come from observed
    /// serving traffic rather than a synthetic trace. Returns `None`
    /// when the counts are empty or all zero (no statistics to rank).
    #[must_use]
    pub fn from_counts(rows: u64, counts: impl IntoIterator<Item = (u64, u64)>) -> Option<Self> {
        let mut ranked: Vec<(u64, u64)> = counts.into_iter().filter(|&(_, c)| c > 0).collect();
        if ranked.is_empty() {
            return None;
        }
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total = ranked.iter().map(|&(_, c)| c).sum();
        Some(Self {
            rows,
            total,
            ranked,
        })
    }

    /// Samples `n` Zipf(`s`) accesses over a `rows`-row table and
    /// distills them — the offline profiling pass in one call. Uses the
    /// same sampler (and the same rank-to-row scatter) as skewed request
    /// materialization, so the hot set here is the hot set requests
    /// actually touch.
    #[must_use]
    pub fn sample_zipf(rows: u64, n: usize, s: f64, seed: u64) -> Self {
        Self::from_trace(&AccessTrace::zipf(rows, n, s, seed))
    }

    /// One [`RowStats`] per table of `spec` (indexed by table id), each
    /// from `n` sampled Zipf(`s`) accesses with a per-table seed fork.
    #[must_use]
    pub fn for_spec(spec: &ModelSpec, n: usize, s: f64, seed: u64) -> Vec<Self> {
        spec.tables
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let table_seed = seed ^ (ti as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Self::sample_zipf(t.rows, n, s, table_seed)
            })
            .collect()
    }

    /// Number of rows in the profiled table.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Total accesses behind these statistics.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// The frequency profile: `(row, count)` by count descending (ties
    /// broken by row id ascending).
    #[must_use]
    pub fn ranked(&self) -> &[(u64, u64)] {
        &self.ranked
    }

    /// The access CDF by popularity rank: entry `k` is the fraction of
    /// accesses covered by the `k + 1` hottest rows. Monotone, ends at
    /// 1.0.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0u64;
        self.ranked
            .iter()
            .map(|&(_, c)| {
                acc += c;
                acc as f64 / self.total as f64
            })
            .collect()
    }

    /// Fraction of accesses covered by the `k` hottest rows.
    #[must_use]
    pub fn coverage_of_top(&self, k: usize) -> f64 {
        let covered: u64 = self.ranked.iter().take(k).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// The smallest hot-set size whose coverage reaches `target`
    /// (clamped to the number of distinct rows accessed).
    ///
    /// # Panics
    ///
    /// Panics if `target` is outside `(0, 1]`.
    #[must_use]
    pub fn rows_for_coverage(&self, target: f64) -> usize {
        assert!(target > 0.0 && target <= 1.0, "coverage target {target}");
        let goal = (target * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (k, &(_, c)) in self.ranked.iter().enumerate() {
            acc += c;
            if acc >= goal {
                return k + 1;
            }
        }
        self.ranked.len()
    }

    /// The `k` hottest row ids, sorted ascending (deterministic given
    /// the ranking's tie-break).
    #[must_use]
    pub fn hot_rows(&self, k: usize) -> Vec<u64> {
        let mut rows: Vec<u64> = self.ranked.iter().take(k).map(|&(r, _)| r).collect();
        rows.sort_unstable();
        rows
    }

    /// Serializes the table size, access total, and the `k` hottest
    /// rows with their counts into a line-oriented text summary.
    #[must_use]
    pub fn summary_text(&self, k: usize) -> String {
        let mut out = String::from("rowstats v1\n");
        out.push_str(&format!("rows {}\n", self.rows));
        out.push_str(&format!("total {}\n", self.total));
        for &(row, count) in self.ranked.iter().take(k) {
            out.push_str(&format!("hot {row} {count}\n"));
        }
        out
    }

    /// Parses a [`Self::summary_text`] document back into (truncated)
    /// statistics: the hot set is exact, cold rows are absent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_summary_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("rowstats v1") {
            return Err("missing rowstats v1 header".to_string());
        }
        let mut rows = None;
        let mut total = None;
        let mut ranked = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("rows") => {
                    rows = Some(
                        parts
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("bad rows record {line:?}"))?,
                    );
                }
                Some("total") => {
                    total = Some(
                        parts
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("bad total record {line:?}"))?,
                    );
                }
                Some("hot") => {
                    let row: u64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad hot record {line:?}"))?;
                    let count: u64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad hot record {line:?}"))?;
                    ranked.push((row, count));
                }
                _ => return Err(format!("unknown record {line:?}")),
            }
        }
        let rows = rows.ok_or("missing rows record")?;
        let total = total.ok_or("missing total record")?;
        if ranked.windows(2).any(|w| w[0].1 < w[1].1) {
            return Err("hot records not sorted by count descending".to_string());
        }
        if ranked.iter().any(|&(r, _)| r >= rows) {
            return Err("hot row out of range".to_string());
        }
        Ok(Self {
            rows,
            total,
            ranked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_trace_is_skewed_and_in_range() {
        let t = AccessTrace::zipf(10_000, 50_000, 1.0, 7);
        assert!(t.accesses().iter().all(|&a| a < 10_000));
        // Hot 1% of rows should cover far more than 1% of accesses.
        let c = t.coverage_of_hottest(0.01);
        assert!(c > 0.3, "coverage {c}");
    }

    #[test]
    fn higher_exponent_means_more_skew() {
        let mild = AccessTrace::zipf(10_000, 30_000, 0.6, 3);
        let steep = AccessTrace::zipf(10_000, 30_000, 1.4, 3);
        assert!(
            steep.coverage_of_hottest(0.01) > mild.coverage_of_hottest(0.01) + 0.1
        );
    }

    #[test]
    fn lru_hit_rate_monotone_in_capacity() {
        let t = AccessTrace::zipf(5_000, 20_000, 1.0, 11);
        let curve = t.lru_curve(&[10, 100, 1000, 5000]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve not monotone: {curve:?}");
        }
        // A cache holding every row hits on everything after cold
        // misses.
        let (_, full) = curve[curve.len() - 1];
        let cold = t.unique_rows() as f64 / t.len() as f64;
        assert!((full - (1.0 - cold)).abs() < 1e-9);
    }

    #[test]
    fn lru_exact_on_a_hand_trace() {
        // Accesses: a b a c a b, capacity 2.
        let t = AccessTrace::from_accesses(3, vec![0, 1, 0, 2, 0, 1]);
        // a miss, b miss, a hit, c miss (evict b), a hit, b miss.
        assert!((t.lru_hit_rate(2) - 2.0 / 6.0).abs() < 1e-12);
        // Capacity 3: a b a(c) hit...: misses a,b,c; hits a,a,b.
        assert!((t.lru_hit_rate(3) - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinism() {
        assert_eq!(
            AccessTrace::zipf(1000, 5000, 1.1, 42),
            AccessTrace::zipf(1000, 5000, 1.1, 42)
        );
        assert_ne!(
            AccessTrace::zipf(1000, 5000, 1.1, 42),
            AccessTrace::zipf(1000, 5000, 1.1, 43)
        );
    }

    #[test]
    fn skewed_traffic_caches_better_than_uniform() {
        // The Bandana observation: skew makes small caches effective.
        let skewed = AccessTrace::zipf(50_000, 40_000, 1.2, 5);
        let uniform = AccessTrace::zipf(50_000, 40_000, 0.1, 5);
        let cap = 2_500; // 5% of rows
        assert!(
            skewed.lru_hit_rate(cap) > uniform.lru_hit_rate(cap) + 0.2,
            "skewed {} vs uniform {}",
            skewed.lru_hit_rate(cap),
            uniform.lru_hit_rate(cap)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_accesses_validates() {
        let _ = AccessTrace::from_accesses(2, vec![5]);
    }

    #[test]
    fn row_stats_rank_and_cdf() {
        // 0 ×3, 2 ×2, 1 ×1.
        let t = AccessTrace::from_accesses(4, vec![0, 2, 0, 1, 2, 0]);
        let s = RowStats::from_trace(&t);
        assert_eq!(s.ranked(), &[(0, 3), (2, 2), (1, 1)]);
        assert_eq!(s.total_accesses(), 6);
        let cdf = s.cdf();
        assert!((cdf[0] - 0.5).abs() < 1e-12);
        assert!((cdf[2] - 1.0).abs() < 1e-12);
        assert!((s.coverage_of_top(2) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.rows_for_coverage(0.5), 1);
        assert_eq!(s.rows_for_coverage(1.0), 3);
        assert_eq!(s.hot_rows(2), vec![0, 2]);
    }

    #[test]
    fn row_stats_tie_break_is_deterministic() {
        let t = AccessTrace::from_accesses(5, vec![3, 1, 4, 1, 3, 4]);
        let s = RowStats::from_trace(&t);
        // All counts equal: rank by row id ascending.
        assert_eq!(s.ranked(), &[(1, 2), (3, 2), (4, 2)]);
    }

    #[test]
    fn row_stats_same_seed_same_stats() {
        let a = RowStats::sample_zipf(10_000, 30_000, 1.1, 99);
        let b = RowStats::sample_zipf(10_000, 30_000, 1.1, 99);
        assert_eq!(a, b);
        assert_eq!(a.cdf(), b.cdf());
        let c = RowStats::sample_zipf(10_000, 30_000, 1.1, 98);
        assert_ne!(a, c);
    }

    #[test]
    fn row_stats_skew_concentrates_the_hot_set() {
        let s = RowStats::sample_zipf(50_000, 60_000, 1.2, 7);
        // A few hundred rows out of 50k cover most of the traffic.
        let k = s.rows_for_coverage(0.8);
        assert!(k < 2_500, "needed {k} rows for 80% coverage");
        assert!(s.coverage_of_top(k) >= 0.8);
    }

    #[test]
    fn hot_set_summary_round_trips() {
        let s = RowStats::sample_zipf(5_000, 20_000, 1.1, 13);
        let k = 100;
        let text = s.summary_text(k);
        let parsed = RowStats::from_summary_text(&text).unwrap();
        assert_eq!(parsed.rows(), s.rows());
        assert_eq!(parsed.total_accesses(), s.total_accesses());
        assert_eq!(parsed.ranked(), &s.ranked()[..k.min(s.ranked().len())]);
        assert_eq!(parsed.hot_rows(k), s.hot_rows(k));
        assert!(RowStats::from_summary_text("nope").is_err());
        assert!(RowStats::from_summary_text("rowstats v1\nrows 2\ntotal 1\nhot 7 1\n").is_err());
    }
}
