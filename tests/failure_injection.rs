//! Failure-injection integration tests: the stateless-shard rationale
//! (§III-A1) exercised end-to-end.

use dlrm_core::model::rm;
use dlrm_core::serving::{run_config, ConfigOptions, ShardFault};
use dlrm_core::sharding::ShardingStrategy;
use dlrm_core::workload::TraceDb;
use dlrm_core::serving::experiment::trace_config_for;

fn options(fault: Option<ShardFault>) -> ConfigOptions {
    ConfigOptions {
        requests: 80,
        fault,
        ..ConfigOptions::default()
    }
}

fn db() -> (dlrm_core::model::ModelSpec, TraceDb) {
    let spec = rm::rm1();
    let db = TraceDb::generate_with(&spec, 500, 0xFA117, &trace_config_for(&spec));
    (spec, db)
}

#[test]
fn fault_on_hot_shard_degrades_tail() {
    let (spec, db) = db();
    let strategy = ShardingStrategy::NetSpecificBinPacking(8);
    let healthy = run_config(&spec, &db, strategy, &options(None)).unwrap();
    let hot = healthy
        .per_shard_sls_ms
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let faulted = run_config(
        &spec,
        &db,
        strategy,
        &options(Some(ShardFault {
            shard: hot,
            start_ms: 0.0,
            duration_ms: f64::MAX,
            slowdown: 8.0,
        })),
    )
    .unwrap();
    assert!(
        faulted.e2e.p99 > healthy.e2e.p99 * 1.15,
        "hot-shard fault should hurt the tail: {} vs {}",
        faulted.e2e.p99,
        healthy.e2e.p99
    );
}

#[test]
fn fault_on_cold_shard_is_contained() {
    let (spec, db) = db();
    let strategy = ShardingStrategy::NetSpecificBinPacking(8);
    let healthy = run_config(&spec, &db, strategy, &options(None)).unwrap();
    let cold = healthy
        .per_shard_sls_ms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let faulted = run_config(
        &spec,
        &db,
        strategy,
        &options(Some(ShardFault {
            shard: cold,
            start_ms: 0.0,
            duration_ms: f64::MAX,
            slowdown: 8.0,
        })),
    )
    .unwrap();
    // A cold NSBP shard does almost no work: blast radius must be far
    // smaller than the hot shard's.
    assert!(
        faulted.e2e.p50 < healthy.e2e.p50 * 1.10,
        "cold-shard fault should be contained: {} vs {}",
        faulted.e2e.p50,
        healthy.e2e.p50
    );
}

#[test]
fn fault_window_outside_run_is_a_noop() {
    let (spec, db) = db();
    let strategy = ShardingStrategy::LoadBalanced(4);
    let healthy = run_config(&spec, &db, strategy, &options(None)).unwrap();
    let faulted = run_config(
        &spec,
        &db,
        strategy,
        &options(Some(ShardFault {
            shard: 0,
            start_ms: 1e12, // long after the run ends
            duration_ms: 1.0,
            slowdown: 100.0,
        })),
    )
    .unwrap();
    assert_eq!(healthy.e2e, faulted.e2e);
    assert_eq!(healthy.cpu, faulted.cpu);
}

#[test]
fn singular_is_immune_to_shard_faults() {
    let (spec, db) = db();
    let healthy = run_config(&spec, &db, ShardingStrategy::Singular, &options(None)).unwrap();
    let faulted = run_config(
        &spec,
        &db,
        ShardingStrategy::Singular,
        &options(Some(ShardFault {
            shard: 0,
            start_ms: 0.0,
            duration_ms: f64::MAX,
            slowdown: 100.0,
        })),
    )
    .unwrap();
    assert_eq!(healthy.e2e, faulted.e2e);
}

#[test]
fn balanced_spreads_blast_radius_thinner_than_nsbp() {
    let (spec, db) = db();
    let blast = |strategy: ShardingStrategy| {
        let healthy = run_config(&spec, &db, strategy, &options(None)).unwrap();
        let hot = healthy
            .per_shard_sls_ms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let faulted = run_config(
            &spec,
            &db,
            strategy,
            &options(Some(ShardFault {
                shard: hot,
                start_ms: 0.0,
                duration_ms: f64::MAX,
                slowdown: 8.0,
            })),
        )
        .unwrap();
        faulted.e2e.p99 / healthy.e2e.p99
    };
    let lb = blast(ShardingStrategy::LoadBalanced(8));
    let nsbp = blast(ShardingStrategy::NetSpecificBinPacking(8));
    assert!(
        nsbp > lb,
        "NSBP concentrates pooling, so its hot-shard blast ({nsbp:.2}x) \
         must exceed load-balanced ({lb:.2}x)"
    );
}
