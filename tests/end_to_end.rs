//! Cross-crate integration: spec → workload → plan → partition →
//! execute, through the public API only.

use dlrm_core::model::{build_model, rm, Workspace};
use dlrm_core::model::graph::NoopObserver;
use dlrm_core::sharding::{partition, plan, ShardingStrategy};
use dlrm_core::workload::{materialize_request, PoolingProfile, TraceDb};
use dlrm_core::{verify_distributed_equivalence, Study};

/// A materializable copy of a paper model with small requests.
fn toy(spec: dlrm_core::model::ModelSpec) -> dlrm_core::model::ModelSpec {
    let mut s = spec.scaled_to_bytes(3 << 20);
    s.mean_items_per_request = 12.0;
    s.default_batch_size = 8;
    s
}

#[test]
fn every_strategy_is_numerically_equivalent_to_singular() {
    let specs = [toy(rm::rm1()), toy(rm::rm2()), toy(rm::rm3())];
    for spec in &specs {
        let strategies: Vec<ShardingStrategy> = if spec.name == "RM3" {
            ShardingStrategy::rm3_sweep()
                .into_iter()
                .filter(|s| s.is_distributed())
                .collect()
        } else {
            vec![
                ShardingStrategy::OneShard,
                ShardingStrategy::CapacityBalanced(4),
                ShardingStrategy::LoadBalanced(8),
                ShardingStrategy::NetSpecificBinPacking(2),
                ShardingStrategy::Auto(4),
            ]
        };
        for strategy in strategies {
            let report = verify_distributed_equivalence(spec, strategy, 2, 7)
                .unwrap_or_else(|e| panic!("{} {strategy}: {e}", spec.name));
            assert!(
                report.passed(),
                "{} {strategy}: max diff {}",
                spec.name,
                report.max_abs_diff
            );
        }
    }
}

#[test]
fn partitioner_is_interaction_agnostic() {
    use dlrm_core::model::graph::NoopObserver;
    use dlrm_core::model::{build_model_with_options, InteractionKind};

    // Uniform dims so the DLRM dot interaction is legal.
    let mut spec = toy(rm::rm3());
    let d = *spec.nets[0].bottom_mlp.last().unwrap();
    for t in &mut spec.tables {
        t.dim = d as u32;
    }
    let build = || {
        build_model_with_options(
            &spec,
            13,
            dlrm_core::model::builder::DEFAULT_MATERIALIZE_LIMIT,
            InteractionKind::Dot,
        )
        .unwrap()
    };
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(
        &spec,
        &profile,
        ShardingStrategy::NetSpecificBinPacking(4),
    )
    .unwrap();
    let singular = build();
    let distributed = partition(build(), &p).unwrap();

    let db = TraceDb::generate(&spec, 2, 21);
    for batch in materialize_request(&spec, db.get(0), spec.default_batch_size, 21) {
        let mut ws_a = Workspace::new();
        batch.load_into(&spec, &mut ws_a);
        let mut ws_b = ws_a.clone();
        let a = singular.run(&mut ws_a, &mut NoopObserver).unwrap();
        let b = distributed.run(&mut ws_b, &mut NoopObserver).unwrap();
        // RM3's plan row-shards the dominant table → tolerance equality.
        assert!(a.approx_eq(&b, 1e-4), "max diff {}", a.max_abs_diff(&b));
    }
}

#[test]
fn partitioned_model_capacity_is_conserved() {
    let spec = toy(rm::rm1());
    let profile = PoolingProfile::from_spec(&spec);
    for strategy in [
        ShardingStrategy::CapacityBalanced(8),
        ShardingStrategy::NetSpecificBinPacking(4),
    ] {
        let p = plan(&spec, &profile, strategy).unwrap();
        let model = build_model(&spec, 3).unwrap();
        let dist = partition(model, &p).unwrap();
        let shard_bytes: usize = dist.shards.iter().map(|s| s.capacity_bytes()).sum();
        let spec_bytes: u64 = spec.tables.iter().map(|t| t.bytes()).sum();
        // Row-sharded tables may pad the last partition row; allow a
        // few rows of slack.
        let slack = spec.tables.len() as u64 * 128 * 4;
        assert!(
            (shard_bytes as i64 - spec_bytes as i64).unsigned_abs() <= slack,
            "{strategy}: shards hold {shard_bytes} bytes vs spec {spec_bytes}"
        );
    }
}

#[test]
fn workload_profile_feeds_planner_like_the_paper() {
    // §III-B2: pooling estimated from 1000 sampled requests drives
    // load-balanced placement.
    let spec = rm::rm1();
    let db = TraceDb::generate(&spec, 1200, 99);
    let profile = db.pooling_profile(1000);
    let p = plan(&spec, &profile, ShardingStrategy::LoadBalanced(8)).unwrap();
    let pools: Vec<f64> = p.shards().map(|s| p.shard_pooling(s, &profile)).collect();
    let max = pools.iter().cloned().fold(0.0f64, f64::max);
    let min = pools.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.1,
        "load-balanced shards should be near-equal under the profiled load: {pools:?}"
    );
}

#[test]
fn materialized_batches_run_through_partitioned_graph() {
    let spec = toy(rm::rm2());
    let profile = PoolingProfile::from_spec(&spec);
    let p = plan(&spec, &profile, ShardingStrategy::LoadBalanced(2)).unwrap();
    let dist = partition(build_model(&spec, 5).unwrap(), &p).unwrap();
    let db = TraceDb::generate(&spec, 2, 5);
    for batch in materialize_request(&spec, db.get(1), spec.default_batch_size, 5) {
        let mut ws = Workspace::new();
        batch.load_into(&spec, &mut ws);
        let out = dist.run(&mut ws, &mut NoopObserver).unwrap();
        assert_eq!(out.rows(), batch.batch_size());
        assert!(out
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn study_reports_are_internally_consistent() {
    let mut study = Study::new(rm::rm3()).with_requests(40);
    let r = study.run(ShardingStrategy::NetSpecificBinPacking(4)).unwrap();
    // Percentile ordering.
    assert!(r.e2e.p50 <= r.e2e.p90 && r.e2e.p90 <= r.e2e.p99);
    assert!(r.cpu.p50 <= r.cpu.p90 && r.cpu.p90 <= r.cpu.p99);
    // CPU time ≥ any single-threaded part of E2E; outcomes count matches.
    assert_eq!(r.run.outcomes.len(), 40);
    // Latency stack roughly reconstructs E2E at the median.
    let stack_total = r.latency_stack.total();
    assert!(
        stack_total > r.e2e.p50 * 0.5 && stack_total < r.e2e.p50 * 1.5,
        "stack {stack_total} vs p50 {}",
        r.e2e.p50
    );
    // Every shard hosting work recorded SLS time on the touched shards.
    let touched = r.per_shard_sls_ms.iter().filter(|&&ms| ms > 0.0).count();
    assert!(touched >= 2, "RM3 requests touch two shards per inference");
}

#[test]
fn cpu_sketch_matches_trace_cpu_accounting() {
    use dlrm_core::trace::{TraceAnalysis, TraceId};
    let mut study = Study::new(rm::rm3()).with_requests(20);
    let r = study.run(ShardingStrategy::OneShard).unwrap();
    let analysis = TraceAnalysis::new(&r.run.collector);
    for o in &r.run.outcomes {
        let from_trace = analysis.cpu_time(o.trace);
        assert!(
            (from_trace - o.cpu_ms).abs() < 1e-6,
            "trace cpu {from_trace} vs outcome {}",
            o.cpu_ms
        );
        let e2e = analysis.e2e_latency(o.trace).unwrap();
        assert!((e2e - o.e2e_ms).abs() < 1e-6);
    }
    let _ = TraceId(0);
}
