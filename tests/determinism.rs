//! Reproducibility across the whole pipeline: identical seeds must
//! yield identical traces, plans, measurements and model outputs.

use dlrm_core::model::{build_model, rm};
use dlrm_core::sharding::{plan, ShardingStrategy};
use dlrm_core::trace::TraceAnalysis;
use dlrm_core::workload::{PoolingProfile, TraceDb};
use dlrm_core::Study;

#[test]
fn studies_with_same_seed_are_identical() {
    let run = |seed: u64| {
        let mut s = Study::new(rm::rm3()).with_requests(50).with_seed(seed);
        let r = s.run(ShardingStrategy::NetSpecificBinPacking(4)).unwrap();
        (
            r.e2e,
            r.cpu,
            r.run.collector.len(),
            r.run.outcomes.clone(),
            r.per_shard_sls_ms.clone(),
        )
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b);
    let c = run(12);
    assert_ne!(a.0, c.0, "different seeds should differ");
}

#[test]
fn trace_spans_are_reproducible() {
    let run = |seed: u64| {
        let mut s = Study::new(rm::rm3()).with_requests(10).with_seed(seed);
        let r = s.run(ShardingStrategy::OneShard).unwrap();
        r.run
            .collector
            .spans()
            .iter()
            .map(|sp| (sp.start, sp.duration))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn plans_models_and_traces_are_deterministic() {
    let spec = rm::rm2();
    let profile = PoolingProfile::from_spec(&spec);
    assert_eq!(
        plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(8)).unwrap(),
        plan(&spec, &profile, ShardingStrategy::NetSpecificBinPacking(8)).unwrap()
    );
    assert_eq!(TraceDb::generate(&spec, 30, 3), TraceDb::generate(&spec, 30, 3));

    let toy = spec.scaled_to_bytes(1 << 20);
    let m1 = build_model(&toy, 9).unwrap();
    let m2 = build_model(&toy, 9).unwrap();
    for (a, b) in m1.tables.iter().zip(&m2.tables) {
        assert_eq!(a.weights(), b.weights());
    }
}

#[test]
fn paired_configurations_share_request_stream() {
    // The same Study must feed every strategy the same requests: the
    // per-request item counts observed through the trace must match
    // across configurations.
    let mut s = Study::new(rm::rm3()).with_requests(30);
    let a = s.run(ShardingStrategy::Singular).unwrap();
    let b = s.run(ShardingStrategy::OneShard).unwrap();
    let items_a: Vec<u32> = a.run.outcomes.iter().map(|o| o.items).collect();
    let items_b: Vec<u32> = b.run.outcomes.iter().map(|o| o.items).collect();
    assert_eq!(items_a, items_b);
}

#[test]
fn analysis_is_pure() {
    // Running the analysis twice over one collector yields identical
    // stacks (no interior mutation).
    let mut s = Study::new(rm::rm3()).with_requests(15);
    let r = s.run(ShardingStrategy::NetSpecificBinPacking(4)).unwrap();
    let analysis = TraceAnalysis::new(&r.run.collector);
    let ids = r.run.collector.trace_ids();
    assert_eq!(
        analysis.median_latency_stack(&ids),
        analysis.median_latency_stack(&ids)
    );
    assert_eq!(
        analysis.median_embedded_stack(&ids),
        analysis.median_embedded_stack(&ids)
    );
}
