//! The paper's qualitative claims, each as an executable test against
//! the simulated serving tier (the list in DESIGN.md §5).
//!
//! These use modest request counts for speed; the bench targets rerun
//! the same experiments at higher resolution.

use dlrm_core::compress::CompressionPolicy;
use dlrm_core::model::rm;
use dlrm_core::serving::Cluster;
use dlrm_core::sharding::ShardingStrategy;
use dlrm_core::Study;

const REQUESTS: usize = 120;

fn study(spec: dlrm_core::model::ModelSpec) -> Study {
    Study::new(spec).with_requests(REQUESTS)
}

/// Claim 1: under serial blocking replay, every distributed
/// configuration is slower than singular, and overhead shrinks as
/// shards increase.
#[test]
fn claim1_serial_distributed_always_slower_and_overhead_shrinks() {
    let mut s = study(rm::rm1());
    let singular = s.run(ShardingStrategy::Singular).unwrap();
    let mut last_p50 = f64::INFINITY;
    for n in [1usize, 2, 4, 8] {
        let strategy = if n == 1 {
            ShardingStrategy::OneShard
        } else {
            ShardingStrategy::LoadBalanced(n)
        };
        let r = s.run(strategy).unwrap();
        assert!(
            r.e2e.p50 > singular.e2e.p50,
            "{strategy} p50 {} vs singular {}",
            r.e2e.p50,
            singular.e2e.p50
        );
        // Monotone within sampling noise: beyond a few shards the
        // savings saturate at the network floor (§VI-B2), so allow a
        // small tolerance.
        assert!(
            r.e2e.p50 <= last_p50 * 1.04,
            "overhead should not grow with shards: {n} shards {} vs prev {last_p50}",
            r.e2e.p50
        );
        last_p50 = last_p50.min(r.e2e.p50);
    }
}

/// Claim 2: 8-shard balanced configurations reach single-digit P99
/// latency overhead for RM1 (paper: ~1% best case).
#[test]
fn claim2_eight_shard_p99_overhead_is_small() {
    let mut s = study(rm::rm1());
    let singular = s.run(ShardingStrategy::Singular).unwrap();
    for strategy in [
        ShardingStrategy::LoadBalanced(8),
        ShardingStrategy::CapacityBalanced(8),
    ] {
        let r = s.run(strategy).unwrap();
        let overhead = (r.e2e.p99 / singular.e2e.p99 - 1.0) * 100.0;
        assert!(
            overhead < 8.0,
            "{strategy}: P99 overhead {overhead:.1}% too large"
        );
    }
}

/// Claim 3: NSBP has the worst latency among equal-shard-count
/// strategies (2-shard NSBP behaves like 1-shard) but the lowest
/// compute.
#[test]
fn claim3_nsbp_latency_worst_compute_best() {
    let mut s = study(rm::rm1());
    for n in [4usize, 8] {
        let nsbp = s.run(ShardingStrategy::NetSpecificBinPacking(n)).unwrap();
        let lb = s.run(ShardingStrategy::LoadBalanced(n)).unwrap();
        let cb = s.run(ShardingStrategy::CapacityBalanced(n)).unwrap();
        // The latency penalty concentrates in the tail (the hot net's
        // unsplit pooling bounds the critical path); P50 differences
        // are within noise at this sample size, as in the paper where
        // NSBP-8's P50 is only ~5% above lb-8's.
        assert!(
            nsbp.e2e.p99 > lb.e2e.p99 && nsbp.e2e.p99 > cb.e2e.p99,
            "{n} shards: NSBP p99 {} should exceed lb {} / cb {}",
            nsbp.e2e.p99,
            lb.e2e.p99,
            cb.e2e.p99
        );
        assert!(
            nsbp.cpu.p50 < lb.cpu.p50 && nsbp.cpu.p50 < cb.cpu.p50,
            "{n} shards: NSBP compute should be lowest"
        );
    }
    // NSBP-2's hot net on one shard ≈ the 1-shard bound.
    let nsbp2 = s.run(ShardingStrategy::NetSpecificBinPacking(2)).unwrap();
    let one = s.run(ShardingStrategy::OneShard).unwrap();
    assert!((nsbp2.e2e.p99 / one.e2e.p99 - 1.0).abs() < 0.05);
}

/// Claim 4: compute overhead is proportional to RPC count.
#[test]
fn claim4_compute_tracks_rpc_count() {
    let mut s = study(rm::rm1());
    let singular = s.run(ShardingStrategy::Singular).unwrap();
    let mut configs: Vec<(f64, f64)> = Vec::new(); // (rpcs, cpu overhead)
    for strategy in [
        ShardingStrategy::OneShard,
        ShardingStrategy::NetSpecificBinPacking(8),
        ShardingStrategy::LoadBalanced(4),
        ShardingStrategy::LoadBalanced(8),
    ] {
        let r = s.run(strategy).unwrap();
        configs.push((r.rpcs_per_request, r.cpu.p50 - singular.cpu.p50));
    }
    configs.sort_by(|a, b| a.0.total_cmp(&b.0));
    for pair in configs.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1 * 0.95,
            "cpu overhead should rise with rpcs: {configs:?}"
        );
    }
}

/// Claim 5: load-balanced ≈ capacity-balanced for E2E latency.
#[test]
fn claim5_lb_and_cb_are_close() {
    let mut s = study(rm::rm1());
    for n in [2usize, 4, 8] {
        let lb = s.run(ShardingStrategy::LoadBalanced(n)).unwrap();
        let cb = s.run(ShardingStrategy::CapacityBalanced(n)).unwrap();
        let delta = (lb.e2e.p50 / cb.e2e.p50 - 1.0).abs();
        assert!(delta < 0.05, "{n} shards: lb vs cb differ {delta:.3}");
    }
}

/// Claim 6: RM3 is insensitive to shard count, and only two shards are
/// touched per inference.
#[test]
fn claim6_rm3_insensitive_to_shards() {
    let mut s = study(rm::rm3());
    let four = s.run(ShardingStrategy::NetSpecificBinPacking(4)).unwrap();
    let eight = s.run(ShardingStrategy::NetSpecificBinPacking(8)).unwrap();
    let delta = (eight.e2e.p50 / four.e2e.p50 - 1.0).abs();
    assert!(delta < 0.05, "RM3 4 vs 8 shards P50 differ {delta:.3}");
    assert!(
        four.rpcs_per_request < 3.0,
        "RM3 touches ~2 shards per request, saw {:.2} rpcs",
        four.rpcs_per_request
    );
    assert!(eight.rpcs_per_request < 3.0);
}

/// Claim 7: with a single batch per request, 8-shard balanced
/// distributed inference stops losing to singular for RM1 — the sparse
/// work finally outweighs the RPC floor.
#[test]
fn claim7_single_batch_crossover() {
    let mut default_mode = study(rm::rm1());
    let mut single_mode = study(rm::rm1()).with_batch_size(Some(usize::MAX));
    let sd = default_mode.run(ShardingStrategy::Singular).unwrap();
    let dd = default_mode.run(ShardingStrategy::LoadBalanced(8)).unwrap();
    let ss = single_mode.run(ShardingStrategy::Singular).unwrap();
    let ds = single_mode.run(ShardingStrategy::LoadBalanced(8)).unwrap();
    let overhead_default = dd.e2e.p50 / sd.e2e.p50 - 1.0;
    let overhead_single = ds.e2e.p50 / ss.e2e.p50 - 1.0;
    assert!(
        overhead_single < overhead_default - 0.05,
        "single-batch should slash the overhead: default {overhead_default:.3} vs single {overhead_single:.3}"
    );
    assert!(
        overhead_single < 0.02,
        "single-batch lb-8 should break even or improve, got {overhead_single:.3}"
    );
}

/// Claim 8: at 25 QPS, P99 improves over singular for every strategy.
#[test]
fn claim8_high_qps_improves_tail() {
    let mut s = study(rm::rm1()).with_requests(200).with_qps(25.0);
    let singular = s.run(ShardingStrategy::Singular).unwrap();
    for strategy in [
        ShardingStrategy::OneShard,
        ShardingStrategy::LoadBalanced(8),
        ShardingStrategy::NetSpecificBinPacking(8),
    ] {
        let r = s.run(strategy).unwrap();
        assert!(
            r.e2e.p99 < singular.e2e.p99,
            "{strategy}: p99 {} should beat singular {}",
            r.e2e.p99,
            singular.e2e.p99
        );
    }
}

/// Claim 9: SC-Small sparse shards perform like SC-Large ones.
#[test]
fn claim9_sc_small_sparse_shards_equivalent() {
    let mut on_large = study(rm::rm1());
    let mut on_small = study(rm::rm1()).with_cluster(Cluster::small_sparse());
    let large = on_large.run(ShardingStrategy::LoadBalanced(8)).unwrap();
    let small = on_small.run(ShardingStrategy::LoadBalanced(8)).unwrap();
    let delta = (small.e2e.p50 / large.e2e.p50 - 1.0).abs();
    assert!(
        delta < 0.05,
        "SC-Small sparse tier should be ~equivalent, differs {delta:.3}"
    );
}

/// Claim 10: compression shrinks RM1 ~5.56× with marginally improved
/// latency — and is insufficient alone for the original scale.
#[test]
fn claim10_compression_complementary() {
    let spec = rm::rm1();
    let policy = CompressionPolicy::production();
    let ratio = policy.compression_ratio(&spec);
    assert!((ratio - 5.56).abs() < 1.2, "ratio {ratio}");

    let mut uncompressed = study(spec.clone());
    let mut compressed =
        study(spec.clone()).with_sls_cost_factor(policy.sls_cost_factor(&spec));
    let u = uncompressed.run(ShardingStrategy::Singular).unwrap();
    let c = compressed.run(ShardingStrategy::Singular).unwrap();
    assert!(c.cpu.p50 < u.cpu.p50, "compression should trim CPU slightly");
    assert!(
        c.e2e.p50 < u.e2e.p50 * 1.01,
        "compressed latency should not regress"
    );
    // Marginal, not transformative (< 10%).
    assert!(c.e2e.p50 > u.e2e.p50 * 0.90);
}

/// §VI-B2: for every distributed configuration, network latency exceeds
/// shard operator latency — the constant overhead that eventually
/// dominates.
#[test]
fn network_floor_dominates_shard_ops() {
    let mut s = study(rm::rm1());
    for strategy in [
        ShardingStrategy::LoadBalanced(8),
        ShardingStrategy::CapacityBalanced(8),
    ] {
        let r = s.run(strategy).unwrap();
        assert!(
            r.embedded_stack.network > r.embedded_stack.sparse_ops,
            "{strategy}: network {} vs sls {}",
            r.embedded_stack.network,
            r.embedded_stack.sparse_ops
        );
    }
}
