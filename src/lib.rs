//! `dlrm-dist-inference`: umbrella crate for the capacity-driven
//! scale-out neural recommendation inference reproduction (ISPASS 2021).
//!
//! Re-exports [`dlrm_core`]; see the workspace README for the system
//! overview and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use dlrm_core::*;
